"""Perf-regression gates over trace phase totals.

A *baseline* is a checked-in JSON snapshot of a benchmark trace's
:func:`~repro.obs.summarize.phase_totals` plus per-phase tolerance
bands (``benchmarks/results/telemetry/baselines/``).  ``repro telemetry
diff CANDIDATE BASELINE`` re-aggregates a fresh profile and trips
(nonzero exit) when any phase's total time exceeds ``baseline ×
tolerance`` — the MLPerf-style guard that keeps an optimisation pass
from silently regressing another phase.

Tolerances are ratios, not percentages: the default ``3.0`` tolerates
up to 3× the baseline total before tripping, wide enough for shared-CI
noise while still catching genuine algorithmic regressions (the CI
smoke injects a synthetic 3× slowdown and asserts the gate fires).
Getting *faster* never trips; phases present in the baseline but absent
from the candidate fail (the work was silently dropped or renamed), and
new candidate phases are reported informationally.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from .summarize import load_trace, phase_totals

__all__ = [
    "BASELINE_SCHEMA",
    "record_baseline",
    "write_baseline",
    "load_baseline",
    "load_phase_totals",
    "diff_profiles",
]

BASELINE_SCHEMA = "repro.telemetry.baseline/v1"

#: Ratio of candidate/baseline total above which a phase trips the gate.
DEFAULT_TOLERANCE = 3.0


def record_baseline(
    trace_path: str,
    tolerance: float = DEFAULT_TOLERANCE,
    per_phase: Optional[Dict[str, float]] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a baseline document from an exported trace file."""
    if tolerance <= 0:
        raise ValueError("tolerance must be a positive ratio")
    totals = phase_totals(load_trace(trace_path))
    return {
        "schema": BASELINE_SCHEMA,
        "phases": {
            name: {
                "total_s": agg["total_s"],
                "count": agg["count"],
                "mean_s": agg["mean_s"],
            }
            for name, agg in sorted(totals.items())
        },
        "tolerance": {"default": tolerance, "per_phase": dict(per_phase or {})},
        "metadata": dict(metadata or {}),
    }


def write_baseline(baseline: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path} is not a telemetry baseline (expected schema "
            f"{BASELINE_SCHEMA!r})"
        )
    return payload


def load_phase_totals(path: str) -> Dict[str, Dict[str, float]]:
    """Phase totals from either a trace file or a baseline document.

    Accepting a baseline lets CI self-diff a checked-in baseline
    (``diff baseline.json baseline.json`` must exit 0 on any machine,
    no timing involved).
    """
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (json.JSONDecodeError, UnicodeDecodeError):
        payload = None
    if isinstance(payload, dict) and payload.get("schema") == BASELINE_SCHEMA:
        return {name: dict(agg) for name, agg in payload["phases"].items()}
    return phase_totals(load_trace(path))


def diff_profiles(
    candidate: Dict[str, Dict[str, float]],
    baseline: Dict[str, Any],
    tolerance_override: Optional[float] = None,
) -> Tuple[List[str], List[str]]:
    """Compare candidate phase totals against a baseline document.

    Returns ``(report_lines, failures)`` — the gate passes iff
    ``failures`` is empty.
    """
    tolerances = baseline.get("tolerance", {})
    default_tol = (
        tolerance_override
        if tolerance_override is not None
        else float(tolerances.get("default", DEFAULT_TOLERANCE))
    )
    per_phase = tolerances.get("per_phase", {})
    report: List[str] = [
        f"{'phase':<28} | {'baseline':>10} | {'candidate':>10} | "
        f"{'ratio':>6} | {'tol':>5} | verdict"
    ]
    failures: List[str] = []
    base_phases: Dict[str, Any] = baseline.get("phases", {})
    for name in sorted(base_phases):
        base_total = float(base_phases[name]["total_s"])
        tol = float(per_phase.get(name, default_tol)) if tolerance_override is None \
            else default_tol
        cand = candidate.get(name)
        if cand is None:
            failures.append(f"{name}: present in baseline, missing from candidate")
            report.append(
                f"{name:<28} | {base_total:9.4f}s | {'—':>10} | {'—':>6} | "
                f"{tol:4.1f}x | MISSING"
            )
            continue
        cand_total = float(cand["total_s"])
        if base_total <= 0.0:
            ratio = float("inf") if cand_total > 0.0 else 1.0
        else:
            ratio = cand_total / base_total
        ok = ratio <= tol
        verdict = "ok" if ok else "REGRESSION"
        if not ok:
            failures.append(
                f"{name}: {cand_total:.4f}s vs baseline {base_total:.4f}s "
                f"({ratio:.2f}x > {tol:.2f}x tolerance)"
            )
        report.append(
            f"{name:<28} | {base_total:9.4f}s | {cand_total:9.4f}s | "
            f"{ratio:5.2f}x | {tol:4.1f}x | {verdict}"
        )
    for name in sorted(set(candidate) - set(base_phases)):
        report.append(
            f"{name:<28} | {'—':>10} | {candidate[name]['total_s']:9.4f}s | "
            f"{'—':>6} | {'—':>5} | new (not gated)"
        )
    return report, failures
