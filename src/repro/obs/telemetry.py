"""Process-wide run telemetry: one tracer + one metrics registry + run metadata.

:class:`RunTelemetry` is the unit a run exports: the span buffer, the
metrics snapshot, and enough metadata (config hash, seed, world size,
git describe) to compare two runs' profiles meaningfully — the
machine-readable record behind every ``BENCH_*`` trajectory.

Installation is process-wide: hot paths (samplers, trainers, the
simulated communicator) fetch the active tracer through
:func:`get_tracer`, which costs one global read and returns the shared
:data:`~repro.obs.tracer.NULL_TRACER` when nothing is installed — the
disabled path stays a no-op.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import subprocess
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from .metrics import MetricsRegistry
from .tracer import NULL_TRACER, Tracer

__all__ = [
    "RunTelemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "get_tracer",
    "config_hash",
    "git_describe",
]


def config_hash(config: Any) -> str:
    """Stable short hash of a config (dataclass, dict, or None)."""
    if config is None:
        return "none"
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
    elif isinstance(config, dict):
        payload = config
    else:
        payload = {"repr": repr(config)}
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


def git_describe() -> str:
    """``git describe --always --dirty`` of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


class RunTelemetry:
    """Everything one run records: tracer, metrics, and metadata."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metadata: Dict[str, Any] = dict(metadata or {})

    @classmethod
    def for_run(
        cls,
        config: Any = None,
        seed: Optional[int] = None,
        world_size: Optional[int] = None,
        **extra: Any,
    ) -> "RunTelemetry":
        """Telemetry pre-populated with comparable run metadata."""
        metadata: Dict[str, Any] = {
            "config_hash": config_hash(config),
            "git": git_describe(),
        }
        if seed is not None:
            metadata["seed"] = int(seed)
        if world_size is not None:
            metadata["world_size"] = int(world_size)
        metadata.update(extra)
        return cls(metadata=metadata)

    # ------------------------------------------------------------------
    def record_comm_stats(self, stats: Any) -> None:
        """Wire a :class:`repro.distributed.CommStats` snapshot into the
        metrics registry (``comm.*`` gauges), so retries, backoff seconds
        and rank evictions land in the exported metrics file."""
        for key, value in stats.to_dict().items():
            if isinstance(value, (int, float)):
                self.metrics.gauge(f"comm.{key}").set(value)
            elif isinstance(value, list):
                self.metrics.gauge(f"comm.{key}_count").set(len(value))

    def record_training(self, result: Any) -> None:
        """Summarise a :class:`~repro.pipeline.trainers.GNNTrainResult`."""
        self.metrics.gauge("train.epochs").set(len(result.history))
        self.metrics.gauge("train.steps").set(result.trained_steps)
        self.metrics.gauge("train.skipped_graphs").set(result.skipped_graphs)
        self.metrics.gauge("train.checkpoints_written").set(result.checkpoints_written)
        self.metrics.gauge("train.watchdog_rollbacks").set(
            getattr(result, "watchdog_rollbacks", 0)
        )
        epoch_hist = self.metrics.histogram("train.epoch_seconds")
        for record in result.history.records:
            epoch_hist.observe(record.epoch_seconds)
        for stage, total in result.timers.totals().items():
            self.metrics.gauge(f"train.stage_seconds.{stage}").set(total)
        if result.comm_stats is not None:
            self.record_comm_stats(result.comm_stats)

    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, Any]:
        """Metadata + full metrics dump (the ``--metrics-out`` payload)."""
        return {"metadata": dict(self.metadata), **self.metrics.to_dict()}

    def write_metrics(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.metrics_snapshot(), fh, indent=2, default=str)
            fh.write("\n")

    def write_trace(self, path: str) -> None:
        """Chrome ``trace_event`` JSON (``.json``) or JSONL (``.jsonl``)."""
        if path.endswith(".jsonl"):
            self.tracer.write_jsonl(path)
        else:
            self.tracer.write_chrome_trace(path, metadata=self.metadata)


# ----------------------------------------------------------------------
# process-wide current telemetry
# ----------------------------------------------------------------------
_CURRENT: Optional[RunTelemetry] = None


def get_telemetry() -> Optional[RunTelemetry]:
    """The installed telemetry, or ``None`` when tracing is disabled."""
    return _CURRENT


def set_telemetry(telemetry: Optional[RunTelemetry]) -> Optional[RunTelemetry]:
    """Install (or clear, with ``None``) the process-wide telemetry.

    Returns the previously installed object so callers can restore it.
    """
    global _CURRENT
    previous = _CURRENT
    _CURRENT = telemetry
    return previous


@contextmanager
def use_telemetry(telemetry: Optional[RunTelemetry]) -> Iterator[Optional[RunTelemetry]]:
    """Scoped install: restores the previous telemetry on exit.

    ``use_telemetry(None)`` is a supported no-op scope, so call sites can
    write ``with use_telemetry(maybe_telemetry): ...`` unconditionally.
    """
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)


def get_tracer():
    """The active tracer — :data:`NULL_TRACER` when telemetry is off.

    This is the hot-path entry point: one global read, no allocation.
    """
    current = _CURRENT
    return current.tracer if current is not None else NULL_TRACER
