"""Unified run observability: tracing, metrics, and run telemetry.

* :mod:`repro.obs.tracer` — hierarchical spans exported as JSONL or
  Chrome ``trace_event`` JSON (``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.metrics` — counters, gauges, streaming histograms;
* :mod:`repro.obs.telemetry` — the process-wide :class:`RunTelemetry`
  (tracer + metrics + run metadata) behind ``--trace-out`` /
  ``--metrics-out``;
* :mod:`repro.obs.summarize` — per-phase tables from exported traces
  (``repro telemetry summarize``);
* :mod:`repro.obs.exporter` — live ``/metrics`` (Prometheus text) and
  ``/health`` HTTP exposition (``--metrics-port``);
* :mod:`repro.obs.regression` — checked-in phase-total baselines and
  the ``repro telemetry diff`` perf-regression gate.

See ``docs/observability.md`` for the exported schemas and how to
reproduce the paper's Figure-3 breakdown from a trace.
"""

from .tracer import NULL_TRACER, NullTracer, Span, Tracer
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .telemetry import (
    RunTelemetry,
    config_hash,
    get_telemetry,
    get_tracer,
    git_describe,
    set_telemetry,
    use_telemetry,
)
from .summarize import SpanRecord, load_trace, phase_totals, summarize_trace
from .exporter import MetricsExporter, render_prometheus
from .regression import (
    BASELINE_SCHEMA,
    diff_profiles,
    load_baseline,
    load_phase_totals,
    record_baseline,
    write_baseline,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunTelemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "get_tracer",
    "config_hash",
    "git_describe",
    "SpanRecord",
    "load_trace",
    "phase_totals",
    "summarize_trace",
    "MetricsExporter",
    "render_prometheus",
    "BASELINE_SCHEMA",
    "record_baseline",
    "write_baseline",
    "load_baseline",
    "load_phase_totals",
    "diff_profiles",
]
