"""Live metrics/health exposition over stdlib HTTP.

``--metrics-port`` on ``repro train|serve|loadgen`` starts a
:class:`MetricsExporter`: a daemon thread running
``http.server.ThreadingHTTPServer`` with two endpoints —

* ``GET /metrics`` — the installed registry's snapshot rendered as
  Prometheus text exposition format (counters, gauges, and histograms
  as summaries with p50/p95/p99 quantiles), scrape-ready;
* ``GET /health`` — a JSON liveness/readiness document (HTTP 200 while
  ready, 503 once draining or the circuit breaker is open), wrapping
  :meth:`repro.serve.InferenceEngine.health` for serving and the
  watchdog/checkpoint state for training.

Everything is pull-based and read-only: the exporter never mutates the
registry, and when telemetry is disabled no exporter is created at all
(the no-op guarantee tested in ``tests/obs/test_exporter.py``).
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional

__all__ = ["MetricsExporter", "render_prometheus", "sanitize_metric_name"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Map a registry name onto the Prometheus grammar.

    Registry names are dotted (``serve.latency_ms``); Prometheus allows
    ``[a-zA-Z_:][a-zA-Z0-9_:]*``, so every other character becomes an
    underscore and a leading digit gets a prefix.
    """
    out = _NAME_RE.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out or "_"


def render_prometheus(snapshot: Optional[Dict[str, Any]]) -> str:
    """Render a :meth:`MetricsRegistry.to_dict` snapshot as Prometheus
    text exposition format (version 0.0.4).

    Counters and gauges emit one sample each; histograms emit a summary:
    ``{quantile="0.5"|"0.95"|"0.99"}`` samples plus ``_sum``/``_count``
    and ``_min``/``_max`` gauges.  ``None`` or an empty snapshot renders
    to a valid (empty) page so a scrape never 500s.
    """
    if not snapshot:
        return ""
    lines = []
    for name, value in snapshot.get("counters", {}).items():
        prom = sanitize_metric_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value!r}")
    for name, value in snapshot.get("gauges", {}).items():
        prom = sanitize_metric_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value!r}")
    for name, summary in snapshot.get("histograms", {}).items():
        prom = sanitize_metric_name(name)
        lines.append(f"# TYPE {prom} summary")
        for q, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            lines.append(f'{prom}{{quantile="{q}"}} {summary.get(key, 0.0)!r}')
        lines.append(f"{prom}_sum {summary.get('sum', 0.0)!r}")
        lines.append(f"{prom}_count {summary.get('count', 0)!r}")
        lines.append(f"# TYPE {prom}_min gauge")
        lines.append(f"{prom}_min {summary.get('min', 0.0)!r}")
        lines.append(f"# TYPE {prom}_max gauge")
        lines.append(f"{prom}_max {summary.get('max', 0.0)!r}")
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


class MetricsExporter:
    """Background HTTP thread exposing ``/metrics`` and ``/health``.

    Parameters
    ----------
    metrics_fn:
        Zero-argument callable returning the current metrics snapshot
        (typically ``telemetry.metrics.to_dict``); called per scrape.
    health_fn:
        Optional callable returning the health document; must contain a
        boolean ``"ready"`` key (HTTP 200 when true, 503 otherwise).
        Without it ``/health`` reports ``{"live": true, "ready": true}``.
    port:
        TCP port; 0 binds an ephemeral port (tests).  The bound port is
        readable as :attr:`port` after construction.
    """

    def __init__(
        self,
        metrics_fn: Callable[[], Optional[Dict[str, Any]]],
        health_fn: Optional[Callable[[], Dict[str, Any]]] = None,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        exporter = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib API name
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    try:
                        body = render_prometheus(exporter._metrics_fn())
                    except Exception as exc:  # registry must never 500 a scrape
                        body = f"# scrape error: {exc!r}\n"
                    self._reply(200, body, "text/plain; version=0.0.4")
                elif path == "/health":
                    health = exporter._health()
                    code = 200 if health.get("ready") else 503
                    self._reply(code, json.dumps(health) + "\n", "application/json")
                else:
                    self._reply(404, "not found\n", "text/plain")

            def _reply(self, code: int, body: str, content_type: str) -> None:
                data = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                try:
                    self.wfile.write(data)
                except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
                    pass

            def log_message(self, fmt: str, *args: Any) -> None:
                pass  # scrapes must not spam the run's stdout

        self._metrics_fn = metrics_fn
        self._health_fn = health_fn
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self.host = self._server.server_address[0]
        self.port = int(self._server.server_address[1])
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"metrics-exporter:{self.port}",
            daemon=True,
        )
        self._thread.start()
        self._closed = False

    def _health(self) -> Dict[str, Any]:
        if self._health_fn is None:
            return {"live": True, "ready": not self._closed}
        try:
            return dict(self._health_fn())
        except Exception as exc:
            return {"live": False, "ready": False, "error": repr(exc)}

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop serving (idempotent); in-flight requests finish first."""
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsExporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
