#!/usr/bin/env python
"""End-to-end observability check (the CI ``obs-smoke`` step).

Usage::

    python scripts/validate_obs.py [--world P] [--rank R] [--at-call K]

Three parts, mirroring the PR-7 acceptance criteria:

1. **Cross-process tracing** — a seeded ``--backend proc`` training run
   with a mid-epoch SIGKILL chaos fault must export ONE merged Chrome
   trace containing a distinct process lane per worker rank with
   collective-step spans (``comm.worker.allreduce`` / ``reduce`` /
   ``copy`` / ``barrier_wait``), supervisor death/eviction/resync
   events for the killed rank, and merged ``comm.supervisor.*`` /
   ``comm.worker.*`` metrics.
2. **Live exposition** — an in-process serving engine under
   ``run_loadgen`` scraped over HTTP: ``/metrics`` must return
   Prometheus text with ``serve.*`` summary quantiles, ``/health`` must
   be 200/ready while serving and flip to 503/not-ready after drain.
3. **Perf-regression gate** — ``repro telemetry baseline`` + ``diff``
   must exit 0 against a freshly recorded baseline and nonzero after an
   injected 3x slowdown of every span.

Exits non-zero on the first violation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import urllib.error
import urllib.request

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.cli import main as cli_main
from repro.detector import DetectorGeometry, EventSimulator, dataset_config, make_dataset
from repro.faults import FaultPlan, ProcessFault, SimClock
from repro.obs import MetricsExporter, RunTelemetry, use_telemetry
from repro.pipeline import GNNTrainConfig, train_gnn


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


# ----------------------------------------------------------------------
def check_cross_process_trace(tmpdir: str, world: int, rank: int, at_call: int) -> str:
    """Part 1: merged per-rank lanes + supervisor chaos events."""
    print(f"[1/3] proc-backend trace: SIGKILL rank {rank} at attempt {at_call}")
    cfg = dataset_config("ex3_like").with_sizes(2, 1, 0)
    dataset = make_dataset(cfg)
    telemetry = RunTelemetry.for_run(seed=0, world_size=world)
    plan = FaultPlan(
        process_faults=[ProcessFault(at_call=at_call, rank=rank, kind="sigkill")]
    )
    with use_telemetry(telemetry):
        result = train_gnn(
            dataset.train,
            dataset.val,
            GNNTrainConfig(
                mode="bulk", epochs=2, batch_size=32, hidden=8, num_layers=2,
                mlp_layers=2, depth=2, fanout=3, seed=0, world_size=world,
                allreduce="coalesced", backend="proc",
            ),
            fault_plan=plan,
        )
    if result.comm_stats.rank_failures != [rank]:
        fail(f"expected eviction of rank {rank}, got {result.comm_stats.rank_failures}")

    trace_path = os.path.join(tmpdir, "proc_trace.json")
    telemetry.write_trace(trace_path)
    with open(trace_path) as fh:
        trace = json.load(fh)
    events = trace["traceEvents"]

    lane_names = {
        ev["pid"]: ev["args"]["name"]
        for ev in events
        if ev.get("ph") == "M" and ev.get("name") == "process_name"
    }
    worker_pids = {pid for pid in lane_names if pid != 0}
    survivors = world - 1
    if len(worker_pids) < survivors:
        fail(
            f"expected >= {survivors} worker lanes in the merged trace, got "
            f"{sorted(lane_names.values())}"
        )
    if lane_names.get(0) != "repro":
        fail(f"driver lane (pid 0) missing or renamed: {lane_names}")

    step_spans = {"comm.worker.allreduce", "comm.worker.reduce",
                  "comm.worker.copy", "comm.worker.barrier_wait"}
    pids_with_steps = {
        ev["pid"]
        for ev in events
        if ev.get("ph") == "X" and ev["name"] in step_spans and ev["pid"] != 0
    }
    if len(pids_with_steps) < survivors:
        fail(
            f"collective-step spans present in only {len(pids_with_steps)} "
            f"worker lanes (need >= {survivors})"
        )
    span_names = {ev["name"] for ev in events if ev.get("ph") == "X"}
    missing = step_spans - span_names
    if missing:
        fail(f"missing collective-step span kinds: {sorted(missing)}")

    instant = {ev["name"] for ev in events if ev.get("ph") == "i"}
    for needed in ("comm.supervisor.rank_death", "comm.supervisor.rank_evicted",
                   "comm.supervisor.resync_broadcast", "comm.rank_evicted",
                   "comm.resync"):
        if needed not in instant:
            fail(f"supervisor event {needed!r} missing from trace "
                 f"(instants present: {sorted(instant)})")

    snap = telemetry.metrics.to_dict()
    counters = snap["counters"]
    for needed in ("comm.supervisor.rank_death", "comm.supervisor.rank_evicted",
                   "comm.supervisor.resync_broadcast", "comm.worker.heartbeats",
                   "comm.worker.collectives"):
        if counters.get(needed, 0) <= 0:
            fail(f"counter {needed!r} missing/zero in merged metrics: "
                 f"{sorted(counters)}")
    print(
        f"  OK: {len(worker_pids)} worker lanes, "
        f"{sum(1 for ev in events if ev.get('ph') == 'X' and ev['pid'] != 0)} "
        f"worker spans, supervisor events + counters present"
    )
    return trace_path


# ----------------------------------------------------------------------
def check_live_exposition(tmpdir: str) -> None:
    """Part 2: /metrics Prometheus text + /health readiness flip."""
    print("[2/3] live exposition: /metrics + /health during loadgen")
    from repro.pipeline import ExaTrkXPipeline, GNNTrainConfig, PipelineConfig
    from repro.serve import InferenceEngine, LoadGenConfig, ServeConfig, run_loadgen

    geometry = DetectorGeometry.barrel_only()
    sim = EventSimulator(geometry, particles_per_event=12)
    import numpy as np

    events = [sim.generate(np.random.default_rng(i), event_id=i) for i in range(5)]
    config = PipelineConfig(
        embedding_dim=6, embedding_epochs=3, filter_epochs=3, frnn_radius=0.3,
        gnn=GNNTrainConfig(mode="bulk", epochs=2, batch_size=32, hidden=8,
                           num_layers=2, depth=2, fanout=3, bulk_k=2),
    )
    telemetry = RunTelemetry.for_run(seed=0)
    with use_telemetry(telemetry):
        pipe = ExaTrkXPipeline(config, geometry)
        pipe.fit(events[:3], events[3:4])
        engine = InferenceEngine(
            pipe,
            ServeConfig(max_batch_events=4, max_wait_ms=5.0, max_queue_events=64,
                        workers=0, sim_service_time_s=1e-3),
            clock=SimClock(),
        )
        with MetricsExporter(
            metrics_fn=telemetry.metrics_snapshot,
            health_fn=engine.health,
            port=0,
        ) as exporter:
            health = json.loads(
                urllib.request.urlopen(f"{exporter.url}/health").read()
            )
            if not (health.get("live") and health.get("ready")):
                fail(f"/health not ready while serving: {health}")

            run_loadgen(
                engine, events[4:],
                LoadGenConfig(rate=200.0, num_requests=32, arrival="poisson", seed=0),
            )
            body = urllib.request.urlopen(f"{exporter.url}/metrics").read().decode()
            for needle in (
                '# TYPE serve_latency_ms summary',
                'serve_latency_ms{quantile="0.5"}',
                'serve_latency_ms{quantile="0.95"}',
                'serve_latency_ms{quantile="0.99"}',
                "serve_latency_ms_count",
            ):
                if needle not in body:
                    fail(f"/metrics missing {needle!r}; got:\n{body[:2000]}")

            engine.close()  # graceful drain: readiness must flip
            try:
                urllib.request.urlopen(f"{exporter.url}/health")
                fail("/health returned 200 after engine drain")
            except urllib.error.HTTPError as err:
                if err.code != 503:
                    fail(f"/health after drain: expected 503, got {err.code}")
                health = json.loads(err.read())
            if health.get("ready"):
                fail(f"/health still ready after drain: {health}")
    print("  OK: Prometheus serve.* quantiles served; readiness flipped on drain")


# ----------------------------------------------------------------------
def check_regression_gate(tmpdir: str, trace_path: str) -> None:
    """Part 3: baseline self-diff passes, 3x slowdown trips."""
    print("[3/3] perf-regression gate: baseline + injected 3x slowdown")
    baseline_path = os.path.join(tmpdir, "baseline.json")
    rc = cli_main(["telemetry", "baseline", trace_path, "-o", baseline_path])
    if rc != 0:
        fail(f"telemetry baseline exited {rc}")
    rc = cli_main(["telemetry", "diff", trace_path, baseline_path])
    if rc != 0:
        fail(f"telemetry diff against own baseline exited {rc} (want 0)")

    with open(trace_path) as fh:
        trace = json.load(fh)
    for ev in trace["traceEvents"]:
        if ev.get("ph") == "X":
            ev["dur"] = float(ev.get("dur", 0.0)) * 3.0 + 1.0
    slow_path = os.path.join(tmpdir, "slow_trace.json")
    with open(slow_path, "w") as fh:
        json.dump(trace, fh)
    rc = cli_main(["telemetry", "diff", slow_path, baseline_path])
    if rc == 0:
        fail("telemetry diff did not trip on an injected 3x slowdown")
    print(f"  OK: self-diff exit 0, slowdown diff exit {rc}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--world", type=int, default=4)
    parser.add_argument("--rank", type=int, default=2, help="rank to SIGKILL")
    parser.add_argument("--at-call", type=int, default=5)
    args = parser.parse_args()
    if not 0 <= args.rank < args.world:
        fail(f"--rank {args.rank} outside world of {args.world}")
    with tempfile.TemporaryDirectory(prefix="repro_obs_") as tmpdir:
        trace_path = check_cross_process_trace(
            tmpdir, args.world, args.rank, args.at_call
        )
        check_live_exposition(tmpdir)
        check_regression_gate(tmpdir, trace_path)
    print("OK: observability validation passed (trace merge, exposition, gate)")


if __name__ == "__main__":
    main()
