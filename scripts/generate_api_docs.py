"""Regenerate docs/api.md from the package `__all__` lists.

Usage::

    python scripts/generate_api_docs.py > docs/api.md
"""

from __future__ import annotations

import importlib
import inspect

MODULES = [
    "repro.tensor",
    "repro.nn",
    "repro.graph",
    "repro.detector",
    "repro.models",
    "repro.sampling",
    "repro.distributed",
    "repro.memory",
    "repro.pipeline",
    "repro.data",
    "repro.guard",
    "repro.serve",
    "repro.metrics",
    "repro.obs",
    "repro.faults",
    "repro.perf",
    "repro.io",
    "repro.store",
    "repro.baselines",
    "repro.cli",
]


def main() -> None:
    print("# API reference\n")
    print(
        "Public surface per subpackage (first docstring line of every "
        "exported name).  Generated from the package `__all__` lists.\n"
    )
    for modname in MODULES:
        mod = importlib.import_module(modname)
        print(f"## `{modname}`\n")
        doc = (mod.__doc__ or "").strip().split("\n")[0]
        if doc:
            print(doc + "\n")
        print("| name | kind | summary |")
        print("|---|---|---|")
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name, None)
            if obj is None:
                continue
            if inspect.ismodule(obj):
                kind, summary = "module", "submodule"
            else:
                summary = (inspect.getdoc(obj) or "").strip().split("\n")[0]
                kind = (
                    "class"
                    if inspect.isclass(obj)
                    else "function"
                    if inspect.isfunction(obj) or inspect.isbuiltin(obj)
                    else "constant"
                )
            print(f"| `{name}` | {kind} | {summary.replace('|', chr(92) + '|')} |")
        print()


if __name__ == "__main__":
    main()
