#!/usr/bin/env python
"""End-to-end validation of the hostile-workload scenario engine
(``repro.scenarios``).

Usage::

    python scripts/validate_scenarios.py [--matrix smoke]

Runs the full chaos matrix twice and exits non-zero on the first
violation (the CI scenarios-smoke step runs this):

1. **Coverage** — the matrix carries at least 6 scenarios and includes
   the four mandatory resilience proofs: quarantine isolation, breaker
   degraded-mode recovery, SIGKILL training chaos, and store-corruption
   detection.
2. **Floors** — every scenario clears its physics-metric and
   behavioural floors (efficiency/purity, quarantine accounting,
   breaker open → GNN-skip → closed, typed ``StoreCorruptError``,
   evicted ranks).
3. **Determinism** — two independent runs of the matrix produce
   byte-identical conformance reports modulo the ``generated_at``
   timestamp.
4. **CLI surface** — ``repro scenarios list/run/report`` work against
   the written report file.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.scenarios import (  # noqa: E402
    build_report,
    get_matrix,
    render_report,
    run_matrix,
    strip_volatile,
    write_report,
)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def ok(message: str) -> None:
    print(f"ok: {message}")


REQUIRED = {
    "quarantine isolation": lambda s: s.floors.min_quarantined >= 1,
    "breaker recovery": lambda s: s.floors.require_breaker_recovery,
    "SIGKILL chaos": lambda s: (s.train_chaos or {}).get("kind") == "sigkill",
    "store corruption": lambda s: s.floors.require_store_corrupt_detected,
}


def check_coverage(matrix) -> None:
    if len(matrix.scenarios) < 6:
        fail(f"matrix {matrix.name!r} has only {len(matrix.scenarios)} scenarios")
    for label, predicate in REQUIRED.items():
        if not any(predicate(s) for s in matrix.scenarios):
            fail(f"matrix {matrix.name!r} has no {label} scenario")
    ok(
        f"matrix {matrix.name!r}: {len(matrix.scenarios)} scenarios, all "
        "four mandatory resilience proofs present"
    )


def run_once(matrix, root: str, tag: str) -> dict:
    workdir = os.path.join(root, tag)
    results = run_matrix(matrix, workdir)
    doc = build_report(matrix.name, results)
    if doc["summary"]["failed"]:
        print(render_report(doc), file=sys.stderr)
        fail(f"{doc['summary']['failed']} scenario(s) violated their floors")
    return doc


def check_determinism(doc_a: dict, doc_b: dict) -> None:
    blob_a = json.dumps(strip_volatile(doc_a), sort_keys=True)
    blob_b = json.dumps(strip_volatile(doc_b), sort_keys=True)
    if blob_a != blob_b:
        fail("two matrix runs produced different reports (nondeterminism)")
    ok(f"two runs byte-identical modulo timestamp ({len(blob_a)} bytes)")


def check_cli(matrix_name: str, doc: dict, root: str) -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(os.path.dirname(__file__), "..", "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    listing = subprocess.run(
        [sys.executable, "-m", "repro.cli", "scenarios", "list",
         "--matrix", matrix_name],
        capture_output=True, text=True, env=env,
    )
    if listing.returncode != 0 or "mutator catalog" not in listing.stdout:
        fail(f"`repro scenarios list` failed:\n{listing.stderr}")
    report_path = os.path.join(root, "report.json")
    write_report(doc, report_path)
    shown = subprocess.run(
        [sys.executable, "-m", "repro.cli", "scenarios", "report", report_path],
        capture_output=True, text=True, env=env,
    )
    if shown.returncode != 0 or "passed" not in shown.stdout:
        fail(f"`repro scenarios report` failed:\n{shown.stderr}")
    ok("CLI list/report round-trip works")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--matrix", default="smoke")
    args = parser.parse_args()

    matrix = get_matrix(args.matrix)
    check_coverage(matrix)
    with tempfile.TemporaryDirectory(prefix="validate_scenarios_") as root:
        doc_a = run_once(matrix, root, "run_a")
        ok(
            f"run A: {doc_a['summary']['passed']}/{doc_a['summary']['total']} "
            "scenarios passed their floors"
        )
        doc_b = run_once(matrix, root, "run_b")
        check_determinism(doc_a, doc_b)
        check_cli(matrix.name, doc_a, root)
    print(render_report(doc_a))
    print("scenario engine validation: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
