#!/usr/bin/env python
"""Validate the async data pipeline's exported telemetry.

Usage::

    python scripts/validate_prefetch.py [--determinism] METRICS.json [TRACE.json]

Checks that a training run with ``--prefetch-workers > 0`` exported the
pipeline's health instruments (``data.prefetch.*`` counters, gauges and
histograms — queue depth and stall time in particular) and, when a trace
is given, that the trainer-side ``data.prefetch.next`` and worker-side
``data.prefetch.sample`` spans are present.  With ``--determinism`` it
additionally trains a tiny model at ``workers=0`` and ``workers=4`` and
asserts bit-identical final weights — the pipeline's core contract.
Exits non-zero on the first violation — the CI prefetch-smoke step runs
this after a short prefetched training.
"""

from __future__ import annotations

import json
import sys

REQUIRED_COUNTERS = (
    "data.prefetch.steps",
    "data.prefetch.stall_seconds",
    "data.prefetch.sample_seconds",
)
REQUIRED_GAUGES = (
    "data.prefetch.workers",
    "data.prefetch.queue_depth",
)
REQUIRED_HISTOGRAMS = (
    "data.prefetch.queue_depth_dist",
    "data.prefetch.stall_s",
)
REQUIRED_SPANS = (
    "data.prefetch.next",
    "data.prefetch.sample",
)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate_metrics(path: str) -> None:
    with open(path) as fh:
        snapshot = json.load(fh)
    for section, names in (
        ("counters", REQUIRED_COUNTERS),
        ("gauges", REQUIRED_GAUGES),
        ("histograms", REQUIRED_HISTOGRAMS),
    ):
        table = snapshot.get(section)
        if not isinstance(table, dict):
            fail(f"{path}: missing {section!r} section")
        for name in names:
            if name not in table:
                fail(f"{path}: {section} missing {name!r}")
    if snapshot["counters"]["data.prefetch.steps"] <= 0:
        fail(f"{path}: data.prefetch.steps is zero — the loader never ran")
    if snapshot["gauges"]["data.prefetch.workers"] <= 0:
        fail(f"{path}: data.prefetch.workers is zero — run with --prefetch-workers")
    if snapshot["histograms"]["data.prefetch.stall_s"]["count"] <= 0:
        fail(f"{path}: stall histogram is empty")
    print(
        f"OK: {path} — {int(snapshot['counters']['data.prefetch.steps'])} "
        f"prefetched steps, workers="
        f"{int(snapshot['gauges']['data.prefetch.workers'])}, "
        f"stall {snapshot['counters']['data.prefetch.stall_seconds']:.3f}s of "
        f"{snapshot['counters']['data.prefetch.sample_seconds']:.3f}s sampling"
    )


def validate_trace(path: str) -> None:
    with open(path) as fh:
        payload = json.load(fh)
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: 'traceEvents' missing")
    names = {ev.get("name") for ev in events if isinstance(ev, dict)}
    for required in REQUIRED_SPANS:
        if required not in names:
            fail(f"{path}: no {required!r} span in the trace")
    tids = {
        ev.get("tid")
        for ev in events
        if isinstance(ev, dict) and ev.get("name") == "data.prefetch.sample"
    }
    print(f"OK: {path} — prefetch spans present on thread lanes {sorted(tids)}")


def check_determinism() -> None:
    """Short training at workers=0 vs workers=4 → bit-identical weights."""
    import numpy as np

    from repro.detector import dataset_config, make_dataset
    from repro.pipeline import GNNTrainConfig, train_gnn

    dataset = make_dataset(dataset_config("tiny"))

    def run(workers: int):
        config = GNNTrainConfig(
            mode="bulk", epochs=1, batch_size=32, hidden=8, num_layers=2,
            mlp_layers=2, depth=2, fanout=3, bulk_k=2, seed=0,
            prefetch_workers=workers,
        )
        return train_gnn(dataset.train, dataset.val, config).model.state_dict()

    sync, prefetched = run(0), run(4)
    for key in sync:
        if not np.array_equal(sync[key], prefetched[key]):
            fail(
                f"determinism: weights differ at {key!r} between "
                "workers=0 and workers=4"
            )
    print(
        f"OK: determinism — workers=0 and workers=4 produce bit-identical "
        f"weights ({len(sync)} tensors)"
    )


def main(argv) -> int:
    args = list(argv[1:])
    determinism = "--determinism" in args
    if determinism:
        args.remove("--determinism")
    if not args and not determinism:
        print(__doc__)
        return 2
    if args:
        validate_metrics(args[0])
    if len(args) > 1:
        validate_trace(args[1])
    if determinism:
        check_determinism()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
