#!/usr/bin/env python
"""End-to-end guardrail chaos smoke: three deterministic recovery paths.

Usage::

    python scripts/validate_guardrails.py [METRICS_OUT.json]

Self-contained check of ``repro.guard`` (the CI guard-smoke step), using
the deterministic fault plans from :mod:`repro.faults`:

1. **watchdog rollback** — a :class:`NumericFault` turns one training
   loss into NaN; the stability watchdog rolls back to the last good
   checkpoint with LR backoff and training finishes with a finite loss.
   Two same-seed runs produce bit-identical post-rollback histories.
2. **checkpoint fallback** — the newest retained checkpoint is corrupted
   with ``flip_bit``; resume skips it (checksum failure) and restarts
   from the previous *verified* history copy instead of crashing.
3. **breaker recovery** — a :class:`StageFault` fails the serving GNN
   stage repeatedly; the circuit breaker opens, requests are served
   degraded (GNN skipped) meanwhile, a half-open probe closes it again,
   and after ``close()`` every request reached a terminal state (no
   hung requests).

Exits non-zero on the first violation.  Pass a path to also write the
run's metrics snapshot for inspection.
"""

from __future__ import annotations

import os
import sys
import tempfile

import numpy as np


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def _train_with_nan_fault(workdir: str, tag: str):
    """One watchdog run: NaN loss injected at step 20, rollback expected."""
    from repro.faults import FaultPlan, NumericFault
    from repro.graph import random_graph
    from repro.pipeline import GNNTrainConfig, train_gnn

    rng = np.random.default_rng(7)
    graphs = [random_graph(60, 240, rng=rng, true_fraction=0.3) for _ in range(2)]
    config = GNNTrainConfig(
        mode="bulk",
        epochs=4,
        batch_size=16,
        hidden=8,
        num_layers=2,
        bulk_k=2,
        seed=3,
        checkpoint_every=1,
        checkpoint_path=os.path.join(workdir, f"wd_{tag}.npz"),
        keep_last=3,
        watchdog=True,
        watchdog_max_rollbacks=2,
        watchdog_lr_backoff=0.5,
    )
    # at_step=20 lands in epoch 1, after the epoch-0 checkpoint exists.
    plan = FaultPlan(numeric_faults=[NumericFault(at_step=20, target="loss")])
    return train_gnn(graphs, graphs[:1], config, fault_plan=plan)


def check_watchdog(workdir: str) -> None:
    result = _train_with_nan_fault(workdir, "a")
    if result.watchdog_rollbacks != 1:
        fail(f"expected exactly 1 watchdog rollback, got "
             f"{result.watchdog_rollbacks}")
    losses = [r.train_loss for r in result.history.records]
    if not losses or not all(np.isfinite(losses)):
        fail(f"post-rollback training losses not finite: {losses}")
    twin = _train_with_nan_fault(workdir, "b")
    twin_losses = [r.train_loss for r in twin.history.records]
    if losses != twin_losses:
        fail("two same-seed faulted runs diverged: "
             f"{losses} vs {twin_losses}")
    print(f"PASS: NaN loss at step 20 -> 1 rollback + LR backoff, final "
          f"loss {losses[-1]:.4f} finite, recovery bit-deterministic")


def check_checkpoint_fallback(workdir: str) -> None:
    from repro.faults import flip_bit
    from repro.graph import random_graph
    from repro.pipeline import GNNTrainConfig, checkpoint_history_paths, train_gnn

    rng = np.random.default_rng(11)
    graphs = [random_graph(60, 240, rng=rng, true_fraction=0.3) for _ in range(2)]
    path = os.path.join(workdir, "fb.npz")
    config = GNNTrainConfig(
        mode="bulk", epochs=3, batch_size=16, hidden=8, num_layers=2,
        bulk_k=2, seed=5, checkpoint_every=1, checkpoint_path=path,
        keep_last=3,
    )
    train_gnn(graphs, graphs[:1], config)
    history = checkpoint_history_paths(path)
    if len(history) < 2:
        fail(f"expected >=2 retained history checkpoints, got {history}")
    flip_bit(path, byte_offset=256)  # corrupt the newest checkpoint
    resumed = train_gnn(
        graphs, graphs[:1],
        config.replace(epochs=4, resume_from=path),
    )
    if resumed.resume_fallback_path is None:
        fail("resume did not fall back despite a corrupt primary checkpoint")
    if os.path.abspath(resumed.resume_fallback_path) == os.path.abspath(path):
        fail("fallback 'selected' the corrupt primary checkpoint")
    if resumed.resumed_epoch is None:
        fail("fallback resume reports no resumed epoch")
    final = [r.train_loss for r in resumed.history.records][-1]
    if not np.isfinite(final):
        fail(f"post-fallback training loss not finite: {final}")
    print(f"PASS: bit-flipped newest checkpoint skipped, resumed epoch "
          f"{resumed.resumed_epoch} from verified "
          f"{os.path.basename(resumed.resume_fallback_path)}")


def check_breaker(workdir: str) -> None:
    from repro.detector import DetectorGeometry, EventSimulator, ParticleGun
    from repro.faults import FaultPlan, SimClock, StageFault
    from repro.pipeline import ExaTrkXPipeline, GNNTrainConfig, PipelineConfig
    from repro.serve import InferenceEngine, ServeConfig

    geometry = DetectorGeometry.barrel_only()
    sim = EventSimulator(
        geometry, gun=ParticleGun(), particles_per_event=12, noise_fraction=0.05
    )
    events = [
        sim.generate(np.random.default_rng(90 + i), event_id=i) for i in range(4)
    ]
    pipe = ExaTrkXPipeline(
        PipelineConfig(
            embedding_dim=6, embedding_epochs=4, filter_epochs=4,
            frnn_radius=0.3,
            gnn=GNNTrainConfig(
                mode="bulk", epochs=2, batch_size=64, hidden=16,
                num_layers=2, depth=2, fanout=4, bulk_k=4,
            ),
        ),
        geometry,
    )
    pipe.fit(events[:3], events[3:4])

    clock = SimClock()
    plan = FaultPlan(stage_faults=[StageFault(stage="gnn", at_call=1, times=3)])
    engine = InferenceEngine(
        pipe,
        ServeConfig(
            max_batch_events=1,
            cache_capacity=0,  # every request exercises the GNN stage
            breaker_threshold=2,
            breaker_cooldown_ms=100.0,
            breaker_probes=1,
        ),
        clock=clock,
        fault_plan=plan,
    )
    probe = events[3]
    statuses = []
    for i in range(8):
        req = engine.submit(probe)
        engine.flush()  # synchronous engine: dispatch immediately
        statuses.append((req.status, req.degraded, req.breaker_degraded,
                         engine.breaker.state))
        clock.sleep(0.06)  # two ticks span the 100 ms cooldown
    engine.close()

    if engine.breaker.transitions.get("open", 0) < 2:
        fail(f"breaker never re-opened after a failed probe: "
             f"{engine.breaker.transitions}")
    if engine.breaker.state != "closed":
        fail(f"breaker did not recover to closed: {engine.breaker.state}")
    degraded = [s for s in statuses if s[2]]
    if not degraded:
        fail("no request was served breaker-degraded while open")
    if statuses[-1][:2] != ("done", False):
        fail(f"post-recovery request not served normally: {statuses[-1]}")
    stats = engine.stats
    if stats.terminal != stats.submitted:
        fail(f"hung requests after drain: terminal {stats.terminal} != "
             f"submitted {stats.submitted}")
    health = engine.health()
    if health["live"] or health["in_flight"]:
        fail(f"engine not fully drained after close(): {health}")
    print(f"PASS: 3 injected GNN failures -> breaker open "
          f"({engine.breaker.transitions['open']}x), {len(degraded)} served "
          f"degraded, half-open probe recovered, 0 hung of "
          f"{stats.submitted} requests")


def main() -> int:
    from repro.obs import RunTelemetry, use_telemetry

    telemetry = RunTelemetry.for_run(command="validate_guardrails")
    with tempfile.TemporaryDirectory() as workdir, use_telemetry(telemetry):
        check_watchdog(workdir)
        check_checkpoint_fallback(workdir)
        check_breaker(workdir)

    counters = telemetry.metrics.to_dict()["counters"]
    for name in (
        "guard.watchdog.rollbacks",
        "guard.resume.fallback",
        "guard.breaker.gnn.open",
    ):
        if counters.get(name, 0) <= 0:
            fail(f"counter {name!r} missing or zero")
    print("PASS: guard.* counters populated")

    if len(sys.argv) > 1:
        telemetry.write_metrics(sys.argv[1])
        print(f"wrote metrics snapshot to {sys.argv[1]}")
    print("guardrail validation OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
