#!/usr/bin/env python
"""End-to-end validation of the out-of-core event store (``repro.store``).

Usage::

    python scripts/validate_store.py [--budget-kb N] [--epochs N]

Exercises the store's four load-bearing guarantees on a synthetic
multi-event dataset and exits non-zero on the first violation (the CI
store-smoke step runs this):

1. **Guarded ingestion** — an injected invalid event (NaN features) is
   quarantined to the JSONL log and never reaches a shard.
2. **Bounded residency** — streamed epochs over a dataset at least 4×
   the resident-byte budget keep both the store's mapped window and the
   process RSS growth within the budget.
3. **Bit-exact streaming** — per-step sampled batches over the same
   :class:`~repro.data.EpochPlan` are identical whether graphs stream
   from mmap shards or sit fully resident in RAM.
4. **Training parity** — a streamed ``train_gnn`` run reproduces the
   in-RAM run's per-epoch losses and final weights bit for bit, with a
   non-zero shard-cache hit rate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.data import EpochPlan, sample_step  # noqa: E402
from repro.detector import dataset_config  # noqa: E402
from repro.graph import random_graph  # noqa: E402
from repro.pipeline import GNNTrainConfig, train_gnn  # noqa: E402
from repro.sampling import BulkShadowSampler  # noqa: E402
from repro.store import EventStore, ingest_graphs, ingest_simulated  # noqa: E402


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def ok(message: str) -> None:
    print(f"ok: {message}")


def rss_bytes() -> int:
    """Resident set size from /proc/self/statm (Linux)."""
    with open("/proc/self/statm") as fh:
        return int(fh.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")


# ----------------------------------------------------------------------
def check_quarantine(root: str) -> None:
    rng = np.random.default_rng(3)
    graphs = []
    for i in range(3):
        g = random_graph(50, 200, rng=rng, true_fraction=0.3)
        g.event_id = i
        graphs.append(g)
    bad = random_graph(50, 200, rng=rng, true_fraction=0.3)
    bad.event_id = 666
    bad.x[0, 0] = np.nan
    store_dir = os.path.join(root, "quarantine_store")
    log_path = os.path.join(root, "quarantine.jsonl")
    report = ingest_graphs(graphs + [bad], store_dir, quarantine_log=log_path)
    if report.quarantined != 1 or report.ingested != 3:
        fail(f"expected 1 quarantined / 3 ingested, got {report}")
    records = [json.loads(line) for line in open(log_path)]
    if len(records) != 1 or records[0]["id"] != 666:
        fail(f"quarantine log did not record event 666: {records}")
    with EventStore(store_dir) as store:
        if any(h.event_id == 666 for h in store.handles()):
            fail("invalid event reached a shard")
    ok("invalid event quarantined to JSONL, absent from every shard")


def check_bounded_residency(store_dir: str, budget: int, epochs: int) -> None:
    with EventStore(store_dir, budget_bytes=budget) as store:
        total = store.describe()["bytes"]
        if total < 4 * budget:
            fail(
                f"dataset too small for the bar: {total} bytes vs "
                f"4x budget {4 * budget}"
            )
        ok(f"dataset {total} bytes >= 4x the {budget}-byte budget")
        for handle in store.handles():  # warmup epoch: allocator settles
            handle.materialize()
        rss0 = rss_bytes()
        for _ in range(epochs):
            for handle in store.handles():
                g = handle.materialize()
                if store.resident_bytes > budget:
                    fail(
                        f"resident bytes {store.resident_bytes} exceeded "
                        f"budget {budget}"
                    )
                del g
        growth = rss_bytes() - rss0
        if store.stats.peak_resident_bytes > budget:
            fail(
                f"peak mapped bytes {store.stats.peak_resident_bytes} "
                f"exceeded budget {budget}"
            )
        if growth > budget:
            fail(
                f"RSS grew {growth} bytes over {epochs} streamed epochs — "
                f"more than the {budget}-byte budget"
            )
        if store.stats.unmaps == 0:
            fail("LRU never evicted: the budget was not exercised")
        ok(
            f"{epochs} streamed epochs: RSS growth {growth} bytes, peak "
            f"mapped {store.stats.peak_resident_bytes} <= budget {budget}, "
            f"{store.stats.unmaps} eviction(s)"
        )


def check_step_bit_parity(store_dir: str, budget: int) -> None:
    with EventStore(store_dir, budget_bytes=budget) as store:
        handles = store.handles("train")
        in_ram = store.load_split("train")
        sampler = BulkShadowSampler(depth=2, fanout=4)
        plans = [
            EpochPlan.build(gs, batch_size=64, k=2, rng=np.random.default_rng(0))
            for gs in (handles, in_ram)
        ]
        if len(plans[0]) != len(plans[1]) or len(plans[0]) == 0:
            fail(f"plan lengths differ: {len(plans[0])} vs {len(plans[1])}")
        for s_step, r_step in zip(plans[0].steps, plans[1].steps):
            streamed = sample_step(sampler, s_step, ranks=(0,))
            resident = sample_step(sampler, r_step, ranks=(0,))
            for sb, rb in zip(streamed[0], resident[0]):
                pairs = [
                    (sb.graph.edge_index, rb.graph.edge_index),
                    (sb.graph.x, rb.graph.x),
                    (sb.graph.y, rb.graph.y),
                    (sb.node_parent, rb.node_parent),
                    (sb.edge_parent, rb.edge_parent),
                    (sb.component_ids, rb.component_ids),
                    (sb.roots, rb.roots),
                ]
                for a, b in pairs:
                    same = (
                        (a is None and b is None)
                        or (a is not None and b is not None and np.array_equal(a, b))
                    )
                    if not same:
                        fail(
                            f"step {s_step.index}: streamed and in-RAM "
                            "sampled batches diverge"
                        )
        ok(
            f"{len(plans[0])} steps sampled bit-identically from mmap "
            "shards and from RAM"
        )


def check_training_parity(store_dir: str, budget: int) -> None:
    cfg = GNNTrainConfig(
        mode="bulk",
        epochs=2,
        batch_size=64,
        bulk_k=2,
        hidden=8,
        num_layers=2,
        eval_every=2,
        seed=0,
    )
    with EventStore(store_dir, budget_bytes=budget) as store:
        streamed = train_gnn(store.handles("train"), store.handles("val"), cfg)
        hit_rate = store.stats.hit_rate()
        if store.stats.hits == 0:
            fail("shard cache recorded no hits during streamed training")
        in_ram = train_gnn(store.load_split("train"), store.load_split("val"), cfg)
    s_loss = [r.train_loss for r in streamed.history.records]
    r_loss = [r.train_loss for r in in_ram.history.records]
    if s_loss != r_loss:
        fail(f"loss histories diverge: {s_loss} vs {r_loss}")
    s_state, r_state = streamed.model.state_dict(), in_ram.model.state_dict()
    for key in s_state:
        if not np.array_equal(s_state[key], r_state[key]):
            fail(f"final weights diverge at {key!r}")
    ok(
        f"streamed training matches in-RAM bit for bit "
        f"(losses {s_loss}, shard-cache hit rate {hit_rate:.2f})"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget-kb", type=int, default=96)
    parser.add_argument("--epochs", type=int, default=3)
    args = parser.parse_args()
    budget = args.budget_kb * 1024

    with tempfile.TemporaryDirectory(prefix="validate_store_") as root:
        check_quarantine(root)

        store_dir = os.path.join(root, "dataset_store")
        cfg = dataset_config("tiny").with_sizes(28, 2, 0)
        report = ingest_simulated(cfg, store_dir, max_shard_bytes=48 * 1024)
        ok(
            f"ingested {report.ingested} simulated event(s) into "
            f"{report.shards} shard(s) ({report.bytes_written} bytes)"
        )

        check_bounded_residency(store_dir, budget, args.epochs)
        check_step_bit_parity(store_dir, budget)
        check_training_parity(store_dir, budget)

    print("validate_store: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
