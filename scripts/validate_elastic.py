#!/usr/bin/env python
"""End-to-end elastic-recovery chaos check for the proc backend.

Usage::

    python scripts/validate_elastic.py [--rank R] [--at-call K] [--world P]

Trains the tiny GNN workload twice with a mid-epoch rank failure:

* **proc** backend with a real ``ProcessFault`` — the chosen worker
  process is SIGKILLed at collective attempt ``K``; the supervisor must
  detect the death, surface it as a permanent ``RankDeadError``, evict
  the rank, resync the survivors' parameters, and finish training;
* **sim** backend replaying the same failure as a permanent
  ``CommFault`` at the same attempt index — the deterministic reference
  for what an eviction at that point *should* produce.

Asserts both runs evicted exactly the chosen rank and that the
survivors' final weights are **bit-identical** across backends — the
elastic-recovery contract: crashing a worker mid-epoch changes nothing
about the surviving replicas' trajectory.  Exits non-zero on the first
violation — the CI elastic-smoke step runs this.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.detector import dataset_config, make_dataset
from repro.faults import CommFault, FaultPlan, ProcessFault
from repro.pipeline import GNNTrainConfig, train_gnn


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rank", type=int, default=2, help="rank to kill")
    parser.add_argument(
        "--at-call", type=int, default=5, help="0-based collective attempt"
    )
    parser.add_argument("--world", type=int, default=4, help="world size")
    args = parser.parse_args()
    if not 0 <= args.rank < args.world:
        fail(f"--rank {args.rank} outside world of {args.world}")

    cfg = dataset_config("ex3_like").with_sizes(2, 1, 0)
    dataset = make_dataset(cfg)
    base = dict(
        mode="bulk",
        epochs=2,
        batch_size=32,
        hidden=8,
        num_layers=2,
        mlp_layers=2,
        depth=2,
        fanout=3,
        seed=0,
        world_size=args.world,
        allreduce="coalesced",
    )
    proc_plan = FaultPlan(
        process_faults=[
            ProcessFault(at_call=args.at_call, rank=args.rank, kind="sigkill")
        ]
    )
    sim_plan = FaultPlan(
        comm_faults=[
            CommFault(at_call=args.at_call, rank=args.rank, transient=False)
        ]
    )

    print(
        f"elastic chaos: SIGKILL rank {args.rank} at collective attempt "
        f"{args.at_call}, world={args.world}"
    )
    res_proc = train_gnn(
        dataset.train,
        dataset.val,
        GNNTrainConfig(**base, backend="proc"),
        fault_plan=proc_plan,
    )
    res_sim = train_gnn(
        dataset.train,
        dataset.val,
        GNNTrainConfig(**base, backend="sim"),
        fault_plan=sim_plan,
    )

    print(f"proc backend evicted ranks: {res_proc.comm_stats.rank_failures}")
    print(f"sim replay evicted ranks:   {res_sim.comm_stats.rank_failures}")
    if res_proc.comm_stats.rank_failures != [args.rank]:
        fail(
            "proc backend did not evict exactly the killed rank: "
            f"{res_proc.comm_stats.rank_failures}"
        )
    if res_sim.comm_stats.rank_failures != [args.rank]:
        fail(
            "sim replay did not evict exactly the faulted rank: "
            f"{res_sim.comm_stats.rank_failures}"
        )

    state_proc = res_proc.model.state_dict()
    state_sim = res_sim.model.state_dict()
    mismatched = [
        key
        for key in state_sim
        if not np.array_equal(state_sim[key], state_proc[key])
    ]
    if mismatched:
        fail(
            f"{len(mismatched)} parameter(s) differ between backends "
            f"after recovery, e.g. {mismatched[:3]}"
        )

    final = res_proc.history.records[-1]
    print(
        f"OK: survivors' weights bit-identical across backends "
        f"({len(state_sim)} parameter tensors), final train loss "
        f"{final.train_loss:.6f}"
    )


if __name__ == "__main__":
    main()
