#!/usr/bin/env python
"""Fused-kernel smoke: parity, arena hygiene, measured message-path speedup.

Usage::

    python scripts/validate_kernels.py [--edges M] [--nodes N] [--repeats R]

Self-contained check of the :mod:`repro.tensor.kernels` fast path (the
CI ``kernels-smoke`` step):

1. **scatter parity** — ``scatter_add_rows`` matches ``np.add.at``
   (float64 tight, float32 to round-off tolerance);
2. **fused-op parity** — ``gather_concat_matmul`` / ``scatter_mlp_input``
   forward *and* gradients match the unfused gather → concat → matmul
   reference composition;
3. **arena hygiene** — a forward/backward pass recycles buffers (pool
   hits observed) and pooling does not change a single gradient bit
   relative to ``set_arena_enabled(False)``;
4. **speedup** — the fused message path (edge MSG + vertex AGG,
   forward + backward) must beat the unfused reference by >= 2x on a
   profile-shaped workload (the Fig-3 hot loop's m >> n regime).

Exits non-zero on the first violation.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_scatter_parity(rng) -> None:
    from repro.tensor import kernels

    for dtype, rtol in ((np.float64, 1e-12), (np.float32, 1e-4)):
        idx = rng.integers(0, 97, size=20_000)
        vals = rng.normal(size=(20_000, 8)).astype(dtype)
        ref = np.zeros((97, 8), dtype=dtype)
        np.add.at(ref, idx, vals)
        out = kernels.scatter_add_rows(vals, idx, 97)
        if not np.allclose(out, ref, rtol=rtol, atol=rtol):
            fail(f"scatter_add_rows diverges from np.add.at ({dtype.__name__})")
    print("scatter parity: OK")


def _edge_case(rng, m, n, e=64, f=64, h=32, dtype=np.float64):
    from repro.tensor import Tensor

    y = Tensor(rng.normal(size=(m, e)).astype(dtype), requires_grad=True)
    x = Tensor(rng.normal(size=(n, f)).astype(dtype), requires_grad=True)
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    w1 = Tensor(rng.normal(size=(e + 2 * f, h)).astype(dtype), requires_grad=True)
    w2 = Tensor(rng.normal(size=(2 * h + f, h)).astype(dtype), requires_grad=True)
    return y, x, rows, cols, w1, w2


def _fused_pass(y, x, rows, cols, w1, w2):
    from repro.tensor import ops

    msg = ops.relu(ops.gather_concat_matmul(y, x, rows, cols, w1))
    out = ops.scatter_mlp_input(msg, rows, cols, x, w2)
    ops.sum(out).backward()
    return out.data


def _unfused_pass(y, x, rows, cols, w1, w2):
    from repro.tensor import ops

    n = x.shape[0]
    cat = ops.concat([y, ops.gather_rows(x, rows), ops.gather_rows(x, cols)], axis=1)
    msg = ops.relu(ops.matmul(cat, w1))
    agg = ops.concat(
        [ops.segment_sum(msg, rows, n), ops.segment_sum(msg, cols, n), x], axis=1
    )
    out = ops.matmul(agg, w2)
    ops.sum(out).backward()
    return out.data


def check_fused_parity(rng) -> None:
    tensors = _edge_case(rng, m=600, n=80)
    y, x, rows, cols, w1, w2 = tensors
    fused_out = _fused_pass(*tensors)
    fused_grads = [p.grad.copy() for p in (y, x, w1, w2)]
    for p in (y, x, w1, w2):
        p.grad = None
    ref_out = _unfused_pass(*tensors)
    if not np.allclose(fused_out, ref_out, rtol=1e-11, atol=1e-11):
        fail("fused forward diverges from unfused reference")
    for g, p in zip(fused_grads, (y, x, w1, w2)):
        if not np.allclose(g, p.grad, rtol=1e-10, atol=1e-10):
            fail("fused gradients diverge from unfused reference")
    print("fused-op parity: OK")


def check_arena(rng) -> None:
    from repro.memory import default_arena, set_arena_enabled

    arena = default_arena()
    tensors = _edge_case(rng, m=600, n=80)
    before = arena.stats.hits
    _fused_pass(*tensors)
    pooled = [p.grad for p in (tensors[0], tensors[1], tensors[4], tensors[5])]
    if arena.stats.hits <= before:
        fail("arena saw no pool hits across a forward/backward pass")
    for p in (tensors[0], tensors[1], tensors[4], tensors[5]):
        p.grad = None
    prev = set_arena_enabled(False)
    try:
        _fused_pass(*tensors)
    finally:
        set_arena_enabled(prev)
    plain = [p.grad for p in (tensors[0], tensors[1], tensors[4], tensors[5])]
    for a, b in zip(pooled, plain):
        if not np.array_equal(a, b):
            fail("arena pooling changed gradient bits")
    print(f"arena hygiene: OK ({arena.stats.to_dict()})")


def _legacy_pass(y, x, rows, cols, w1, w2):
    """The pre-fusion message path, hand-rolled: fancy-index gathers, a
    materialised concat, ``np.add.at`` scatters, fresh temporaries for
    every intermediate — forward *and* backward (grad of sum())."""
    yd, xd, W1, W2 = y.data, x.data, w1.data, w2.data
    e, f, h = yd.shape[1], xd.shape[1], W1.shape[1]
    n = xd.shape[0]
    # forward
    cat = np.concatenate([yd, xd[rows], xd[cols]], axis=1)
    pre = cat @ W1
    msg = np.maximum(pre, 0.0)
    m_src = np.zeros((n, h), dtype=msg.dtype)
    np.add.at(m_src, rows, msg)
    m_dst = np.zeros((n, h), dtype=msg.dtype)
    np.add.at(m_dst, cols, msg)
    agg = np.concatenate([m_src, m_dst, xd], axis=1)
    out = agg @ W2
    # backward from grad = ones(out.shape)
    grad = np.ones_like(out)
    g_agg = grad @ W2.T
    g_w2 = agg.T @ grad
    g_msg = g_agg[:, :h][rows] + g_agg[:, h : 2 * h][cols]
    g_msg *= pre > 0
    g_cat = g_msg @ W1.T
    g_w1 = cat.T @ g_msg
    g_y = g_cat[:, :e]
    g_x = np.array(g_agg[:, 2 * h :])
    np.add.at(g_x, rows, g_cat[:, e : e + f])
    np.add.at(g_x, cols, g_cat[:, e + f :])
    return out, (g_y, g_x, g_w1, g_w2)


def check_speedup(rng, m: int, n: int, repeats: int) -> None:
    tensors = _edge_case(rng, m=m, n=n, dtype=np.float32)
    y, x, rows, cols, w1, w2 = tensors

    def clear_grads() -> None:
        for p in (y, x, w1, w2):
            p.grad = None

    # sanity: the legacy reference must agree with the fused path before
    # its timing means anything
    clear_grads()
    _fused_pass(*tensors)
    _, legacy_grads = _legacy_pass(*tensors)
    for g, p in zip(legacy_grads, (y, x, w1, w2)):
        if not np.allclose(g, p.grad, rtol=1e-3, atol=1e-3):
            fail("legacy reference pass diverges from the fused path")

    def best_of(fn) -> float:
        times = []
        for _ in range(repeats):
            clear_grads()
            t0 = time.perf_counter()
            fn(*tensors)
            times.append(time.perf_counter() - t0)
        return min(times)

    t_fused = best_of(_fused_pass)
    t_legacy = best_of(_legacy_pass)
    speedup = t_legacy / t_fused
    print(
        f"message path (m={m}, n={n}): legacy {t_legacy * 1e3:.1f} ms, "
        f"fused {t_fused * 1e3:.1f} ms -> {speedup:.2f}x"
    )
    # 1.5x is the smoke floor: typical runs measure 2-3x, but best-of
    # timing on a loaded CI box jitters; the headline >=2x epoch-time
    # claim is gated by the fig3 benchmark baseline instead.
    if speedup < 1.5:
        fail(f"fused message path speedup {speedup:.2f}x < 1.5x")
    print("speedup: OK")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # Defaults mirror the Fig-3 bulk-ShaDow batch shapes (hidden 32 with
    # the residual concat: e = f = 64), where the old path paid the most
    # for gathers, concats, and np.add.at dispatch.  At module scale
    # (m ~ 10^5) the GEMMs dominate and the ratio shrinks toward 1.
    parser.add_argument("--edges", type=int, default=6_000)
    parser.add_argument("--nodes", type=int, default=1_500)
    parser.add_argument("--repeats", type=int, default=20)
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    check_scatter_parity(rng)
    check_fused_parity(rng)
    check_arena(rng)
    check_speedup(rng, args.edges, args.nodes, args.repeats)
    print("validate_kernels: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
