#!/usr/bin/env python
"""Serving-engine smoke: parity, cache hits, shedding, metrics schema.

Usage::

    python scripts/validate_serving.py [METRICS_OUT.json]

Self-contained end-to-end check of ``repro.serve`` (the CI serving-smoke
step): fits a tiny pipeline, then asserts

1. **parity** — engine results are bit-identical to the sequential
   ``Pipeline.reconstruct`` loop, for both track builders;
2. **caching** — replaying the stream produces nonzero cache hits, again
   bit-identical;
3. **overload** — a deterministic load-generation run (simulated clock,
   fixed service time) sheds requests and serves some degraded, and the
   ``serve.*`` shed/degraded counters record it;
4. **metrics schema** — the exported latency histograms carry
   p50/p95/p99 summaries.

Exits non-zero on the first violation.  Pass a path to also write the
run's metrics snapshot for inspection.
"""

from __future__ import annotations

import sys

import numpy as np


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    from repro.detector import DetectorGeometry, EventSimulator, ParticleGun
    from repro.faults import SimClock
    from repro.obs import RunTelemetry, use_telemetry
    from repro.pipeline import ExaTrkXPipeline, GNNTrainConfig, PipelineConfig
    from repro.serve import (
        InferenceEngine,
        LoadGenConfig,
        ServeConfig,
        run_loadgen,
    )

    geometry = DetectorGeometry.barrel_only()
    sim = EventSimulator(
        geometry, gun=ParticleGun(), particles_per_event=12, noise_fraction=0.05
    )
    events = [
        sim.generate(np.random.default_rng(40 + i), event_id=i) for i in range(5)
    ]
    config = PipelineConfig(
        embedding_dim=6,
        embedding_epochs=5,
        filter_epochs=5,
        frnn_radius=0.3,
        gnn=GNNTrainConfig(
            mode="bulk",
            epochs=2,
            batch_size=64,
            hidden=16,
            num_layers=2,
            mlp_layers=2,
            depth=2,
            fanout=4,
            bulk_k=4,
        ),
    )
    pipe = ExaTrkXPipeline(config, geometry)
    pipe.fit(events[:3], events[3:4])
    serve_events = [
        sim.generate(np.random.default_rng(70 + i), event_id=100 + i)
        for i in range(3)
    ]

    telemetry = RunTelemetry.for_run(command="validate_serving")
    with use_telemetry(telemetry):
        # 1. parity, both builders ------------------------------------
        import dataclasses

        for builder in ("cc", "walkthrough"):
            original = pipe.config
            pipe.config = dataclasses.replace(original, track_builder=builder)
            try:
                sequential = [pipe.reconstruct(e) for e in serve_events]
                with InferenceEngine(
                    pipe, ServeConfig(max_batch_events=len(serve_events))
                ) as engine:
                    requests = engine.process(serve_events)
                for event, seq, req in zip(serve_events, sequential, requests):
                    if req.status != "done":
                        fail(f"{builder}: request for event {event.event_id} "
                             f"ended {req.status!r}")
                    if len(seq) != len(req.tracks) or not all(
                        np.array_equal(a, b) for a, b in zip(seq, req.tracks)
                    ):
                        fail(f"{builder}: engine tracks differ from sequential "
                             f"loop for event {event.event_id}")
            finally:
                pipe.config = original
        print(f"PASS: batched results bit-identical to sequential loop "
              f"(cc + walkthrough, {len(serve_events)} events)")

        # 2. cache hits on replay --------------------------------------
        engine = InferenceEngine(pipe, ServeConfig(max_batch_events=8))
        first = engine.process(serve_events)
        replay = engine.process(serve_events)
        if engine.stats.cache_hits == 0:
            fail("replayed stream produced no cache hits")
        if not all(r.cache_hit for r in replay):
            fail("replayed requests not marked as cache hits")
        for a, b in zip(first, replay):
            if not all(np.array_equal(x, y) for x, y in zip(a.tracks, b.tracks)):
                fail("cache-hit tracks differ from fresh compute")
        print(f"PASS: replay served from stage cache "
              f"({engine.stats.cache_hits} hits), bit-identical")

        # 3. deterministic overload: shedding + degraded serving -------
        overload = InferenceEngine(
            pipe,
            ServeConfig(
                max_batch_events=4,
                max_wait_ms=5.0,
                max_queue_events=8,
                latency_budget_ms=25.0,
                sim_service_time_s=0.05,
            ),
            clock=SimClock(),
        )
        report = run_loadgen(
            overload,
            serve_events,
            LoadGenConfig(rate=400.0, num_requests=48, arrival="poisson", seed=1),
        )
        if report.shed == 0:
            fail("overload run shed no requests")
        if report.degraded == 0:
            fail("overload run served nothing degraded")
        if report.completed + report.shed != report.offered:
            fail("loadgen accounting does not add up")
        print(f"PASS: overload shed {report.shed} and degraded "
              f"{report.degraded} of {report.offered} offered")

    # 4. metrics schema ------------------------------------------------
    snapshot = telemetry.metrics.to_dict()
    counters = snapshot["counters"]
    for name in (
        "serve.requests.submitted",
        "serve.requests.completed",
        "serve.requests.shed",
        "serve.requests.degraded",
        "serve.cache.hits",
        "serve.cache.misses",
    ):
        if counters.get(name, 0) <= 0:
            fail(f"counter {name!r} missing or zero")
    latency = snapshot["histograms"].get("serve.latency_ms")
    if latency is None:
        fail("histogram 'serve.latency_ms' missing")
    for key in ("p50", "p95", "p99"):
        if key not in latency:
            fail(f"latency histogram summary missing {key!r}")
    if not latency["count"]:
        fail("latency histogram recorded no samples")
    print("PASS: serve.* counters populated, latency histogram has p50/p95/p99")

    if len(sys.argv) > 1:
        telemetry.write_metrics(sys.argv[1])
        print(f"wrote metrics snapshot to {sys.argv[1]}")
    print("serving validation OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
