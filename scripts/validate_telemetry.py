#!/usr/bin/env python
"""Validate exported telemetry files against their schemas.

Usage::

    python scripts/validate_telemetry.py TRACE.json [METRICS.json]

Checks the trace is valid Chrome ``trace_event`` JSON (or a JSONL span
log) with well-formed spans, and that the metrics snapshot carries the
metadata / counters / gauges / histograms sections.  Exits non-zero on
the first violation — the CI telemetry-smoke step runs this after a
short traced training.
"""

from __future__ import annotations

import json
import sys


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate_chrome_trace(payload: dict, path: str) -> int:
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: 'traceEvents' missing or empty")
    n_spans = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            fail(f"{path}: traceEvents[{i}] has unknown phase {ph!r}")
        if ph == "M":
            continue
        for key in ("name", "ts", "pid", "tid"):
            if key not in ev:
                fail(f"{path}: traceEvents[{i}] missing {key!r}")
        if ph == "X":
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                fail(f"{path}: traceEvents[{i}] has invalid 'dur'")
            n_spans += 1
    if n_spans == 0:
        fail(f"{path}: no complete ('X') span events")
    return n_spans


def validate_jsonl(lines: list, path: str) -> int:
    n_spans = 0
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        kind = rec.get("type")
        if kind not in ("span", "event"):
            fail(f"{path}: line {i + 1} has unknown type {kind!r}")
        if kind == "span":
            for key in ("name", "t0", "t1", "dur", "id", "depth"):
                if key not in rec:
                    fail(f"{path}: line {i + 1} span missing {key!r}")
            if rec["dur"] < 0:
                fail(f"{path}: line {i + 1} span has negative duration")
            n_spans += 1
    if n_spans == 0:
        fail(f"{path}: no span records")
    return n_spans


def validate_trace(path: str) -> None:
    with open(path) as fh:
        text = fh.read()
    # Both formats start with "{": a Chrome trace is ONE JSON object, a
    # JSONL log is one object per line — try whole-file JSON first.
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict) and payload.get("type") in ("span", "event"):
        payload = None  # single-record JSONL
    if isinstance(payload, dict):
        n = validate_chrome_trace(payload, path)
        kind = "chrome-trace"
    else:
        n = validate_jsonl(text.splitlines(), path)
        kind = "jsonl"
    print(f"OK: {path} ({kind}, {n} spans)")


def validate_metrics(path: str) -> None:
    with open(path) as fh:
        snapshot = json.load(fh)
    for section in ("metadata", "counters", "gauges", "histograms"):
        if section not in snapshot or not isinstance(snapshot[section], dict):
            fail(f"{path}: missing or non-object section {section!r}")
    for key in ("config_hash", "git"):
        if key not in snapshot["metadata"]:
            fail(f"{path}: metadata missing {key!r}")
    for name, summary in snapshot["histograms"].items():
        for key in ("count", "sum", "min", "max", "mean", "p50", "p95"):
            if key not in summary:
                fail(f"{path}: histogram {name!r} missing {key!r}")
    print(
        f"OK: {path} ({len(snapshot['counters'])} counters, "
        f"{len(snapshot['gauges'])} gauges, "
        f"{len(snapshot['histograms'])} histograms)"
    )


def main(argv: list) -> int:
    if not argv:
        print(__doc__)
        return 2
    validate_trace(argv[0])
    if len(argv) > 1:
        validate_metrics(argv[1])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
