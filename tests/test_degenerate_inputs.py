"""Degenerate-input robustness across subsystems.

Zero-edge graphs, single-hit events, and empty score arrays occur in
production whenever a filter threshold or an empty detector region wipes
a graph out; nothing downstream may crash on them.
"""

import numpy as np
import pytest

from repro.graph import EventGraph, describe
from repro.metrics import match_tracks, pooled_precision_recall
from repro.models import IGNNConfig, InteractionGNN
from repro.pipeline import build_tracks, build_tracks_walkthrough
from repro.tensor import Tensor, no_grad


@pytest.fixture
def empty_edge_graph():
    return EventGraph(
        edge_index=np.zeros((2, 0), dtype=np.int64),
        x=np.random.default_rng(0).normal(size=(5, 6)).astype(np.float32),
        y=np.zeros((0, 2), dtype=np.float32),
        edge_labels=np.zeros(0, dtype=np.int8),
    )


class TestZeroEdgeGraph:
    def test_ignn_forward(self, empty_edge_graph):
        g = empty_edge_graph
        model = InteractionGNN(IGNNConfig(node_features=6, edge_features=2, hidden=8, num_layers=2))
        with no_grad():
            out = model(Tensor(g.x), Tensor(g.y), g.rows, g.cols)
        assert out.shape == (0,)

    def test_predict_proba(self, empty_edge_graph):
        model = InteractionGNN(IGNNConfig(node_features=6, edge_features=2, hidden=8, num_layers=2))
        assert model.predict_proba(empty_edge_graph).shape == (0,)

    def test_track_builders(self, empty_edge_graph):
        assert build_tracks(empty_edge_graph) == []
        assert build_tracks_walkthrough(empty_edge_graph, np.zeros(0)) == []

    def test_describe(self, empty_edge_graph):
        s = describe(empty_edge_graph)
        assert s.num_edges == 0
        assert s.isolated_vertices == 5
        assert s.num_components == 5

    def test_csr_views(self, empty_edge_graph):
        csr = empty_edge_graph.to_csr(symmetric=True)
        assert csr.nnz == 0

    def test_edge_mask_of_nothing(self, empty_edge_graph):
        sub = empty_edge_graph.edge_mask_subgraph(np.zeros(0, dtype=bool))
        assert sub.num_edges == 0


class TestDegenerateMetrics:
    def test_match_tracks_no_candidates(self):
        s = match_tracks([], np.array([1, 1, 1]))
        assert s.efficiency == 0.0
        assert s.num_reconstructable == 1

    def test_pooled_metrics_empty_graphs(self):
        p, r = pooled_precision_recall([(np.zeros(0), np.zeros(0, dtype=int))])
        assert p == 0.0 and r == 0.0


class TestDegenerateSampling:
    def test_isolated_batch_vertex(self):
        """A batch vertex with no edges yields a singleton component."""
        from repro.sampling import BulkShadowSampler, ShadowSampler

        g = EventGraph(
            edge_index=np.array([[0], [1]]),
            x=np.zeros((4, 6), dtype=np.float32),
            y=np.zeros((1, 2), dtype=np.float32),
            edge_labels=np.ones(1, dtype=np.int8),
        )
        batch = np.array([3])  # isolated
        for sampler in (ShadowSampler(2, 2), BulkShadowSampler(2, 2)):
            out = sampler.sample(g, batch, np.random.default_rng(0))
            assert out.graph.num_nodes == 1
            assert out.graph.num_edges == 0
            assert out.node_parent.tolist() == [3]

    def test_all_isolated_batch(self):
        from repro.sampling import BulkShadowSampler

        g = EventGraph(
            edge_index=np.zeros((2, 0), dtype=np.int64),
            x=np.zeros((6, 6), dtype=np.float32),
            y=np.zeros((0, 2), dtype=np.float32),
            edge_labels=np.zeros(0, dtype=np.int8),
        )
        out = BulkShadowSampler(2, 2).sample(g, np.array([0, 5]), np.random.default_rng(0))
        assert out.num_components == 2
        assert out.graph.num_edges == 0
