"""Degenerate-input robustness across subsystems.

Zero-edge graphs, single-hit events, and empty score arrays occur in
production whenever a filter threshold or an empty detector region wipes
a graph out; nothing downstream may crash on them.
"""

import dataclasses

import numpy as np
import pytest

from repro.detector import Event
from repro.graph import EventGraph, describe
from repro.guard import EventValidator, Quarantine
from repro.metrics import match_tracks, pooled_precision_recall
from repro.models import IGNNConfig, InteractionGNN
from repro.pipeline import build_tracks, build_tracks_walkthrough
from repro.tensor import Tensor, no_grad


@pytest.fixture
def empty_edge_graph():
    return EventGraph(
        edge_index=np.zeros((2, 0), dtype=np.int64),
        x=np.random.default_rng(0).normal(size=(5, 6)).astype(np.float32),
        y=np.zeros((0, 2), dtype=np.float32),
        edge_labels=np.zeros(0, dtype=np.int8),
    )


class TestZeroEdgeGraph:
    def test_ignn_forward(self, empty_edge_graph):
        g = empty_edge_graph
        model = InteractionGNN(IGNNConfig(node_features=6, edge_features=2, hidden=8, num_layers=2))
        with no_grad():
            out = model(Tensor(g.x), Tensor(g.y), g.rows, g.cols)
        assert out.shape == (0,)

    def test_predict_proba(self, empty_edge_graph):
        model = InteractionGNN(IGNNConfig(node_features=6, edge_features=2, hidden=8, num_layers=2))
        assert model.predict_proba(empty_edge_graph).shape == (0,)

    def test_track_builders(self, empty_edge_graph):
        assert build_tracks(empty_edge_graph) == []
        assert build_tracks_walkthrough(empty_edge_graph, np.zeros(0)) == []

    def test_describe(self, empty_edge_graph):
        s = describe(empty_edge_graph)
        assert s.num_edges == 0
        assert s.isolated_vertices == 5
        assert s.num_components == 5

    def test_csr_views(self, empty_edge_graph):
        csr = empty_edge_graph.to_csr(symmetric=True)
        assert csr.nnz == 0

    def test_edge_mask_of_nothing(self, empty_edge_graph):
        sub = empty_edge_graph.edge_mask_subgraph(np.zeros(0, dtype=bool))
        assert sub.num_edges == 0


class TestDegenerateMetrics:
    def test_match_tracks_no_candidates(self):
        s = match_tracks([], np.array([1, 1, 1]))
        assert s.efficiency == 0.0
        assert s.num_reconstructable == 1

    def test_pooled_metrics_empty_graphs(self):
        p, r = pooled_precision_recall([(np.zeros(0), np.zeros(0, dtype=int))])
        assert p == 0.0 and r == 0.0


class TestDegenerateSampling:
    def test_isolated_batch_vertex(self):
        """A batch vertex with no edges yields a singleton component."""
        from repro.sampling import BulkShadowSampler, ShadowSampler

        g = EventGraph(
            edge_index=np.array([[0], [1]]),
            x=np.zeros((4, 6), dtype=np.float32),
            y=np.zeros((1, 2), dtype=np.float32),
            edge_labels=np.ones(1, dtype=np.int8),
        )
        batch = np.array([3])  # isolated
        for sampler in (ShadowSampler(2, 2), BulkShadowSampler(2, 2)):
            out = sampler.sample(g, batch, np.random.default_rng(0))
            assert out.graph.num_nodes == 1
            assert out.graph.num_edges == 0
            assert out.node_parent.tolist() == [3]

    def test_all_isolated_batch(self):
        from repro.sampling import BulkShadowSampler

        g = EventGraph(
            edge_index=np.zeros((2, 0), dtype=np.int64),
            x=np.zeros((6, 6), dtype=np.float32),
            y=np.zeros((0, 2), dtype=np.float32),
            edge_labels=np.zeros(0, dtype=np.int8),
        )
        out = BulkShadowSampler(2, 2).sample(g, np.array([0, 5]), np.random.default_rng(0))
        assert out.num_components == 2
        assert out.graph.num_edges == 0


# ----------------------------------------------------------------------
# guard.EventValidator: one positive + one quarantine case per rule
# ----------------------------------------------------------------------
def _clean_event(event_id: int = 0) -> Event:
    """A small hand-built event that passes every default rule."""
    return Event(
        positions=np.array(
            [[30.0, 0.0, 1.0], [60.0, 1.0, 2.0], [90.0, 2.0, 3.0], [45.0, -3.0, 0.5]],
            dtype=np.float64,
        ),
        layer_ids=np.array([0, 1, 2, 1], dtype=np.int64),
        particle_ids=np.array([1, 1, 2, 0], dtype=np.int64),
        hit_order=np.array([0, 1, 0, -1], dtype=np.int64),
        particles=[],
        event_id=event_id,
    )


@pytest.mark.guard
class TestEventValidatorRules:
    """Each default rule: the clean event passes, one corruption trips it."""

    def _rules_hit(self, event):
        return {i.rule for i in EventValidator().validate(event)}

    def test_clean_event_passes_all_rules(self):
        assert EventValidator().validate(_clean_event()) == []

    def test_finite_positions(self):
        event = _clean_event()
        event.positions[1, 2] = np.nan
        assert "finite_positions" in self._rules_hit(event)

    def test_finite_positions_inf(self):
        event = _clean_event()
        event.positions[0, 0] = np.inf
        assert "finite_positions" in self._rules_hit(event)

    def test_nonempty(self):
        event = Event(
            positions=np.zeros((0, 3)),
            layer_ids=np.zeros(0, dtype=np.int64),
            particle_ids=np.zeros(0, dtype=np.int64),
            hit_order=np.zeros(0, dtype=np.int64),
            particles=[],
        )
        assert "nonempty" in self._rules_hit(event)

    def test_min_hits(self):
        event = _clean_event()
        validator = EventValidator(min_hits=10)
        assert {i.rule for i in validator.validate(event)} == {"min_hits"}
        assert EventValidator(min_hits=4).validate(event) == []

    def test_consistent_lengths(self):
        event = dataclasses.replace(_clean_event(), layer_ids=np.array([0, 1], dtype=np.int64))
        assert "consistent_lengths" in self._rules_hit(event)

    def test_duplicate_hits(self):
        event = _clean_event()
        # double-read: hit 3 (noise) appears twice with identical
        # layer + position, keeping every other rule satisfied
        event = dataclasses.replace(
            event,
            positions=np.concatenate([event.positions, event.positions[3:4]]),
            layer_ids=np.concatenate([event.layer_ids, event.layer_ids[3:4]]),
            particle_ids=np.concatenate([event.particle_ids, event.particle_ids[3:4]]),
            hit_order=np.concatenate([event.hit_order, event.hit_order[3:4]]),
        )
        assert self._rules_hit(event) == {"duplicate_hits"}

    def test_layer_range_negative(self):
        event = _clean_event()
        event.layer_ids[0] = -3
        assert "layer_range" in self._rules_hit(event)

    def test_layer_range_outside_geometry(self, geometry):
        validator = EventValidator.for_geometry(geometry)
        event = _clean_event()
        assert validator.validate(event) == []
        event.layer_ids[2] = 999
        assert "layer_range" in {i.rule for i in validator.validate(event)}

    def test_truth_consistency_noise_with_order(self):
        event = _clean_event()
        event.hit_order[3] = 2  # noise hit carrying a truth rank
        assert self._rules_hit(event) == {"truth_consistency"}

    def test_truth_consistency_truth_without_order(self):
        event = _clean_event()
        event.hit_order[0] = -1  # truth hit missing its rank
        assert self._rules_hit(event) == {"truth_consistency"}

    def test_truth_consistency_duplicate_segment(self):
        event = _clean_event()
        event.hit_order[1] = 0  # two rank-0 hits on particle 1
        assert self._rules_hit(event) == {"truth_consistency"}


@pytest.mark.guard
class TestQuarantineFilter:
    def test_mixed_stream_drops_only_offenders(self):
        bad = _clean_event(event_id=7)
        bad.positions[0, 0] = np.nan
        stream = [_clean_event(0), bad, _clean_event(2)]
        quarantine = Quarantine(EventValidator(), context="test")
        kept = quarantine.filter(stream)
        assert [e.event_id for e in kept] == [0, 2]
        assert quarantine.quarantined == 1
        assert quarantine.passed == 2
        (obj_id, issues), = quarantine.reasons
        assert obj_id == 7
        assert issues[0].rule == "finite_positions"
