"""Command-line interface smoke tests."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.mode == "bulk"
        assert args.world_size == 1
        assert args.prefetch_workers == 0
        assert args.prefetch_depth == 2

    def test_invalid_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--mode", "quantum"])

    def test_all_subcommands_registered(self):
        for cmd in ("simulate", "train", "reconstruct", "benchmark", "serve", "loadgen"):
            args = build_parser().parse_args([cmd])
            assert args.command == cmd

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.max_batch == 8
        assert args.max_wait_ms == 5.0
        assert args.max_queue == 64
        assert args.latency_budget_ms is None
        assert args.repeat == 2
        assert args.workers == 1
        assert args.track_builder is None

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.rate == 100.0
        assert args.arrival == "poisson"
        assert args.service_time_ms is None
        assert args.scenario is None

    def test_scenarios_subcommands_registered(self):
        args = build_parser().parse_args(["scenarios", "list"])
        assert args.scenarios_command == "list"
        assert args.matrix == "smoke"
        args = build_parser().parse_args(
            ["scenarios", "run", "--matrix", "full", "--only", "baseline"]
        )
        assert args.scenarios_command == "run"
        assert args.matrix == "full" and args.only == "baseline"
        args = build_parser().parse_args(["scenarios", "report", "r.json"])
        assert args.file == "r.json"

    def test_scenarios_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])

    def test_reconstruct_rejects_bad_track_builder(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reconstruct", "--track-builder", "dfs"])


class TestCommands:
    def test_simulate_writes_cache(self, tmp_path, capsys):
        rc = main(
            [
                "simulate", "--dataset", "tiny",
                "--train", "2", "--val", "1", "--test", "1",
                "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        assert list(tmp_path.glob("*.npz"))
        assert "tiny" in capsys.readouterr().out

    def test_train_prints_history(self, capsys):
        rc = main(
            [
                "train", "--dataset", "tiny",
                "--train-graphs", "2", "--val-graphs", "1",
                "--mode", "shadow", "--epochs", "1",
                "--batch-size", "32", "--hidden", "8", "--layers", "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "precision" in out
        assert "all-reduce" in out

    def test_train_with_prefetch_workers(self, capsys):
        rc = main(
            [
                "train", "--dataset", "tiny",
                "--train-graphs", "2", "--val-graphs", "1",
                "--mode", "bulk", "--epochs", "1",
                "--batch-size", "32", "--hidden", "8", "--layers", "1",
                "--prefetch-workers", "2",
            ]
        )
        assert rc == 0
        assert "precision" in capsys.readouterr().out

    def test_benchmark_reports_speedup(self, capsys):
        rc = main(
            ["benchmark", "--dataset", "tiny", "--batch-size", "32", "--k", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "bulk ShaDow" in out

    def test_train_with_config_file(self, tmp_path, capsys):
        import json

        cfg = tmp_path / "train.json"
        cfg.write_text(
            json.dumps(
                {"mode": "shadow", "epochs": 1, "hidden": 8,
                 "num_layers": 1, "batch_size": 32}
            )
        )
        rc = main(
            [
                "train", "--dataset", "tiny", "--train-graphs", "2",
                "--val-graphs", "1", "--config", str(cfg),
            ]
        )
        assert rc == 0
        assert "precision" in capsys.readouterr().out

    def test_train_config_rejects_unknown_keys(self, tmp_path):
        import json

        cfg = tmp_path / "bad.json"
        cfg.write_text(json.dumps({"bogus": 1}))
        with pytest.raises(SystemExit, match="bogus"):
            main(["train", "--dataset", "tiny", "--config", str(cfg)])

    def test_display_writes_svg(self, tmp_path, capsys):
        out = tmp_path / "ev.svg"
        rc = main(["display", "--particles", "8", "--tracks", "--out", str(out)])
        assert rc == 0
        content = out.read_text()
        assert content.startswith("<svg")
        assert "<polyline" in content

    @pytest.mark.slow
    def test_reconstruct_end_to_end(self, capsys):
        rc = main(
            ["reconstruct", "--events", "6", "--particles", "12", "--gnn-epochs", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tracking:" in out

    def test_reconstruct_walkthrough_builder(self, capsys):
        rc = main(
            [
                "reconstruct", "--events", "5", "--particles", "10",
                "--gnn-epochs", "2", "--embedding-epochs", "4",
                "--filter-epochs", "4", "--track-builder", "walkthrough",
            ]
        )
        assert rc == 0
        assert "tracking:" in capsys.readouterr().out

    def test_reconstruct_track_builder_overrides_loaded_pipeline(
        self, tmp_path, capsys
    ):
        saved = str(tmp_path / "pipe.npz")
        common = [
            "--events", "5", "--particles", "10", "--gnn-epochs", "2",
            "--embedding-epochs", "4", "--filter-epochs", "4",
        ]
        rc = main(["reconstruct", *common, "--save-pipeline", saved])
        assert rc == 0
        capsys.readouterr()
        rc = main(
            [
                "reconstruct", *common,
                "--pipeline", saved, "--track-builder", "walkthrough",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "track builder overridden to walkthrough" in out
        assert "tracking:" in out


class TestServingCLI:
    COMMON = [
        "--events", "5", "--particles", "10", "--gnn-epochs", "2",
        "--embedding-epochs", "4", "--filter-epochs", "4",
    ]

    def test_serve_reports_cache_hits(self, capsys):
        rc = main(["serve", *self.COMMON, "--repeat", "2", "--workers", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "served" in out
        assert "cache 2 hit" in out  # two test events, each served twice
        assert "latency ms" in out

    def test_serve_threaded_with_saved_pipeline(self, tmp_path, capsys):
        saved = str(tmp_path / "pipe.npz")
        rc = main(
            ["reconstruct", *self.COMMON, "--save-pipeline", saved]
        )
        assert rc == 0
        capsys.readouterr()
        rc = main(
            ["serve", *self.COMMON, "--pipeline", saved, "--workers", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert f"loaded fitted pipeline from {saved}" in out
        assert "served" in out

    def test_loadgen_overload_sheds(self, capsys):
        rc = main(
            [
                "loadgen", *self.COMMON,
                "--rate", "500", "--requests", "40",
                "--max-batch", "4", "--max-queue", "8",
                "--service-time-ms", "50",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "offered      40 requests" in out
        assert "shed" in out
        shed = int(next(l for l in out.splitlines() if l.startswith("shed")).split()[1])
        assert shed > 0

    def test_serve_exports_telemetry(self, tmp_path, capsys):
        import json

        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        rc = main(
            [
                "serve", *self.COMMON, "--repeat", "2", "--workers", "0",
                "--trace-out", str(trace), "--metrics-out", str(metrics),
            ]
        )
        assert rc == 0
        names = {
            e["name"]
            for e in json.loads(trace.read_text())["traceEvents"]
            if e.get("ph") == "X"
        }
        assert "serve.batch" in names
        assert "serve.stage.filter" in names
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["serve.requests.completed"] == 4
        assert snap["counters"]["serve.cache.hits"] == 2
        assert "p99" in snap["histograms"]["serve.latency_ms"]


class TestFaultToleranceCLI:
    def test_checkpoint_flags_registered(self):
        args = build_parser().parse_args(
            ["train", "--checkpoint-every", "2", "--resume", "ck.npz"]
        )
        assert args.checkpoint_every == 2
        assert args.resume == "ck.npz"
        assert args.checkpoint_path == "gnn_checkpoint.npz"

    def test_train_checkpoint_then_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "trainer.npz")
        common = [
            "train", "--dataset", "tiny",
            "--train-graphs", "2", "--val-graphs", "1",
            "--mode", "shadow", "--batch-size", "32",
            "--hidden", "8", "--layers", "1",
            "--checkpoint-path", ckpt,
        ]
        rc = main(common + ["--epochs", "1", "--checkpoint-every", "1"])
        assert rc == 0
        assert "wrote 1 checkpoint(s)" in capsys.readouterr().out
        rc = main(common + ["--epochs", "2", "--resume", ckpt])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"resumed from {ckpt} at epoch 1" in out

    def test_train_resume_from_corrupt_checkpoint_is_actionable(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"definitely not a checkpoint")
        rc = main(
            [
                "train", "--dataset", "tiny",
                "--train-graphs", "2", "--val-graphs", "1",
                "--mode", "shadow", "--epochs", "2",
                "--batch-size", "32", "--hidden", "8", "--layers", "1",
                "--resume", str(bad),
            ]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "bad.npz" in err
        assert "restart training" in err

    def test_reconstruct_corrupt_pipeline_is_actionable(self, tmp_path, capsys):
        corrupt = tmp_path / "pipe.npz"
        corrupt.write_bytes(b"\x00" * 64)
        rc = main(
            [
                "reconstruct", "--events", "4", "--particles", "5",
                "--pipeline", str(corrupt),
            ]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "pipe.npz" in err
        assert "corrupt" in err


class TestTelemetryCLI:
    def test_trace_flags_registered(self):
        for cmd in ("train", "reconstruct", "benchmark"):
            args = build_parser().parse_args([cmd, "--trace-out", "t.json", "--metrics-out", "m.json"])
            assert args.trace_out == "t.json"
            assert args.metrics_out == "m.json"

    def test_telemetry_summarize_requires_file(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["telemetry"])

    def test_train_trace_out_smoke(self, tmp_path, capsys):
        """Acceptance path: traced training produces a Chrome-trace-valid
        file with the epoch→batch→{sampling,forward,backward,allreduce}
        nesting, and metrics carrying comm counters."""
        import json

        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        rc = main(
            [
                "train", "--dataset", "tiny",
                "--train-graphs", "2", "--val-graphs", "1",
                "--mode", "shadow", "--epochs", "2", "--world-size", "2",
                "--batch-size", "32", "--hidden", "8", "--layers", "1",
                "--trace-out", str(trace), "--metrics-out", str(metrics),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace" in out and "metrics" in out

        payload = json.loads(trace.read_text())
        events = payload["traceEvents"]
        assert isinstance(events, list) and events
        names = {e["name"] for e in events if e["ph"] == "X"}
        for required in ("epoch", "batch", "sampling", "forward", "backward", "allreduce"):
            assert required in names, required
        by_id = {e["args"]["id"]: e for e in events if e.get("ph") == "X"}
        batch = next(e for e in events if e.get("ph") == "X" and e["name"] == "batch")
        assert by_id[batch["args"]["parent"]]["name"] == "epoch"
        assert payload["otherData"]["world_size"] == 2
        assert payload["otherData"]["command"] == "train"

        snap = json.loads(metrics.read_text())
        assert snap["gauges"]["comm.num_allreduce_calls"] > 0
        assert snap["gauges"]["train.epochs"] == 2
        assert "config_hash" in snap["metadata"]

    def test_telemetry_summarize_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        rc = main(
            [
                "train", "--dataset", "tiny",
                "--train-graphs", "2", "--val-graphs", "1",
                "--mode", "shadow", "--epochs", "1",
                "--batch-size", "32", "--hidden", "8", "--layers", "1",
                "--trace-out", str(trace),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        rc = main(["telemetry", "summarize", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "phase" in out
        assert "Figure-3 split: sampling" in out

    def test_telemetry_summarize_missing_file_is_actionable(self, tmp_path, capsys):
        rc = main(["telemetry", "summarize", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_telemetry_summarize_garbage_file_is_actionable(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not_a_trace": 1}')
        rc = main(["telemetry", "summarize", str(bad)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


@pytest.mark.guard
class TestGuardrailFlags:
    def test_train_guard_flags_registered(self):
        args = build_parser().parse_args(
            ["train", "--validate-inputs", "--watchdog", "--keep-last", "3"]
        )
        assert args.validate_inputs and args.watchdog
        assert args.keep_last == 3
        assert args.watchdog_window == 8
        assert args.watchdog_spike_factor == 10.0
        assert args.watchdog_max_rollbacks == 2
        assert args.watchdog_lr_backoff == 0.5

    def test_serve_guard_flags_registered(self):
        for cmd in ("serve", "loadgen"):
            args = build_parser().parse_args(
                [cmd, "--validate-inputs", "--breaker-threshold", "2",
                 "--request-timeout-ms", "50"]
            )
            assert args.validate_inputs
            assert args.breaker_threshold == 2
            assert args.breaker_cooldown_ms == 1000.0
            assert args.breaker_probes == 1
            assert args.request_timeout_ms == 50.0
            assert args.quarantine_log is None


@pytest.mark.guard
class TestGracefulShutdown:
    def test_keyboard_interrupt_exits_130_without_traceback(
        self, monkeypatch, capsys
    ):
        import repro.cli as cli

        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "benchmark", boom)
        rc = main(["benchmark"])
        assert rc == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "Traceback" not in err

    def test_train_interrupt_reports_resume_hint(
        self, monkeypatch, tmp_path, capsys
    ):
        import repro.pipeline as pl

        def boom(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.pipeline.train_gnn", boom)
        ck = str(tmp_path / "ck.npz")
        rc = main(
            ["train", "--dataset", "tiny", "--train-graphs", "1",
             "--val-graphs", "1", "--epochs", "1",
             "--checkpoint-every", "1", "--checkpoint-path", ck]
        )
        assert rc == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert ck in err  # points the user at the resume path

    def test_sigterm_handler_installed_in_main_thread(self, monkeypatch):
        import signal as signal_module

        import repro.cli as cli

        installed = {}
        monkeypatch.setattr(
            cli.signal, "signal",
            lambda num, handler: installed.setdefault(num, handler),
        )
        monkeypatch.setitem(cli._COMMANDS, "benchmark", lambda args: 0)
        assert main(["benchmark"]) == 0
        handler = installed[signal_module.SIGTERM]
        with pytest.raises(KeyboardInterrupt):
            handler(signal_module.SIGTERM, None)


class TestScenariosCommand:
    def test_list_prints_matrix_and_catalog(self, capsys):
        assert main(["scenarios", "list", "--matrix", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "matrix 'smoke'" in out
        assert "breaker_recovery" in out
        assert "mutator catalog" in out

    def test_unknown_matrix_is_actionable(self, capsys):
        assert main(["scenarios", "list", "--matrix", "nope"]) == 2
        assert "unknown matrix" in capsys.readouterr().err

    def test_run_subset_writes_report(self, tmp_path, capsys):
        report = str(tmp_path / "report.json")
        rc = main(
            ["scenarios", "run", "--only", "baseline",
             "--workdir", str(tmp_path / "work"), "-o", report]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "[PASS] baseline" in out
        import json

        with open(report) as fh:
            doc = json.load(fh)
        assert doc["format"] == "repro.scenarios/v1"
        assert doc["summary"] == {"total": 1, "passed": 1, "failed": 0}
        assert main(["scenarios", "report", report]) == 0
        assert "baseline" in capsys.readouterr().out

    def test_run_unknown_scenario_rejected(self, capsys):
        assert main(["scenarios", "run", "--only", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_report_rejects_foreign_json(self, tmp_path, capsys):
        path = str(tmp_path / "other.json")
        with open(path, "w") as fh:
            fh.write('{"format": "something/else"}')
        assert main(["scenarios", "report", path]) == 2
        assert "not a scenario report" in capsys.readouterr().err
