"""Command-line interface smoke tests."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.mode == "bulk"
        assert args.world_size == 1

    def test_invalid_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--mode", "quantum"])

    def test_all_subcommands_registered(self):
        for cmd in ("simulate", "train", "reconstruct", "benchmark"):
            args = build_parser().parse_args([cmd])
            assert args.command == cmd


class TestCommands:
    def test_simulate_writes_cache(self, tmp_path, capsys):
        rc = main(
            [
                "simulate", "--dataset", "tiny",
                "--train", "2", "--val", "1", "--test", "1",
                "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        assert list(tmp_path.glob("*.npz"))
        assert "tiny" in capsys.readouterr().out

    def test_train_prints_history(self, capsys):
        rc = main(
            [
                "train", "--dataset", "tiny",
                "--train-graphs", "2", "--val-graphs", "1",
                "--mode", "shadow", "--epochs", "1",
                "--batch-size", "32", "--hidden", "8", "--layers", "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "precision" in out
        assert "all-reduce" in out

    def test_benchmark_reports_speedup(self, capsys):
        rc = main(
            ["benchmark", "--dataset", "tiny", "--batch-size", "32", "--k", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "bulk ShaDow" in out

    def test_train_with_config_file(self, tmp_path, capsys):
        import json

        cfg = tmp_path / "train.json"
        cfg.write_text(
            json.dumps(
                {"mode": "shadow", "epochs": 1, "hidden": 8,
                 "num_layers": 1, "batch_size": 32}
            )
        )
        rc = main(
            [
                "train", "--dataset", "tiny", "--train-graphs", "2",
                "--val-graphs", "1", "--config", str(cfg),
            ]
        )
        assert rc == 0
        assert "precision" in capsys.readouterr().out

    def test_train_config_rejects_unknown_keys(self, tmp_path):
        import json

        cfg = tmp_path / "bad.json"
        cfg.write_text(json.dumps({"bogus": 1}))
        with pytest.raises(SystemExit, match="bogus"):
            main(["train", "--dataset", "tiny", "--config", str(cfg)])

    def test_display_writes_svg(self, tmp_path, capsys):
        out = tmp_path / "ev.svg"
        rc = main(["display", "--particles", "8", "--tracks", "--out", str(out)])
        assert rc == 0
        content = out.read_text()
        assert content.startswith("<svg")
        assert "<polyline" in content

    @pytest.mark.slow
    def test_reconstruct_end_to_end(self, capsys):
        rc = main(
            ["reconstruct", "--events", "6", "--particles", "12", "--gnn-epochs", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tracking:" in out
