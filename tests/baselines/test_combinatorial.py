"""Combinatorial track finder and event pileup."""

import numpy as np
import pytest

from repro.baselines import CombinatorialConfig, CombinatorialTrackFinder
from repro.detector import (
    DetectorGeometry,
    EventSimulator,
    generate_pileup_event,
    merge_events,
)
from repro.metrics import match_tracks

GEO = DetectorGeometry.barrel_only()


@pytest.fixture(scope="module")
def sim():
    return EventSimulator(GEO, particles_per_event=15, noise_fraction=0.05)


@pytest.fixture(scope="module")
def event(sim):
    return sim.generate(np.random.default_rng(0))


@pytest.fixture(scope="module")
def finder():
    return CombinatorialTrackFinder(GEO)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CombinatorialConfig(seed_dphi=0.0)
        with pytest.raises(ValueError):
            CombinatorialConfig(min_hits=2)


class TestFinder:
    def test_reconstructs_most_tracks(self, finder, event):
        tracks = finder.find_tracks(event)
        score = match_tracks(tracks, event.particle_ids)
        assert score.efficiency > 0.6
        assert score.fake_rate < 0.3

    def test_tracks_meet_min_hits(self, finder, event):
        for t in finder.find_tracks(event):
            assert len(t) >= finder.config.min_hits

    def test_ambiguity_bounds_hit_sharing(self, finder, event):
        tracks = finder.find_tracks(event)
        used = {}
        for ti, t in enumerate(tracks):
            for h in t:
                used.setdefault(int(h), []).append(ti)
        # accepted candidates share at most the configured fraction
        for ti, t in enumerate(tracks):
            shared = sum(1 for h in t if len(used[int(h)]) > 1)
            assert shared <= finder.config.max_shared_fraction * len(t) + 1e-9

    def test_empty_event(self, finder):
        empty = EventSimulator(GEO, particles_per_event=0, noise_fraction=0.0).generate(
            np.random.default_rng(0)
        )
        assert finder.find_tracks(empty) == []

    def test_deterministic(self, finder, event):
        a = finder.find_tracks(event)
        b = finder.find_tracks(event)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_seed_count_grows_superlinearly_with_pileup(self, finder, sim):
        rng = np.random.default_rng(5)
        e1 = generate_pileup_event(sim, 1, rng)
        e4 = generate_pileup_event(sim, 4, rng)
        hits_ratio = e4.num_hits / e1.num_hits
        seeds_ratio = finder.seed_count(e4) / max(finder.seed_count(e1), 1)
        assert seeds_ratio > hits_ratio  # the paper's superlinear term

    def test_tighter_bend_tolerance_fewer_seeds(self, event):
        loose = CombinatorialTrackFinder(GEO, CombinatorialConfig(bend_tolerance=0.08))
        tight = CombinatorialTrackFinder(GEO, CombinatorialConfig(bend_tolerance=0.01))
        assert tight.seed_count(event) <= loose.seed_count(event)


class TestPileup:
    def test_merge_concatenates_hits(self, sim):
        rng = np.random.default_rng(1)
        e1 = sim.generate(np.random.default_rng(10))
        e2 = sim.generate(np.random.default_rng(11))
        merged = merge_events([e1, e2])
        assert merged.num_hits == e1.num_hits + e2.num_hits

    def test_particle_ids_disjoint_after_merge(self, sim):
        e1 = sim.generate(np.random.default_rng(10))
        e2 = sim.generate(np.random.default_rng(11))
        merged = merge_events([e1, e2])
        ids1 = set(merged.particle_ids[: e1.num_hits].tolist()) - {0}
        ids2 = set(merged.particle_ids[e1.num_hits :].tolist()) - {0}
        assert ids1.isdisjoint(ids2)

    def test_noise_stays_zero(self, sim):
        e1 = sim.generate(np.random.default_rng(10))
        e2 = sim.generate(np.random.default_rng(11))
        merged = merge_events([e1, e2])
        n_noise = int((e1.particle_ids == 0).sum() + (e2.particle_ids == 0).sum())
        assert int((merged.particle_ids == 0).sum()) == n_noise

    def test_true_segments_preserved(self, sim):
        e1 = sim.generate(np.random.default_rng(10))
        e2 = sim.generate(np.random.default_rng(11))
        merged = merge_events([e1, e2])
        assert (
            merged.true_segments().shape[1]
            == e1.true_segments().shape[1] + e2.true_segments().shape[1]
        )

    def test_reconstructable_count_adds(self, sim):
        e1 = sim.generate(np.random.default_rng(10))
        e2 = sim.generate(np.random.default_rng(11))
        merged = merge_events([e1, e2])
        assert (
            merged.num_reconstructable()
            == e1.num_reconstructable() + e2.num_reconstructable()
        )

    def test_generate_pileup_event(self, sim):
        ev = generate_pileup_event(sim, 3, np.random.default_rng(0))
        assert ev.num_hits > 0

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            merge_events([])
        with pytest.raises(ValueError):
            generate_pileup_event(sim, 0, np.random.default_rng(0))
