"""Strong-scaling utilities: Amdahl fits and speedup curves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import ScalingCurve, amdahl_time, fit_amdahl


class TestAmdahlTime:
    def test_fully_parallel(self):
        assert amdahl_time(10.0, 4, 0.0) == pytest.approx(2.5)

    def test_fully_serial(self):
        assert amdahl_time(10.0, 4, 1.0) == pytest.approx(10.0)

    def test_single_rank_identity(self):
        assert amdahl_time(7.0, 1, 0.3) == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_time(1.0, 0, 0.5)
        with pytest.raises(ValueError):
            amdahl_time(1.0, 2, 1.5)


class TestFitAmdahl:
    @given(st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_recovers_generating_fraction(self, s):
        ps = [1, 2, 4, 8]
        ts = [amdahl_time(5.0, p, s) for p in ps]
        assert fit_amdahl(ps, ts) == pytest.approx(s, abs=1e-9)

    def test_noisy_fit_close(self):
        rng = np.random.default_rng(0)
        ps = [1, 2, 4, 8, 16]
        ts = [amdahl_time(5.0, p, 0.2) * (1 + 0.02 * rng.normal()) for p in ps]
        assert abs(fit_amdahl(ps, ts) - 0.2) < 0.1

    def test_requires_p1(self):
        with pytest.raises(ValueError):
            fit_amdahl([2, 4], [1.0, 0.5])

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_amdahl([1], [1.0])


class TestScalingCurve:
    def make(self, s=0.1):
        ps = (1, 2, 4, 8)
        return ScalingCurve(ps, tuple(amdahl_time(4.0, p, s) for p in ps))

    def test_speedups_monotone(self):
        c = self.make()
        assert c.speedups == sorted(c.speedups)
        assert c.speedups[0] == pytest.approx(1.0)

    def test_efficiency_at_most_one(self):
        c = self.make()
        assert all(e <= 1.0 + 1e-9 for e in c.efficiencies)

    def test_serial_fraction_round_trip(self):
        assert self.make(0.25).serial_fraction == pytest.approx(0.25, abs=1e-9)

    def test_render(self):
        rows = self.make().render()
        assert any("Amdahl" in r for r in rows)
        assert len(rows) == 6  # header + 4 points + fit

    def test_validation(self):
        with pytest.raises(ValueError):
            ScalingCurve((2, 4), (1.0, 0.6))
        with pytest.raises(ValueError):
            ScalingCurve((1,), (1.0,))
        with pytest.raises(ValueError):
            ScalingCurve((1, 4, 2), (1.0, 0.5, 0.7))
