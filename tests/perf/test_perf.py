"""Timers and epoch-breakdown projection."""

import time

import pytest

from repro.obs import Tracer
from repro.perf import EpochBreakdown, StageTimer, Timer, project_epoch_time


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        for _ in range(3):
            t.start()
            t.stop()
        assert t.count == 3
        assert t.total >= 0.0

    def test_measures_something(self):
        t = Timer()
        t.start()
        time.sleep(0.02)
        elapsed = t.stop()
        assert elapsed >= 0.015

    def test_double_start_rejected(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_mean(self):
        t = Timer()
        t.total, t.count = 6.0, 3
        assert t.mean == 2.0

    def test_reset(self):
        t = Timer()
        t.start()
        t.stop()
        t.reset()
        assert t.total == 0.0 and t.count == 0

    def test_elapsed_readable_while_running(self):
        t = Timer()
        assert t.elapsed() == 0.0
        t.start()
        time.sleep(0.01)
        live = t.elapsed()
        assert live >= 0.008
        assert t.total == 0.0  # not yet folded in
        t.stop()
        assert t.elapsed() == t.total >= live

    def test_elapsed_includes_prior_intervals(self):
        t = Timer()
        t.start()
        t.stop()
        prior = t.total
        t.start()
        assert t.elapsed() >= prior
        t.stop()


class TestStageTimer:
    def test_scopes_accumulate_by_name(self):
        timers = StageTimer()
        with timers.scope("a"):
            pass
        with timers.scope("a"):
            pass
        with timers.scope("b"):
            pass
        assert timers["a"].count == 2
        assert timers["b"].count == 1

    def test_totals_dict(self):
        timers = StageTimer()
        with timers.scope("x"):
            pass
        assert set(timers.totals()) == {"x"}

    def test_scope_releases_on_exception(self):
        timers = StageTimer()
        try:
            with timers.scope("err"):
                raise ValueError
        except ValueError:
            pass
        # timer stopped: another scope works
        with timers.scope("err"):
            pass
        assert timers["err"].count == 2

    def test_scope_is_reentrant_per_name(self):
        timers = StageTimer()
        with timers.scope("epoch"):
            with timers.scope("epoch"):  # must not raise "already running"
                time.sleep(0.005)
        # only the outermost entry counts an interval
        assert timers["epoch"].count == 1
        assert timers["epoch"].total >= 0.004

    def test_reentrant_scope_releases_on_inner_exception(self):
        timers = StageTimer()
        try:
            with timers.scope("s"):
                with timers.scope("s"):
                    raise ValueError
        except ValueError:
            pass
        with timers.scope("s"):
            pass
        assert timers["s"].count == 2

    def test_outermost_scope_emits_one_tracer_span(self):
        tracer = Tracer()
        timers = StageTimer(tracer=tracer)
        with timers.scope("sampling"):
            with timers.scope("sampling"):
                pass
        assert tracer.count("sampling") == 1
        (span,) = tracer.find("sampling")
        assert span.category == "stage"
        # span and timer measure the same start/stop pair
        assert span.duration_s == pytest.approx(timers.total("sampling"), rel=0.5, abs=1e-3)

    def test_default_tracer_is_noop_without_telemetry(self):
        timers = StageTimer()
        with timers.scope("x"):
            pass
        assert timers["x"].count == 1  # no tracer installed: timing still works


class TestBreakdown:
    def test_total_and_fraction(self):
        b = EpochBreakdown(sampling_seconds=2.0, training_seconds=2.0, comm_modeled_seconds=0.0)
        assert b.total_seconds == 4.0
        assert b.sampling_fraction == pytest.approx(0.5)

    def test_projection_divides_compute(self):
        serial = EpochBreakdown(4.0, 8.0, 0.0, world_size=1)
        proj = project_epoch_time(serial, 4, comm_modeled_seconds=0.5)
        assert proj.sampling_seconds == pytest.approx(1.0)
        assert proj.training_seconds == pytest.approx(2.0)
        assert proj.comm_modeled_seconds == pytest.approx(0.5)
        assert proj.world_size == 4

    def test_projection_validates(self):
        with pytest.raises(ValueError):
            project_epoch_time(EpochBreakdown(1, 1, 0), 0, 0.0)

    def test_as_dict(self):
        d = EpochBreakdown(1.0, 2.0, 0.5, world_size=2).as_dict()
        assert d["total_s"] == pytest.approx(3.5)
