"""Timers and epoch-breakdown projection."""

import time

import pytest

from repro.perf import EpochBreakdown, StageTimer, Timer, project_epoch_time


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        for _ in range(3):
            t.start()
            t.stop()
        assert t.count == 3
        assert t.total >= 0.0

    def test_measures_something(self):
        t = Timer()
        t.start()
        time.sleep(0.02)
        elapsed = t.stop()
        assert elapsed >= 0.015

    def test_double_start_rejected(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_mean(self):
        t = Timer()
        t.total, t.count = 6.0, 3
        assert t.mean == 2.0

    def test_reset(self):
        t = Timer()
        t.start()
        t.stop()
        t.reset()
        assert t.total == 0.0 and t.count == 0


class TestStageTimer:
    def test_scopes_accumulate_by_name(self):
        timers = StageTimer()
        with timers.scope("a"):
            pass
        with timers.scope("a"):
            pass
        with timers.scope("b"):
            pass
        assert timers["a"].count == 2
        assert timers["b"].count == 1

    def test_totals_dict(self):
        timers = StageTimer()
        with timers.scope("x"):
            pass
        assert set(timers.totals()) == {"x"}

    def test_scope_releases_on_exception(self):
        timers = StageTimer()
        try:
            with timers.scope("err"):
                raise ValueError
        except ValueError:
            pass
        # timer stopped: another scope works
        with timers.scope("err"):
            pass
        assert timers["err"].count == 2


class TestBreakdown:
    def test_total_and_fraction(self):
        b = EpochBreakdown(sampling_seconds=2.0, training_seconds=2.0, comm_modeled_seconds=0.0)
        assert b.total_seconds == 4.0
        assert b.sampling_fraction == pytest.approx(0.5)

    def test_projection_divides_compute(self):
        serial = EpochBreakdown(4.0, 8.0, 0.0, world_size=1)
        proj = project_epoch_time(serial, 4, comm_modeled_seconds=0.5)
        assert proj.sampling_seconds == pytest.approx(1.0)
        assert proj.training_seconds == pytest.approx(2.0)
        assert proj.comm_modeled_seconds == pytest.approx(0.5)
        assert proj.world_size == 4

    def test_projection_validates(self):
        with pytest.raises(ValueError):
            project_epoch_time(EpochBreakdown(1, 1, 0), 0, 0.0)

    def test_as_dict(self):
        d = EpochBreakdown(1.0, 2.0, 0.5, world_size=2).as_dict()
        assert d["total_s"] == pytest.approx(3.5)
