"""cProfile wrapper."""

import numpy as np
import pytest

from repro.perf import profiled


def _busy_work():
    total = np.zeros(100)
    for _ in range(50):
        total = total + np.sin(np.arange(100.0))
    return total


class TestProfiled:
    def test_captures_hotspots(self):
        with profiled() as report:
            _busy_work()
        assert len(report.hotspots) > 0
        assert all(h.total_seconds >= 0 for h in report.hotspots)

    def test_sorted_by_self_time(self):
        with profiled() as report:
            _busy_work()
        times = [h.total_seconds for h in report.hotspots]
        assert times == sorted(times, reverse=True)

    def test_find_by_substring(self):
        with profiled() as report:
            _busy_work()
        hits = report.find("_busy_work")
        assert len(hits) == 1
        assert hits[0].calls == 1

    def test_top_limits(self):
        with profiled() as report:
            _busy_work()
        assert len(report.top(3)) <= 3

    def test_render(self):
        with profiled() as report:
            _busy_work()
        rows = report.render(2)
        assert "function" in rows[0]
        assert len(rows) <= 3

    def test_report_usable_after_exception(self):
        try:
            with profiled() as report:
                _busy_work()
                raise ValueError("boom")
        except ValueError:
            pass
        assert len(report.hotspots) > 0
