"""Helix fitting: parameter recovery and resolution (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detector import (
    DetectorGeometry,
    EventSimulator,
    Particle,
    fit_event_tracks,
    fit_helix,
    propagate,
    pt_resolution,
)

GEO = DetectorGeometry.barrel_only()


@st.composite
def trackable_particles(draw):
    return Particle(
        particle_id=1,
        pt=draw(st.floats(0.8, 8.0)),
        phi0=draw(st.floats(-np.pi, np.pi)),
        eta=draw(st.floats(-1.0, 1.0)),
        charge=draw(st.sampled_from([-1, 1])),
        vx=0.0,
        vy=0.0,
        vz=draw(st.floats(-20.0, 20.0)),
    )


class TestIdealFits:
    @given(trackable_particles())
    @settings(max_examples=50, deadline=None)
    def test_recovers_pt_on_ideal_hits(self, p):
        hits = propagate(p, GEO)
        if len(hits) < 4:
            return
        pos = np.array([[h.x, h.y, h.z] for h in hits])
        fit = fit_helix(pos, GEO.solenoid_field_tesla)
        assert fit is not None
        assert fit.pt == pytest.approx(p.pt, rel=1e-3)

    @given(trackable_particles())
    @settings(max_examples=50, deadline=None)
    def test_recovers_eta_on_ideal_hits(self, p):
        hits = propagate(p, GEO)
        if len(hits) < 4:
            return
        pos = np.array([[h.x, h.y, h.z] for h in hits])
        fit = fit_helix(pos, GEO.solenoid_field_tesla)
        assert fit.eta == pytest.approx(p.eta, abs=0.02)

    @given(trackable_particles())
    @settings(max_examples=50, deadline=None)
    def test_ideal_residuals_negligible(self, p):
        hits = propagate(p, GEO)
        if len(hits) < 4:
            return
        pos = np.array([[h.x, h.y, h.z] for h in hits])
        fit = fit_helix(pos, GEO.solenoid_field_tesla)
        assert fit.rms_residual_mm < 1e-6

    @given(trackable_particles())
    @settings(max_examples=40, deadline=None)
    def test_recovers_phi0_for_prompt_tracks(self, p):
        hits = propagate(p, GEO)
        if len(hits) < 4:
            return
        pos = np.array([[h.x, h.y, h.z] for h in hits])
        fit = fit_helix(pos, GEO.solenoid_field_tesla)
        delta = np.arctan2(np.sin(fit.phi0 - p.phi0), np.cos(fit.phi0 - p.phi0))
        # phi0 is evaluated at the first hit, not the vertex: allow the
        # bending between vertex and innermost layer
        assert abs(delta) < 0.2


class TestDegenerateInputs:
    def test_too_few_hits(self):
        assert fit_helix(np.zeros((2, 3))) is None

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            fit_helix(np.zeros((5, 2)))

    def test_collinear_hits_handled(self):
        # collinear points: infinite radius; must not crash
        pos = np.stack([np.arange(5.0), np.arange(5.0), np.zeros(5)], axis=1)
        fit = fit_helix(pos)
        assert fit is None or np.isfinite(fit.pt)


class TestEventLevel:
    @pytest.fixture(scope="class")
    def event(self):
        sim = EventSimulator(GEO, particles_per_event=20, noise_fraction=0.0)
        return sim.generate(np.random.default_rng(0))

    def test_truth_candidates_fit_well(self, event):
        candidates = [
            np.flatnonzero(event.particle_ids == pid)
            for pid in np.unique(event.particle_ids[event.particle_ids > 0])
        ]
        fits = fit_event_tracks(event, candidates, GEO.solenoid_field_tesla)
        ok = [f for f in fits if f is not None]
        assert len(ok) >= 0.9 * len(candidates)

    def test_pt_resolution_percent_level(self, event):
        candidates = [
            np.flatnonzero(event.particle_ids == pid)
            for pid in np.unique(event.particle_ids[event.particle_ids > 0])
        ]
        fits = fit_event_tracks(event, candidates, GEO.solenoid_field_tesla)
        res = pt_resolution(event, candidates, fits)
        assert len(res) > 0
        assert np.median(np.abs(res)) < 0.1

    def test_noise_candidates_skipped_in_resolution(self, event):
        fits = fit_event_tracks(event, [np.array([0, 1, 2])], GEO.solenoid_field_tesla)
        # a random 3-hit combination either fails the fit or resolves to
        # some particle; pt_resolution must not crash either way
        res = pt_resolution(event, [np.array([0, 1, 2])], fits)
        assert res.ndim == 1
