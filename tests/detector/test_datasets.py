"""Dataset registry: Table-I shape targets, determinism, caching."""

import numpy as np
import pytest

from repro.detector import (
    DATASET_REGISTRY,
    dataset_config,
    feature_dims,
    make_dataset,
    summarize,
)


class TestRegistry:
    def test_known_names(self):
        assert {"ex3_like", "ctd_like", "tiny"} <= set(DATASET_REGISTRY)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            dataset_config("atlas_full")

    def test_with_sizes(self):
        cfg = dataset_config("ex3_like").with_sizes(3, 1, 1)
        assert (cfg.num_train, cfg.num_val, cfg.num_test) == (3, 1, 1)
        # original untouched (frozen dataclass copy)
        assert dataset_config("ex3_like").num_train == 80

    def test_table1_metadata(self):
        """MLP depths and feature schemes match Table I."""
        ex3 = dataset_config("ex3_like")
        ctd = dataset_config("ctd_like")
        assert ex3.mlp_layers == 2
        assert ctd.mlp_layers == 3
        assert feature_dims(ex3.builder.feature_scheme) == (6, 2)
        assert feature_dims(ctd.builder.feature_scheme) == (14, 8)


class TestGeneration:
    def test_split_sizes(self, tiny_dataset):
        cfg = tiny_dataset.config
        assert len(tiny_dataset.train) == cfg.num_train
        assert len(tiny_dataset.val) == cfg.num_val
        assert len(tiny_dataset.test) == cfg.num_test

    def test_all_graphs_labelled(self, tiny_dataset):
        for g in tiny_dataset.all_graphs:
            assert g.edge_labels is not None
            assert g.particle_ids is not None

    def test_event_ids_unique(self, tiny_dataset):
        ids = [g.event_id for g in tiny_dataset.all_graphs]
        assert len(set(ids)) == len(ids)

    def test_deterministic_regeneration(self):
        cfg = dataset_config("tiny")
        d1 = make_dataset(cfg)
        d2 = make_dataset(cfg)
        for g1, g2 in zip(d1.all_graphs, d2.all_graphs):
            assert np.array_equal(g1.edge_index, g2.edge_index)
            assert np.array_equal(g1.x, g2.x)

    def test_stats_fields(self, tiny_dataset):
        s = tiny_dataset.stats()
        assert set(s) >= {
            "graphs",
            "avg_vertices",
            "avg_edges",
            "edges_per_vertex",
            "mlp_layers",
            "vertex_features",
            "edge_features",
        }

    def test_summarize_renders(self, tiny_dataset):
        line = summarize(tiny_dataset)
        assert "tiny" in line and "avg V=" in line


class TestShapeTargets:
    """The calibrated densities that make the scaled datasets behave like
    Table I: Ex3 ≈ 3.7 edges/vertex (paper 47.8K/13.0K = 3.68), CTD ≈ 21
    (paper 6.9M/330.7K = 20.9)."""

    def test_ex3_like_density(self):
        ds = make_dataset(dataset_config("ex3_like").with_sizes(4, 1, 1))
        density = ds.stats()["edges_per_vertex"]
        assert 2.8 < density < 4.8

    @pytest.mark.slow
    def test_ctd_like_density(self):
        ds = make_dataset(dataset_config("ctd_like").with_sizes(2, 1, 1))
        density = ds.stats()["edges_per_vertex"]
        assert 15.0 < density < 28.0

    @pytest.mark.slow
    def test_ctd_much_larger_than_ex3(self):
        ctd = make_dataset(dataset_config("ctd_like").with_sizes(2, 1, 1))
        ex3 = make_dataset(dataset_config("ex3_like").with_sizes(2, 1, 1))
        assert ctd.stats()["avg_edges"] > 10 * ex3.stats()["avg_edges"]


class TestCaching:
    def test_round_trip_via_cache(self, tmp_path):
        cfg = dataset_config("tiny")
        d1 = make_dataset(cfg, cache_dir=str(tmp_path))
        d2 = make_dataset(cfg, cache_dir=str(tmp_path))
        for g1, g2 in zip(d1.all_graphs, d2.all_graphs):
            assert np.array_equal(g1.edge_index, g2.edge_index)
            assert np.array_equal(g1.x, g2.x)
            assert np.array_equal(g1.edge_labels, g2.edge_labels)
