"""Feature extraction (Table-I widths) and candidate-graph building."""

import numpy as np
import pytest

from repro.detector import (
    DetectorGeometry,
    EventSimulator,
    GeometricBuilderConfig,
    build_candidate_graph,
    edge_features,
    feature_dims,
    label_edges,
    vertex_features,
)


@pytest.fixture(scope="module")
def geometry():
    return DetectorGeometry.barrel_only()


@pytest.fixture(scope="module")
def event(geometry):
    sim = EventSimulator(geometry, particles_per_event=25, noise_fraction=0.05)
    return sim.generate(np.random.default_rng(3))


class TestFeatureDims:
    def test_table1_widths(self):
        """Table I: Ex3 has 6/2 features, CTD has 14/8."""
        assert feature_dims("compact") == (6, 2)
        assert feature_dims("rich") == (14, 8)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            feature_dims("huge")


class TestVertexFeatures:
    @pytest.mark.parametrize("scheme", ["compact", "rich"])
    def test_shapes(self, event, geometry, scheme):
        x = vertex_features(event, geometry, scheme)
        assert x.shape == (event.num_hits, feature_dims(scheme)[0])
        assert x.dtype == np.float32

    @pytest.mark.parametrize("scheme", ["compact", "rich"])
    def test_finite_and_order_one(self, event, geometry, scheme):
        x = vertex_features(event, geometry, scheme)
        assert np.all(np.isfinite(x))
        assert np.abs(x).max() < 10.0

    def test_unknown_scheme(self, event, geometry):
        with pytest.raises(ValueError):
            vertex_features(event, geometry, "bogus")


class TestEdgeFeatures:
    @pytest.mark.parametrize("scheme", ["compact", "rich"])
    def test_shapes(self, event, geometry, scheme):
        ei = event.true_segments()
        y = edge_features(event, geometry, ei, scheme)
        assert y.shape == (ei.shape[1], feature_dims(scheme)[1])
        assert np.all(np.isfinite(y))

    def test_true_segments_have_small_dphi(self, event, geometry):
        """True segments are kinematically smooth: small azimuthal kinks."""
        ei = event.true_segments()
        y = edge_features(event, geometry, ei, "compact")
        dphi = y[:, 1] * np.pi
        assert np.percentile(np.abs(dphi), 90) < 0.5


class TestLabeling:
    def test_true_segments_labelled_one(self, event):
        seg = event.true_segments()
        labels = label_edges(event, seg)
        assert np.all(labels == 1)

    def test_reversed_segments_also_labelled_one(self, event):
        seg = event.true_segments()[::-1]
        labels = label_edges(event, seg)
        assert np.all(labels == 1)

    def test_random_pairs_mostly_zero(self, event):
        rng = np.random.default_rng(0)
        n = event.num_hits
        ei = np.stack([rng.integers(0, n, 200), rng.integers(0, n, 200)])
        labels = label_edges(event, ei)
        assert labels.mean() < 0.1

    def test_empty_edges(self, event):
        assert label_edges(event, np.zeros((2, 0), dtype=np.int64)).shape == (0,)


class TestBuilder:
    def test_builds_labelled_graph(self, event, geometry):
        cfg = GeometricBuilderConfig(dphi_max=0.3, dz_max=300.0, feature_scheme="compact")
        g = build_candidate_graph(event, geometry, cfg)
        assert g.num_nodes == event.num_hits
        assert g.edge_labels is not None
        assert g.num_edges > 0

    def test_edges_respect_windows(self, event, geometry):
        cfg = GeometricBuilderConfig(dphi_max=0.1, dz_max=50.0, feature_scheme="compact")
        g = build_candidate_graph(event, geometry, cfg)
        r, phi, z = event.cylindrical()
        src, dst = g.edge_index
        dphi = np.arctan2(np.sin(phi[dst] - phi[src]), np.cos(phi[dst] - phi[src]))
        assert np.all(np.abs(dphi) <= 0.1 + 1e-9)
        assert np.all(np.abs(z[dst] - z[src]) <= 50.0 + 1e-9)

    def test_edges_cross_adjacent_layers_only(self, event, geometry):
        cfg = GeometricBuilderConfig(dphi_max=0.3, dz_max=300.0, max_layer_skip=1)
        g = build_candidate_graph(event, geometry, cfg)
        src, dst = g.edge_index
        dl = event.layer_ids[dst] - event.layer_ids[src]
        assert np.all(dl == 1)

    def test_layer_skip_widens_reach(self, event, geometry):
        g1 = build_candidate_graph(
            event, geometry, GeometricBuilderConfig(dphi_max=0.3, dz_max=300.0, max_layer_skip=1)
        )
        g2 = build_candidate_graph(
            event, geometry, GeometricBuilderConfig(dphi_max=0.3, dz_max=300.0, max_layer_skip=2)
        )
        assert g2.num_edges > g1.num_edges

    def test_wider_windows_more_edges(self, event, geometry):
        narrow = build_candidate_graph(
            event, geometry, GeometricBuilderConfig(dphi_max=0.05, dz_max=50.0)
        )
        wide = build_candidate_graph(
            event, geometry, GeometricBuilderConfig(dphi_max=0.4, dz_max=400.0)
        )
        assert wide.num_edges > narrow.num_edges

    def test_truth_coverage_with_generous_windows(self, event, geometry):
        """Generous windows must contain nearly all truth segments."""
        cfg = GeometricBuilderConfig(dphi_max=0.5, dz_max=500.0, max_layer_skip=1)
        g = build_candidate_graph(event, geometry, cfg)
        captured = int(g.edge_labels.sum())
        # segments between adjacent layers (skip-1 windows can't capture
        # segments that jump a layer due to inefficiency)
        seg = event.true_segments()
        dl = event.layer_ids[seg[1]] - event.layer_ids[seg[0]]
        adjacent = int(np.sum(np.abs(dl) == 1))
        assert captured >= 0.95 * adjacent

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            GeometricBuilderConfig(dphi_max=0.0)
        with pytest.raises(ValueError):
            GeometricBuilderConfig(max_layer_skip=0)
