"""Property-based invariants of the module map."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detector import (
    DetectorGeometry,
    EventSimulator,
    ModuleMap,
    ModuleMapConfig,
)

GEO = DetectorGeometry.barrel_only()


def make_events(seed, n=6, particles=15):
    sim = EventSimulator(GEO, particles_per_event=particles, noise_fraction=0.05)
    return [sim.generate(np.random.default_rng(seed + i)) for i in range(n)]


class TestModuleMapProperties:
    @given(st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_built_edges_within_learned_bounds(self, seed):
        events = make_events(seed)
        mm = ModuleMap(GEO, ModuleMapConfig(window_margin=0.0)).fit(events[:5])
        ev = events[5]
        g = mm.build(ev)
        if g.num_edges == 0:
            return
        _, phi, z = ev.cylindrical()
        for la in np.unique(ev.layer_ids[g.rows]):
            mask = ev.layer_ids[g.rows] == la
            for lb in np.unique(ev.layer_ids[g.cols[mask]]):
                bounds = mm._bounds.get((int(la), int(lb)))
                assert bounds is not None
                sub = mask & (ev.layer_ids[g.cols] == lb)
                dphi = np.arctan2(
                    np.sin(phi[g.cols[sub]] - phi[g.rows[sub]]),
                    np.cos(phi[g.cols[sub]] - phi[g.rows[sub]]),
                )
                dz = z[g.cols[sub]] - z[g.rows[sub]]
                assert np.all(dphi >= bounds[0] - 1e-9)
                assert np.all(dphi <= bounds[1] + 1e-9)
                assert np.all(dz >= bounds[2] - 1e-9)
                assert np.all(dz <= bounds[3] + 1e-9)

    @given(st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_training_segments_always_buildable(self, seed):
        """Every truth segment of a *training* event must be in the graph
        the map builds for that event (the map memorises its sample)."""
        events = make_events(seed, n=3)
        mm = ModuleMap(GEO, ModuleMapConfig()).fit(events)
        for ev in events:
            assert mm.edge_efficiency(ev) > 0.99

    @given(st.integers(0, 200))
    @settings(max_examples=10, deadline=None)
    def test_more_training_never_reduces_connections(self, seed):
        events = make_events(seed)
        few = ModuleMap(GEO, ModuleMapConfig()).fit(events[:2])
        many = ModuleMap(GEO, ModuleMapConfig()).fit(events)
        assert many.num_connections >= few.num_connections
