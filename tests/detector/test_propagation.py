"""Helix propagation physics invariants (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detector import DetectorGeometry, Particle, helix_position, propagate


GEO = DetectorGeometry.barrel_only()


@st.composite
def particles(draw):
    return Particle(
        particle_id=1,
        pt=draw(st.floats(0.5, 10.0)),
        phi0=draw(st.floats(-np.pi, np.pi)),
        eta=draw(st.floats(-1.2, 1.2)),
        charge=draw(st.sampled_from([-1, 1])),
        vx=draw(st.floats(-0.05, 0.05)),
        vy=draw(st.floats(-0.05, 0.05)),
        vz=draw(st.floats(-30.0, 30.0)),
    )


class TestHelixPosition:
    @given(particles())
    @settings(max_examples=50, deadline=None)
    def test_starts_at_vertex(self, p):
        pos = helix_position(p, np.array([0.0]), GEO.solenoid_field_tesla)[0]
        assert pos[0] == pytest.approx(p.vx, abs=1e-9)
        assert pos[1] == pytest.approx(p.vy, abs=1e-9)
        assert pos[2] == pytest.approx(p.vz, abs=1e-9)

    @given(particles())
    @settings(max_examples=50, deadline=None)
    def test_initial_direction_matches_phi0(self, p):
        eps = 1e-5
        pos = helix_position(p, np.array([0.0, eps]), GEO.solenoid_field_tesla)
        dx, dy = pos[1, 0] - pos[0, 0], pos[1, 1] - pos[0, 1]
        direction = np.arctan2(dy, dx)
        delta = np.arctan2(np.sin(direction - p.phi0), np.cos(direction - p.phi0))
        assert abs(delta) < 1e-3

    @given(particles())
    @settings(max_examples=50, deadline=None)
    def test_transverse_circle_radius(self, p):
        """All points lie on a circle of radius R around the helix centre."""
        B = GEO.solenoid_field_tesla
        R = p.helix_radius_mm(B)
        q = float(p.charge)
        cx = p.vx - (R / q) * np.sin(p.phi0)
        cy = p.vy + (R / q) * np.cos(p.phi0)
        ts = np.linspace(0.0, np.pi, 17)
        pos = helix_position(p, ts, B)
        dists = np.hypot(pos[:, 0] - cx, pos[:, 1] - cy)
        assert np.allclose(dists, R, rtol=1e-9)

    def test_charge_flips_turning_direction(self):
        base = dict(particle_id=1, pt=2.0, phi0=0.3, eta=0.0, vx=0.0, vy=0.0, vz=0.0)
        plus = Particle(charge=1, **base)
        minus = Particle(charge=-1, **base)
        t = np.array([0.5])
        pp = helix_position(plus, t, 2.0)[0]
        pm = helix_position(minus, t, 2.0)[0]
        assert not np.allclose(pp[:2], pm[:2])


class TestPropagate:
    @given(particles())
    @settings(max_examples=60, deadline=None)
    def test_hits_lie_on_their_layers(self, p):
        hits = propagate(p, GEO)
        radius_of = {l.layer_id: l.radius for l in GEO.barrel}
        for h in hits:
            r = np.hypot(h.x, h.y)
            assert r == pytest.approx(radius_of[h.layer_id], rel=1e-6)

    @given(particles())
    @settings(max_examples=60, deadline=None)
    def test_hits_ordered_along_trajectory(self, p):
        hits = propagate(p, GEO)
        ts = [h.t for h in hits]
        assert ts == sorted(ts)

    @given(particles())
    @settings(max_examples=60, deadline=None)
    def test_hits_within_half_length(self, p):
        half = {l.layer_id: l.half_length for l in GEO.barrel}
        for h in propagate(p, GEO):
            assert abs(h.z) <= half[h.layer_id] + 1e-6

    def test_high_pt_central_track_crosses_all_layers(self):
        p = Particle(1, pt=5.0, phi0=0.1, eta=0.0, charge=1, vx=0.0, vy=0.0, vz=0.0)
        hits = propagate(p, GEO)
        assert len(hits) == len(GEO.barrel)

    def test_low_pt_curler_misses_outer_layers(self):
        # R = 1000*pt/(0.3*2) mm; pt=0.2 → R=333mm → max reach 666mm < 820mm layer
        p = Particle(1, pt=0.2, phi0=0.0, eta=0.0, charge=1, vx=0.0, vy=0.0, vz=0.0)
        hits = propagate(p, GEO)
        layer_ids = {h.layer_id for h in hits}
        assert 9 not in layer_ids  # outermost layer (1020mm) unreachable

    def test_min_hits_cut(self):
        # very forward track exits the barrel quickly
        p = Particle(1, pt=1.0, phi0=0.0, eta=4.0, charge=1, vx=0.0, vy=0.0, vz=0.0)
        hits = propagate(p, GEO, min_hits=3)
        assert hits == [] or len(hits) >= 3

    def test_endcap_disk_crossing(self):
        geo = DetectorGeometry.with_endcaps()
        p = Particle(1, pt=3.0, phi0=0.0, eta=1.6, charge=1, vx=0.0, vy=0.0, vz=0.0)
        hits = propagate(p, geo, min_hits=1)
        disk_ids = {d.layer_id for d in geo.endcaps}
        assert any(h.layer_id in disk_ids for h in hits)
