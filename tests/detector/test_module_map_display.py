"""Module-map graph construction and the SVG event display."""

import numpy as np
import pytest

from repro.detector import (
    DetectorGeometry,
    EventSimulator,
    ModuleMap,
    ModuleMapConfig,
    event_display_svg,
)


@pytest.fixture(scope="module")
def geo():
    return DetectorGeometry.barrel_only()


@pytest.fixture(scope="module")
def events(geo):
    sim = EventSimulator(geo, particles_per_event=25, noise_fraction=0.05)
    return [sim.generate(np.random.default_rng(300 + i)) for i in range(22)]


@pytest.fixture(scope="module")
def fitted_map(geo, events):
    return ModuleMap(geo, ModuleMapConfig()).fit(events[:20])


class TestModuleMap:
    def test_fit_records_connections(self, fitted_map):
        assert fitted_map.num_connections > 0

    def test_build_requires_fit(self, geo, events):
        with pytest.raises(RuntimeError):
            ModuleMap(geo, ModuleMapConfig()).build(events[0])

    def test_fit_requires_events(self, geo):
        with pytest.raises(ValueError):
            ModuleMap(geo, ModuleMapConfig()).fit([])

    def test_training_events_high_efficiency(self, fitted_map, events):
        """Segments seen in training are by construction in the map."""
        assert fitted_map.edge_efficiency(events[0]) > 0.9

    def test_held_out_efficiency_reasonable(self, fitted_map, events):
        effs = [fitted_map.edge_efficiency(e) for e in events[20:]]
        assert np.mean(effs) > 0.6

    def test_built_graph_labelled_and_purer_than_random(self, fitted_map, events):
        g = fitted_map.build(events[21])
        assert g.edge_labels is not None
        assert g.num_edges > 0
        # map-constrained edges are far purer than uniform pairs would be
        assert g.true_edge_fraction() > 0.2

    def test_edges_connect_inner_to_outer_layer(self, fitted_map, events):
        ev = events[21]
        g = fitted_map.build(ev)
        dl = ev.layer_ids[g.cols] - ev.layer_ids[g.rows]
        assert np.all(dl > 0)

    def test_no_duplicate_edges(self, fitted_map, events):
        g = fitted_map.build(events[21])
        keys = set(zip(g.rows.tolist(), g.cols.tolist()))
        assert len(keys) == g.num_edges

    def test_finer_sectors_raise_purity(self, geo, events):
        coarse = ModuleMap(geo, ModuleMapConfig(num_phi_sectors=8, num_z_sectors=4)).fit(events[:20])
        fine = ModuleMap(geo, ModuleMapConfig(num_phi_sectors=32, num_z_sectors=16)).fit(events[:20])
        ev = events[21]
        assert fine.build(ev).true_edge_fraction() > coarse.build(ev).true_edge_fraction()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ModuleMapConfig(num_phi_sectors=0)
        with pytest.raises(ValueError):
            ModuleMapConfig(window_margin=-0.1)


class TestEventDisplay:
    def test_valid_svg_structure(self, geo, events):
        svg = event_display_svg(events[0], geo)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<circle") >= events[0].num_hits  # hits + layers

    def test_candidates_drawn_as_polylines(self, geo, events):
        ev = events[0]
        pid = int(np.unique(ev.particle_ids[ev.particle_ids > 0])[0])
        cand = np.flatnonzero(ev.particle_ids == pid)
        svg = event_display_svg(ev, geo, candidates=[cand])
        assert svg.count("<polyline") == 1

    def test_short_candidates_skipped(self, geo, events):
        svg = event_display_svg(events[0], geo, candidates=[np.array([0])])
        assert "<polyline" not in svg

    def test_noise_coloured_grey(self, geo, events):
        ev = events[0]
        if np.any(ev.particle_ids == 0):
            svg = event_display_svg(ev, geo)
            assert "#999999" in svg
