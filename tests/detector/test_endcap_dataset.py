"""Forward-region (barrel + endcap) dataset."""

import numpy as np
import pytest

from repro.detector import (
    DetectorGeometry,
    dataset_config,
    make_dataset,
)
from repro.detector.datasets import DatasetConfig, _make_simulator


class TestEndcapDataset:
    def test_registry_entry(self):
        cfg = dataset_config("fwd_like")
        assert cfg.geometry == "with_endcaps"

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            DatasetConfig(name="x", geometry="spherical")

    def test_disks_collect_hits(self):
        geo = DetectorGeometry.with_endcaps()
        sim = _make_simulator(dataset_config("fwd_like"), geo)
        ev = sim.generate(np.random.default_rng(0))
        disk_ids = {d.layer_id for d in geo.endcaps}
        assert set(ev.layer_ids.tolist()) & disk_ids

    def test_wider_eta_acceptance(self):
        geo = DetectorGeometry.with_endcaps()
        sim = _make_simulator(dataset_config("fwd_like"), geo)
        assert sim.gun.eta_max == pytest.approx(2.5)
        barrel_sim = _make_simulator(dataset_config("ex3_like"), DetectorGeometry.barrel_only())
        assert barrel_sim.gun.eta_max == pytest.approx(1.5)

    def test_dataset_generates_labelled_graphs(self):
        ds = make_dataset(dataset_config("fwd_like").with_sizes(2, 1, 1))
        for g in ds.all_graphs:
            assert g.edge_labels is not None
            assert g.num_nodes > 0

    def test_forward_hits_on_disks_within_annulus(self):
        geo = DetectorGeometry.with_endcaps()
        sim = _make_simulator(dataset_config("fwd_like"), geo)
        ev = sim.generate(np.random.default_rng(1))
        r = np.hypot(ev.positions[:, 0], ev.positions[:, 1])
        for d in geo.endcaps:
            on_disk = ev.layer_ids == d.layer_id
            if on_disk.any():
                assert np.all(r[on_disk] >= d.r_inner - 2.0)
                assert np.all(r[on_disk] <= d.r_outer + 2.0)
