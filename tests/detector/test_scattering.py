"""Multiple-scattering propagation: physics shapes."""

import numpy as np
import pytest

from repro.detector import (
    DetectorGeometry,
    EventSimulator,
    Particle,
    fit_helix,
    propagate,
    propagate_with_scattering,
)

GEO = DetectorGeometry.barrel_only()


def central_particle(pt: float) -> Particle:
    return Particle(1, pt=pt, phi0=0.3, eta=0.2, charge=1, vx=0.0, vy=0.0, vz=0.0)


class TestScatteringPropagation:
    def test_zero_material_matches_ideal(self):
        p = central_particle(2.0)
        rng = np.random.default_rng(0)
        ideal = propagate(p, GEO)
        scattered = propagate_with_scattering(p, GEO, rng, radiation_length_fraction=0.0)
        assert len(ideal) == len(scattered)
        for a, b in zip(ideal, scattered):
            assert a.x == pytest.approx(b.x, abs=1e-9)
            assert a.z == pytest.approx(b.z, abs=1e-9)

    def test_hits_still_on_layers(self):
        p = central_particle(1.0)
        hits = propagate_with_scattering(p, GEO, np.random.default_rng(1), 0.05)
        radius_of = {l.layer_id: l.radius for l in GEO.barrel}
        for h in hits:
            assert np.hypot(h.x, h.y) == pytest.approx(radius_of[h.layer_id], rel=1e-6)

    def test_scattering_displaces_outer_hits(self):
        p = central_particle(0.8)
        ideal = propagate(p, GEO)
        scattered = propagate_with_scattering(p, GEO, np.random.default_rng(2), 0.05)
        n = min(len(ideal), len(scattered))
        assert n >= 4
        outer_shift = np.hypot(
            ideal[n - 1].x - scattered[n - 1].x, ideal[n - 1].y - scattered[n - 1].y
        )
        inner_shift = np.hypot(ideal[0].x - scattered[0].x, ideal[0].y - scattered[0].y)
        assert outer_shift > inner_shift  # kinks accumulate outward

    def test_low_momentum_scatters_more(self):
        """Highland: θ₀ ∝ 1/p — soft tracks deviate more from the ideal
        helix (averaged over scatter realisations)."""

        def mean_deviation(pt):
            p = central_particle(pt)
            ideal = propagate(p, GEO)
            devs = []
            for s in range(20):
                sc = propagate_with_scattering(p, GEO, np.random.default_rng(s), 0.05)
                n = min(len(ideal), len(sc))
                if n:
                    devs.append(
                        np.hypot(ideal[n - 1].x - sc[n - 1].x, ideal[n - 1].y - sc[n - 1].y)
                    )
            return np.mean(devs)

        assert mean_deviation(0.6) > 2.0 * mean_deviation(5.0)

    def test_helix_fit_residuals_grow_with_material(self):
        p = central_particle(0.8)
        residuals = []
        for frac in (0.0, 0.1):
            hits = propagate_with_scattering(p, GEO, np.random.default_rng(3), frac)
            pos = np.array([[h.x, h.y, h.z] for h in hits])
            fit = fit_helix(pos, GEO.solenoid_field_tesla)
            residuals.append(fit.rms_residual_mm)
        assert residuals[1] > residuals[0]

    def test_negative_material_rejected(self):
        with pytest.raises(ValueError):
            propagate_with_scattering(
                central_particle(1.0), GEO, np.random.default_rng(0), -0.1
            )


class TestSimulatorIntegration:
    def test_simulator_accepts_scattering(self):
        sim = EventSimulator(GEO, particles_per_event=10, multiple_scattering=0.03)
        ev = sim.generate(np.random.default_rng(0))
        assert ev.num_hits > 0

    def test_scattering_validation(self):
        with pytest.raises(ValueError):
            EventSimulator(GEO, multiple_scattering=-1.0)

    def test_scattered_events_still_trainable_truth(self):
        sim = EventSimulator(GEO, particles_per_event=15, multiple_scattering=0.03)
        ev = sim.generate(np.random.default_rng(1))
        seg = ev.true_segments()
        assert seg.shape[1] > 0
        assert np.all(ev.particle_ids[seg[0]] == ev.particle_ids[seg[1]])
