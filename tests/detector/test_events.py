"""Event simulation: hit content, truth segments, noise, particle gun."""

import numpy as np
import pytest

from repro.detector import DetectorGeometry, EventSimulator, Particle, ParticleGun


@pytest.fixture(scope="module")
def geometry():
    return DetectorGeometry.barrel_only()


@pytest.fixture(scope="module")
def event(geometry):
    sim = EventSimulator(geometry, particles_per_event=30, noise_fraction=0.1)
    return sim.generate(np.random.default_rng(0), event_id=42)


class TestParticleGun:
    def test_sample_count_and_ids(self):
        gun = ParticleGun()
        ps = gun.sample(10, np.random.default_rng(0), first_id=5)
        assert len(ps) == 10
        assert [p.particle_id for p in ps] == list(range(5, 15))

    def test_kinematic_ranges(self):
        gun = ParticleGun(pt_min=0.5, pt_max=8.0, eta_max=1.5)
        ps = gun.sample(500, np.random.default_rng(0))
        assert all(0.5 <= p.pt <= 8.0 for p in ps)
        assert all(abs(p.eta) <= 1.5 for p in ps)
        assert all(p.charge in (-1, 1) for p in ps)

    def test_invalid_pt_range(self):
        with pytest.raises(ValueError):
            ParticleGun(pt_min=2.0, pt_max=1.0)

    def test_helix_radius_formula(self):
        p = Particle(1, pt=0.6, phi0=0.0, eta=0.0, charge=1, vx=0, vy=0, vz=0)
        # R[mm] = 1000 * pt / (0.3 * B)
        assert p.helix_radius_mm(2.0) == pytest.approx(1000.0)


class TestEventContent:
    def test_arrays_parallel(self, event):
        n = event.num_hits
        assert event.positions.shape == (n, 3)
        assert event.layer_ids.shape == (n,)
        assert event.particle_ids.shape == (n,)
        assert event.hit_order.shape == (n,)

    def test_noise_hits_marked(self, event):
        noise = event.particle_ids == 0
        assert np.any(noise)
        assert np.all(event.hit_order[noise] == -1)

    def test_noise_fraction_approximate(self, geometry):
        sim = EventSimulator(geometry, particles_per_event=60, noise_fraction=0.2)
        ev = sim.generate(np.random.default_rng(1))
        frac = np.mean(ev.particle_ids == 0)
        assert 0.1 < frac < 0.3

    def test_hits_on_layer_radii(self, event, geometry):
        r = np.hypot(event.positions[:, 0], event.positions[:, 1])
        radius_of = np.array([l.radius for l in geometry.barrel])
        expected = radius_of[event.layer_ids]
        # smearing is tangential + z only, so r must match exactly-ish
        assert np.allclose(r, expected, rtol=1e-6)

    def test_min_hits_respected(self, event):
        pids = event.particle_ids[event.particle_ids > 0]
        counts = np.bincount(pids)
        counts = counts[counts > 0]
        assert counts.min() >= 3


class TestTrueSegments:
    def test_segments_connect_same_particle(self, event):
        seg = event.true_segments()
        assert np.all(event.particle_ids[seg[0]] == event.particle_ids[seg[1]])
        assert np.all(event.particle_ids[seg[0]] > 0)

    def test_segments_are_consecutive_ranks(self, event):
        seg = event.true_segments()
        assert np.all(event.hit_order[seg[1]] - event.hit_order[seg[0]] == 1)

    def test_segment_count(self, event):
        # each particle with k hits contributes k-1 segments
        pids = event.particle_ids[event.particle_ids > 0]
        counts = np.bincount(pids)
        expected = int(np.sum(np.maximum(counts[counts > 0] - 1, 0)))
        assert event.true_segments().shape[1] == expected

    def test_empty_event(self, geometry):
        sim = EventSimulator(geometry, particles_per_event=0, noise_fraction=0.0)
        ev = sim.generate(np.random.default_rng(0))
        assert ev.num_hits == 0
        assert ev.true_segments().shape == (2, 0)

    def test_num_reconstructable(self, event):
        assert event.num_reconstructable(min_hits=3) > 0
        assert event.num_reconstructable(min_hits=100) == 0


class TestDeterminism:
    def test_same_seed_same_event(self, geometry):
        sim = EventSimulator(geometry, particles_per_event=20)
        e1 = sim.generate(np.random.default_rng(7))
        e2 = sim.generate(np.random.default_rng(7))
        assert np.array_equal(e1.positions, e2.positions)
        assert np.array_equal(e1.particle_ids, e2.particle_ids)

    def test_different_seed_different_event(self, geometry):
        sim = EventSimulator(geometry, particles_per_event=20)
        e1 = sim.generate(np.random.default_rng(7))
        e2 = sim.generate(np.random.default_rng(8))
        assert e1.num_hits != e2.num_hits or not np.array_equal(e1.positions, e2.positions)


class TestValidation:
    def test_bad_efficiency(self, geometry):
        with pytest.raises(ValueError):
            EventSimulator(geometry, hit_efficiency=0.0)

    def test_bad_noise(self, geometry):
        with pytest.raises(ValueError):
            EventSimulator(geometry, noise_fraction=-0.1)
