"""Detector geometry validation."""

import numpy as np
import pytest

from repro.detector import BarrelLayer, DetectorGeometry, EndcapDisk


class TestBarrelLayer:
    def test_positive_dimensions_required(self):
        with pytest.raises(ValueError):
            BarrelLayer(radius=-1.0, half_length=100.0, layer_id=0)
        with pytest.raises(ValueError):
            BarrelLayer(radius=10.0, half_length=0.0, layer_id=0)


class TestEndcapDisk:
    def test_annulus_bounds(self):
        with pytest.raises(ValueError):
            EndcapDisk(z=500.0, r_inner=100.0, r_outer=50.0, layer_id=0)


class TestDetectorGeometry:
    def test_barrel_only_factory(self):
        geo = DetectorGeometry.barrel_only()
        assert geo.num_layers == 10
        radii = geo.barrel_radii
        assert np.all(np.diff(radii) > 0)

    def test_with_endcaps_factory(self):
        geo = DetectorGeometry.with_endcaps()
        assert len(geo.endcaps) == 6
        ids = [l.layer_id for l in geo.barrel] + [d.layer_id for d in geo.endcaps]
        assert len(set(ids)) == len(ids)

    def test_unordered_barrel_rejected(self):
        layers = (
            BarrelLayer(radius=100.0, half_length=500.0, layer_id=0),
            BarrelLayer(radius=50.0, half_length=500.0, layer_id=1),
        )
        with pytest.raises(ValueError):
            DetectorGeometry(barrel=layers)

    def test_duplicate_layer_ids_rejected(self):
        layers = (
            BarrelLayer(radius=50.0, half_length=500.0, layer_id=0),
            BarrelLayer(radius=100.0, half_length=500.0, layer_id=0),
        )
        with pytest.raises(ValueError):
            DetectorGeometry(barrel=layers)

    def test_max_radius(self):
        geo = DetectorGeometry.barrel_only(radii=(10.0, 20.0, 30.0))
        assert geo.max_radius == 30.0
