"""Finite-difference gradient checks for every differentiable op."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck, ops


def t64(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestElementwiseGrads:
    def test_add_broadcast(self, rng):
        a, b = t64(rng, 3, 4), t64(rng, 4)
        gradcheck(lambda a, b: ops.sum(ops.add(a, b)), [a, b])

    def test_sub(self, rng):
        a, b = t64(rng, 3, 4), t64(rng, 3, 4)
        gradcheck(lambda a, b: ops.sum(ops.sub(a, b)), [a, b])

    def test_mul_broadcast(self, rng):
        a, b = t64(rng, 2, 5), t64(rng, 1, 5)
        gradcheck(lambda a, b: ops.sum(ops.mul(a, b)), [a, b])

    def test_div(self, rng):
        a = t64(rng, 4)
        b = Tensor(rng.uniform(1.0, 2.0, size=4), requires_grad=True)
        gradcheck(lambda a, b: ops.sum(ops.div(a, b)), [a, b])

    def test_neg(self, rng):
        a = t64(rng, 5)
        gradcheck(lambda a: ops.sum(ops.neg(a)), [a])

    def test_pow(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=6), requires_grad=True)
        gradcheck(lambda a: ops.sum(ops.pow(a, 3.0)), [a])

    def test_sqrt(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=6), requires_grad=True)
        gradcheck(lambda a: ops.sum(ops.sqrt(a)), [a])

    def test_abs_away_from_kink(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=6) * rng.choice([-1, 1], 6), requires_grad=True)
        gradcheck(lambda a: ops.sum(ops.abs(a)), [a])

    def test_clip_interior(self, rng):
        a = Tensor(rng.uniform(-0.4, 0.4, size=6), requires_grad=True)
        gradcheck(lambda a: ops.sum(ops.clip(a, -1.0, 1.0)), [a])


class TestLinalgGrads:
    def test_matmul_2d(self, rng):
        a, b = t64(rng, 3, 4), t64(rng, 4, 2)
        gradcheck(lambda a, b: ops.sum(ops.matmul(a, b)), [a, b])

    def test_matmul_vec_mat(self, rng):
        a, b = t64(rng, 4), t64(rng, 4, 3)
        gradcheck(lambda a, b: ops.sum(ops.matmul(a, b)), [a, b])

    def test_matmul_mat_vec(self, rng):
        a, b = t64(rng, 3, 4), t64(rng, 4)
        gradcheck(lambda a, b: ops.sum(ops.matmul(a, b)), [a, b])

    def test_matmul_dot(self, rng):
        a, b = t64(rng, 5), t64(rng, 5)
        gradcheck(lambda a, b: ops.matmul(a, b), [a, b])

    def test_sum_axis(self, rng):
        a = t64(rng, 3, 4)
        gradcheck(lambda a: ops.sum(ops.mul(ops.sum(a, axis=0), ops.sum(a, axis=0))), [a])

    def test_mean_axis_keepdims(self, rng):
        a = t64(rng, 3, 4)
        gradcheck(lambda a: ops.sum(ops.mul(a, ops.mean(a, axis=1, keepdims=True))), [a])

    def test_reshape(self, rng):
        a = t64(rng, 6)
        gradcheck(lambda a: ops.sum(ops.mul(ops.reshape(a, (2, 3)), ops.reshape(a, (2, 3)))), [a])

    def test_transpose(self, rng):
        a = t64(rng, 2, 3)
        gradcheck(lambda a: ops.sum(ops.mul(ops.transpose(a), ops.transpose(a))), [a])

    def test_getitem_fancy(self, rng):
        a = t64(rng, 6, 2)
        idx = np.array([0, 0, 3, 5])
        gradcheck(lambda a: ops.sum(ops.mul(ops.getitem(a, idx), ops.getitem(a, idx))), [a])


class TestGraphOpGrads:
    def test_concat(self, rng):
        a, b = t64(rng, 3, 2), t64(rng, 3, 4)
        gradcheck(lambda a, b: ops.sum(ops.pow(ops.concat([a, b], axis=1), 2.0)), [a, b])

    def test_stack(self, rng):
        a, b = t64(rng, 4), t64(rng, 4)
        gradcheck(lambda a, b: ops.sum(ops.pow(ops.stack([a, b]), 2.0)), [a, b])

    def test_gather_rows_with_duplicates(self, rng):
        a = t64(rng, 5, 3)
        idx = np.array([0, 2, 2, 4, 0])
        gradcheck(lambda a: ops.sum(ops.pow(ops.gather_rows(a, idx), 2.0)), [a])

    def test_segment_sum(self, rng):
        a = t64(rng, 6, 3)
        seg = np.array([0, 1, 0, 2, 2, 1])
        gradcheck(lambda a: ops.sum(ops.pow(ops.segment_sum(a, seg, 3), 2.0)), [a])

    def test_segment_mean_empty_segment(self, rng):
        a = t64(rng, 4, 2)
        seg = np.array([0, 0, 2, 2])  # segment 1 empty
        gradcheck(lambda a: ops.sum(ops.pow(ops.segment_mean(a, seg, 3), 2.0)), [a])


class TestActivationGrads:
    def test_relu_away_from_kink(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=8) * rng.choice([-1, 1], 8), requires_grad=True)
        gradcheck(lambda a: ops.sum(ops.relu(a)), [a])

    def test_leaky_relu(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=8) * rng.choice([-1, 1], 8), requires_grad=True)
        gradcheck(lambda a: ops.sum(ops.leaky_relu(a, 0.1)), [a])

    def test_tanh(self, rng):
        a = t64(rng, 8)
        gradcheck(lambda a: ops.sum(ops.tanh(a)), [a])

    def test_sigmoid(self, rng):
        a = t64(rng, 8)
        gradcheck(lambda a: ops.sum(ops.sigmoid(a)), [a])

    def test_exp(self, rng):
        a = t64(rng, 8)
        gradcheck(lambda a: ops.sum(ops.exp(a)), [a])

    def test_log(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, size=8), requires_grad=True)
        gradcheck(lambda a: ops.sum(ops.log(a)), [a])

    def test_softmax(self, rng):
        a = t64(rng, 3, 5)
        w = rng.normal(size=(3, 5))
        gradcheck(lambda a: ops.sum(ops.mul(ops.softmax(a), Tensor(w))), [a])

    def test_layer_norm(self, rng):
        a, w, b = t64(rng, 4, 6), t64(rng, 6), t64(rng, 6)
        gradcheck(lambda a, w, b: ops.sum(ops.pow(ops.layer_norm(a, w, b), 2.0)), [a, w, b], atol=1e-5)


class TestLossGrads:
    def test_bce_plain(self, rng):
        logits = t64(rng, 10)
        targets = (rng.random(10) > 0.5).astype(np.float64)
        gradcheck(lambda l: ops.bce_with_logits(l, targets), [logits])

    def test_bce_pos_weight(self, rng):
        logits = t64(rng, 10)
        targets = (rng.random(10) > 0.5).astype(np.float64)
        gradcheck(lambda l: ops.bce_with_logits(l, targets, pos_weight=4.0), [logits])

    def test_bce_sum_reduction(self, rng):
        logits = t64(rng, 7)
        targets = (rng.random(7) > 0.5).astype(np.float64)
        gradcheck(lambda l: ops.bce_with_logits(l, targets, reduction="sum"), [logits])

    def test_mse(self, rng):
        pred = t64(rng, 6)
        target = rng.normal(size=6)
        gradcheck(lambda p: ops.mse_loss(p, target), [pred])

    def test_hinge_embedding(self, rng):
        d2 = Tensor(rng.uniform(0.1, 2.0, size=8), requires_grad=True)
        labels = (rng.random(8) > 0.5).astype(np.float64)
        gradcheck(lambda d: ops.hinge_embedding_loss(d, labels, margin=0.7), [d2], atol=1e-5)

    def test_squared_distance(self, rng):
        a, b = t64(rng, 5, 3), t64(rng, 5, 3)
        gradcheck(lambda a, b: ops.sum(ops.squared_distance(a, b)), [a, b])


class TestCompositeGrads:
    def test_mini_ignn_layer(self, rng):
        """The exact dataflow of one IGNN layer, gradient-checked."""
        x = t64(rng, 5, 3)
        y = t64(rng, 7, 3)
        w_msg = t64(rng, 9, 3)
        w_node = t64(rng, 9, 3)
        rows = np.array([0, 1, 2, 3, 4, 0, 2])
        cols = np.array([1, 2, 3, 4, 0, 2, 4])

        def f(x, y, w_msg, w_node):
            msg_in = ops.concat([y, ops.gather_rows(x, rows), ops.gather_rows(x, cols)], axis=1)
            msg = ops.tanh(ops.matmul(msg_in, w_msg))
            m_src = ops.segment_sum(msg, rows, 5)
            m_dst = ops.segment_sum(msg, cols, 5)
            upd = ops.matmul(ops.concat([m_src, m_dst, x], axis=1), w_node)
            return ops.mean(ops.pow(upd, 2.0))

        gradcheck(f, [x, y, w_msg, w_node], atol=1e-5)
