"""Forward-value semantics of the op library (including property tests)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, ops, unbroadcast

finite_floats = st.floats(-1e3, 1e3, allow_nan=False, width=32)


class TestForwardValues:
    def test_concat_axis1(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32))
        b = Tensor(np.zeros((2, 3), dtype=np.float32))
        out = ops.concat([a, b], axis=1)
        assert out.shape == (2, 5)
        assert np.all(out.numpy()[:, :2] == 1) and np.all(out.numpy()[:, 2:] == 0)

    def test_gather_rows_matches_numpy(self):
        a = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        idx = np.array([3, 1, 1, 0])
        assert np.array_equal(ops.gather_rows(a, idx).numpy(), a.numpy()[idx])

    def test_segment_sum_matches_manual(self):
        a = Tensor(np.arange(8, dtype=np.float32).reshape(4, 2))
        seg = np.array([1, 0, 1, 2])
        out = ops.segment_sum(a, seg, 3).numpy()
        assert np.allclose(out[0], a.numpy()[1])
        assert np.allclose(out[1], a.numpy()[0] + a.numpy()[2])
        assert np.allclose(out[2], a.numpy()[3])

    def test_segment_sum_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ops.segment_sum(Tensor(np.ones((3, 2))), np.array([0, 1]), 2)

    def test_segment_mean_empty_segment_is_zero(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32))
        out = ops.segment_mean(a, np.array([0, 0]), 2).numpy()
        assert np.allclose(out[0], 1.0)
        assert np.allclose(out[1], 0.0)

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor(np.array([-1000.0, 0.0, 1000.0], dtype=np.float32))
        out = ops.sigmoid(x).numpy()
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-6)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0, abs=1e-6)

    def test_bce_extreme_logits_finite(self):
        logits = Tensor(np.array([-500.0, 500.0], dtype=np.float32), requires_grad=True)
        loss = ops.bce_with_logits(logits, np.array([0.0, 1.0]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.all(np.isfinite(logits.grad))

    def test_bce_matches_manual(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=20)
        t = (rng.random(20) > 0.5).astype(np.float64)
        loss = ops.bce_with_logits(Tensor(x), t).item()
        s = 1 / (1 + np.exp(-x))
        manual = -(t * np.log(s) + (1 - t) * np.log(1 - s)).mean()
        assert loss == pytest.approx(manual, rel=1e-5)

    def test_bce_pos_weight_matches_manual(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=20)
        t = (rng.random(20) > 0.5).astype(np.float64)
        w = 3.0
        loss = ops.bce_with_logits(Tensor(x), t, pos_weight=w).item()
        s = 1 / (1 + np.exp(-x))
        manual = -(w * t * np.log(s) + (1 - t) * np.log(1 - s)).mean()
        assert loss == pytest.approx(manual, rel=1e-5)

    def test_bce_none_reduction_shape(self):
        out = ops.bce_with_logits(Tensor(np.zeros(5)), np.ones(5), reduction="none")
        assert out.shape == (5,)

    def test_bce_unknown_reduction(self):
        with pytest.raises(ValueError):
            ops.bce_with_logits(Tensor(np.zeros(2)), np.ones(2), reduction="bogus")

    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        out = ops.softmax(Tensor(rng.normal(size=(4, 7)))).numpy()
        assert np.allclose(out.sum(axis=1), 1.0, atol=1e-6)

    def test_layer_norm_normalises(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(2.0, 3.0, size=(10, 16)).astype(np.float32))
        w = Tensor(np.ones(16, dtype=np.float32))
        b = Tensor(np.zeros(16, dtype=np.float32))
        out = ops.layer_norm(x, w, b).numpy()
        assert np.allclose(out.mean(axis=1), 0.0, atol=1e-5)
        assert np.allclose(out.std(axis=1), 1.0, atol=1e-2)

    def test_dropout_eval_mode_identity(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(100, dtype=np.float32))
        out = ops.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_dropout_scales_survivors(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(10000, dtype=np.float32))
        out = ops.dropout(x, 0.25, rng, training=True).numpy()
        survivors = out[out > 0]
        assert np.allclose(survivors, 1.0 / 0.75)
        assert abs((out > 0).mean() - 0.75) < 0.03

    def test_dropout_invalid_p(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ops.dropout(Tensor(np.ones(3)), 1.5, rng)

    def test_hinge_loss_zero_for_separated(self):
        # positives at distance 0, negatives beyond the margin
        d2 = Tensor(np.array([0.0, 0.0, 4.0, 4.0]))
        labels = np.array([1.0, 1.0, 0.0, 0.0])
        loss = ops.hinge_embedding_loss(d2, labels, margin=1.0)
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_hinge_loss_penalises_close_negatives(self):
        d2 = Tensor(np.array([0.01]))
        loss = ops.hinge_embedding_loss(d2, np.array([0.0]), margin=1.0)
        assert loss.item() > 0.5


class TestUnbroadcast:
    @given(
        hnp.arrays(np.float32, hnp.array_shapes(min_dims=1, max_dims=3, max_side=4), elements=finite_floats)
    )
    @settings(max_examples=30, deadline=None)
    def test_broadcast_then_unbroadcast_sums(self, arr):
        target_shape = arr.shape
        broadcast = np.broadcast_to(arr, (2,) + target_shape)
        reduced = unbroadcast(np.array(broadcast), target_shape)
        assert reduced.shape == target_shape
        assert np.allclose(reduced, 2 * arr, rtol=1e-4, atol=1e-4)

    def test_unbroadcast_size_one_axis(self):
        grad = np.ones((3, 4))
        out = unbroadcast(grad, (3, 1))
        assert out.shape == (3, 1)
        assert np.all(out == 4)

    def test_unbroadcast_noop(self):
        grad = np.ones((2, 2))
        assert unbroadcast(grad, (2, 2)) is grad


class TestBinaryOpProperties:
    @given(
        hnp.arrays(np.float32, st.integers(1, 20), elements=finite_floats),
        hnp.arrays(np.float32, st.integers(1, 1), elements=finite_floats),
    )
    @settings(max_examples=30, deadline=None)
    def test_add_commutes(self, a, b):
        left = ops.add(Tensor(a), Tensor(b)).numpy()
        right = ops.add(Tensor(b), Tensor(a)).numpy()
        assert np.allclose(left, right, equal_nan=True)

    @given(hnp.arrays(np.float32, st.integers(1, 20), elements=finite_floats))
    @settings(max_examples=30, deadline=None)
    def test_relu_idempotent(self, a):
        once = ops.relu(Tensor(a)).numpy()
        twice = ops.relu(Tensor(once)).numpy()
        assert np.array_equal(once, twice)

    @given(hnp.arrays(np.float64, st.integers(1, 20), elements=st.floats(-20, 20)))
    @settings(max_examples=30, deadline=None)
    def test_sigmoid_in_unit_interval(self, a):
        out = ops.sigmoid(Tensor(a)).numpy()
        assert np.all(out >= 0.0) and np.all(out <= 1.0)


class TestRowStableMatmul:
    def test_row_independent_of_batch(self):
        rng = np.random.default_rng(7)
        w = Tensor(rng.normal(size=(64, 32)).astype(np.float32))
        x = rng.normal(size=(37, 64)).astype(np.float32)
        with ops.row_stable_matmul():
            full = ops.matmul(Tensor(x), w).numpy()
            rows = [ops.matmul(Tensor(x[i : i + 1]), w).numpy()[0] for i in range(len(x))]
        assert all(np.array_equal(full[i], rows[i]) for i in range(len(x)))

    def test_scope_toggles_flag(self):
        from repro.tensor import is_row_stable_matmul

        assert not is_row_stable_matmul()
        with ops.row_stable_matmul():
            assert is_row_stable_matmul()
            with ops.row_stable_matmul():  # nested scope
                assert is_row_stable_matmul()
            assert is_row_stable_matmul()
        assert not is_row_stable_matmul()

    def test_scopes_are_per_thread(self):
        """Scopes overlapping across threads (the serving worker pool
        enters one per in-flight batch) must neither re-enable BLAS inside
        another worker's live scope nor leak row-stable mode process-wide
        after out-of-order exits."""
        import threading

        from repro.tensor import is_row_stable_matmul

        entered_b = threading.Event()
        release_b = threading.Event()
        b_state = {}

        def hold_scope():
            with ops.row_stable_matmul():
                entered_b.set()
                release_b.wait(timeout=10.0)
                b_state["active_inside"] = is_row_stable_matmul()
            b_state["active_after"] = is_row_stable_matmul()

        with ops.row_stable_matmul():
            worker = threading.Thread(target=hold_scope)
            worker.start()
            assert entered_b.wait(timeout=10.0)
        # A exited (out of order w.r.t. B): A's thread is back on BLAS...
        assert not is_row_stable_matmul()
        release_b.set()
        worker.join(timeout=10.0)
        # ...while B stayed row-stable to the end of its own scope.
        assert b_state == {"active_inside": True, "active_after": False}
