"""Tensor container semantics: construction, grads, no_grad, backward."""

import numpy as np
import pytest

from repro.tensor import DEFAULT_DTYPE, Tensor, astensor, is_grad_enabled, no_grad, ops


class TestConstruction:
    def test_float_list_uses_default_dtype(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.dtype == DEFAULT_DTYPE

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_integer_tensor_allowed(self):
        t = Tensor(np.arange(5))
        assert np.issubdtype(t.dtype, np.integer)

    def test_integer_tensor_cannot_require_grad(self):
        with pytest.raises(ValueError):
            Tensor(np.arange(5), requires_grad=True)

    def test_shape_size_ndim_len(self):
        t = Tensor(np.zeros((3, 4)))
        assert t.shape == (3, 4)
        assert t.size == 12
        assert t.ndim == 2
        assert len(t) == 3

    def test_zeros_ones_helpers(self):
        assert np.all(Tensor.zeros(2, 3).numpy() == 0)
        assert np.all(Tensor.ones(2, 3).numpy() == 1)

    def test_astensor_passthrough(self):
        t = Tensor([1.0])
        assert astensor(t) is t

    def test_repr_mentions_grad(self):
        t = Tensor([1.0], requires_grad=True)
        assert "requires_grad=True" in repr(t)


class TestBackward:
    def test_scalar_backward_seeds_one(self):
        x = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        y = ops.sum(ops.mul(x, x))
        y.backward()
        assert np.allclose(x.grad, [4.0, 6.0])

    def test_backward_requires_grad(self):
        x = Tensor(np.array([1.0]))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_nonscalar_backward_needs_seed(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = ops.mul(x, x)
        with pytest.raises(RuntimeError):
            y.backward()

    def test_nonscalar_backward_with_seed(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = ops.mul(x, x)
        y.backward(np.array([1.0, 1.0]))
        assert np.allclose(x.grad, [2.0, 4.0])

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        for _ in range(3):
            ops.sum(x).backward()
        assert np.allclose(x.grad, [3.0])

    def test_zero_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        ops.sum(x).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = x*x + x*x: grad should be 4x
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = ops.mul(x, x)
        b = ops.mul(x, x)
        ops.sum(ops.add(a, b)).backward()
        assert np.allclose(x.grad, [12.0])

    def test_shared_subexpression(self):
        # z = (x+1); y = z*z → dy/dx = 2(x+1)
        x = Tensor(np.array([2.0]), requires_grad=True)
        z = ops.add(x, Tensor(np.array([1.0])))
        ops.sum(ops.mul(z, z)).backward()
        assert np.allclose(x.grad, [6.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = ops.add(y, Tensor(np.array([0.001])))
        ops.sum(y).backward()
        assert np.allclose(x.grad, [1.0])

    def test_interior_nodes_keep_no_grad(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        h = ops.mul(x, x)
        ops.sum(h).backward()
        assert h.grad is None  # only leaves accumulate
        assert x.grad is not None


class TestNoGrad:
    def test_no_grad_disables_recording(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        with no_grad():
            y = ops.mul(x, x)
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()

    def test_no_grad_is_reentrant(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_is_per_thread(self):
        """Overlapping scopes from concurrent threads (the serving worker
        pool runs inference under ``no_grad`` per batch) must not leak:
        an out-of-order exit must neither re-enable recording inside
        another thread's live scope nor leave grad disabled process-wide."""
        import threading

        entered_b = threading.Event()
        release_b = threading.Event()
        b_state = {}

        def hold_scope():
            with no_grad():
                entered_b.set()
                release_b.wait(timeout=10.0)
                b_state["disabled_inside"] = not is_grad_enabled()
            b_state["enabled_after"] = is_grad_enabled()

        with no_grad():
            worker = threading.Thread(target=hold_scope)
            worker.start()
            assert entered_b.wait(timeout=10.0)
        assert is_grad_enabled()  # A's exit restores A's thread...
        release_b.set()
        worker.join(timeout=10.0)
        # ...without touching B's scope, and nothing leaks afterwards.
        assert b_state == {"disabled_inside": True, "enabled_after": True}
        assert is_grad_enabled()

    def test_detach_breaks_graph(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = ops.mul(x, x).detach()
        assert not y.requires_grad


class TestOperatorSugar:
    def test_arithmetic_operators(self):
        a = Tensor(np.array([4.0]))
        b = Tensor(np.array([2.0]))
        assert np.allclose((a + b).numpy(), [6.0])
        assert np.allclose((a - b).numpy(), [2.0])
        assert np.allclose((a * b).numpy(), [8.0])
        assert np.allclose((a / b).numpy(), [2.0])
        assert np.allclose((-a).numpy(), [-4.0])
        assert np.allclose((a ** 2).numpy(), [16.0])

    def test_scalar_radd_rmul(self):
        a = Tensor(np.array([3.0]))
        assert np.allclose((1.0 + a).numpy(), [4.0])
        assert np.allclose((2.0 * a).numpy(), [6.0])
        assert np.allclose((1.0 - a).numpy(), [-2.0])
        assert np.allclose((6.0 / a).numpy(), [2.0])

    def test_matmul_operator(self):
        a = Tensor(np.eye(3, dtype=np.float32))
        b = Tensor(np.arange(9, dtype=np.float32).reshape(3, 3))
        assert np.allclose((a @ b).numpy(), b.numpy())

    def test_transpose_property(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert a.T.shape == (3, 2)

    def test_getitem(self):
        a = Tensor(np.arange(10, dtype=np.float32))
        assert np.allclose(a[2:5].numpy(), [2, 3, 4])

    def test_item_on_scalar(self):
        assert ops.sum(Tensor(np.array([1.5, 2.5]))).item() == pytest.approx(4.0)
