"""Parity and gradient suites for the fused scatter/gather kernels.

Every fused op is checked against its unfused reference composition:
float64 comparisons are tight (the reductions are exact enough), and the
reduceat-vs-add.at pairwise/sequential ordering difference is covered by
an explicit float32 tolerance case.
"""

import numpy as np
import pytest

from repro.memory import default_arena, set_arena_enabled
from repro.tensor import Tensor, gradcheck, kernels, ops, row_stable_matmul


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def t64(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


# ----------------------------------------------------------------------
# scatter plans
# ----------------------------------------------------------------------
class TestScatterPlan:
    def test_presorted_skips_sort(self):
        idx = np.array([0, 0, 1, 3, 3, 3], dtype=np.int64)
        plan = kernels.scatter_plan(idx)
        assert plan.order is None
        np.testing.assert_array_equal(plan.unique, [0, 1, 3])
        np.testing.assert_array_equal(plan.sizes, [2, 1, 3])
        np.testing.assert_array_equal(plan.starts, [0, 2, 3])

    def test_unsorted_stable_order(self):
        idx = np.array([2, 0, 2, 1, 0], dtype=np.int64)
        plan = kernels.scatter_plan(idx)
        assert plan.order is not None
        np.testing.assert_array_equal(idx[plan.order], np.sort(idx))
        np.testing.assert_array_equal(plan.unique, [0, 1, 2])
        np.testing.assert_array_equal(plan.sizes, [2, 1, 2])

    def test_empty(self):
        plan = kernels.scatter_plan(np.empty(0, dtype=np.int64))
        assert plan.length == 0 and plan.unique.size == 0

    def test_counts_includes_empty_segments(self):
        idx = np.array([0, 0, 3], dtype=np.int64)
        counts = kernels.scatter_plan(idx).counts(5)
        np.testing.assert_array_equal(counts, [2, 0, 0, 1, 0])

    def test_cache_hit_same_array(self):
        idx = np.array([1, 0, 1], dtype=np.int64)
        assert kernels.scatter_plan(idx) is kernels.scatter_plan(idx)

    def test_cache_distinguishes_equal_arrays(self):
        a = np.array([1, 0], dtype=np.int64)
        b = np.array([1, 0], dtype=np.int64)
        # equal contents, distinct identity: plans may differ as objects
        pa, pb = kernels.scatter_plan(a), kernels.scatter_plan(b)
        np.testing.assert_array_equal(pa.unique, pb.unique)


# ----------------------------------------------------------------------
# scatter_add_rows / scatter_add_1d vs np.add.at
# ----------------------------------------------------------------------
class TestScatterAddParity:
    @pytest.mark.parametrize("sort", [True, False])
    def test_matches_add_at_float64(self, rng, sort):
        idx = rng.integers(0, 13, size=200)
        if sort:
            idx = np.sort(idx)
        vals = rng.normal(size=(200, 5))
        ref = np.zeros((13, 5))
        np.add.at(ref, idx, vals)
        out = kernels.scatter_add_rows(vals, idx, 13)
        np.testing.assert_allclose(out, ref, rtol=1e-13, atol=1e-13)

    def test_float32_tolerance(self, rng):
        # reduceat sums pairwise, add.at left-to-right: bits may differ,
        # values agree to float32 round-off
        idx = rng.integers(0, 7, size=4096)
        vals = rng.normal(size=(4096, 3)).astype(np.float32)
        ref = np.zeros((7, 3), dtype=np.float32)
        np.add.at(ref, idx, vals)
        out = kernels.scatter_add_rows(vals, idx, 7)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-4)

    def test_non_contiguous_segment_ids(self, rng):
        idx = np.array([9, 2, 9, 2, 5], dtype=np.int64)
        vals = rng.normal(size=(5, 2))
        ref = np.zeros((12, 2))
        np.add.at(ref, idx, vals)
        np.testing.assert_allclose(kernels.scatter_add_rows(vals, idx, 12), ref)

    def test_empty_index(self):
        out = kernels.scatter_add_rows(np.empty((0, 4)), np.empty(0, np.int64), 3)
        np.testing.assert_array_equal(out, np.zeros((3, 4)))

    def test_out_is_overwritten(self, rng):
        idx = np.array([0, 0, 1], dtype=np.int64)
        vals = rng.normal(size=(3, 2))
        out = np.full((2, 2), 99.0)
        kernels.scatter_add_rows(vals, idx, 2, out=out)
        ref = np.zeros((2, 2))
        np.add.at(ref, idx, vals)
        np.testing.assert_allclose(out, ref)

    def test_accumulate_adds_onto_out(self, rng):
        idx = np.array([1, 1, 3], dtype=np.int64)
        vals = rng.normal(size=(3, 2))
        out = np.ones((4, 2))
        kernels.scatter_add_rows(vals, idx, 4, out=out, accumulate=True)
        ref = np.ones((4, 2))
        np.add.at(ref, idx, vals)
        np.testing.assert_allclose(out, ref)

    def test_1d_payload_uses_bincount(self, rng):
        idx = rng.integers(0, 6, size=50)
        vals = rng.normal(size=50)
        ref = np.zeros(6)
        np.add.at(ref, idx, vals)
        np.testing.assert_allclose(kernels.scatter_add_rows(vals, idx, 6), ref)

    def test_1d_out_of_bounds_raises(self):
        with pytest.raises(IndexError):
            kernels.scatter_add_1d(np.ones(3), np.array([0, 1, 5]), 4)

    def test_wrong_out_shape_raises(self):
        with pytest.raises(ValueError):
            kernels.scatter_add_rows(
                np.ones((3, 2)), np.zeros(3, np.int64), 4, out=np.zeros((4, 3))
            )

    def test_arena_disabled_same_result(self, rng):
        idx = rng.integers(0, 5, size=64)
        vals = rng.normal(size=(64, 3))
        pooled = kernels.scatter_add_rows(vals, idx, 5)
        prev = set_arena_enabled(False)
        try:
            plain = kernels.scatter_add_rows(vals, idx, 5)
        finally:
            set_arena_enabled(prev)
        np.testing.assert_array_equal(pooled, plain)


# ----------------------------------------------------------------------
# autograd ops on the kernels
# ----------------------------------------------------------------------
class TestSegmentOps:
    def test_segment_sum_forward_parity(self, rng):
        idx = rng.integers(0, 9, size=40)
        a = Tensor(rng.normal(size=(40, 4)))
        ref = np.zeros((9, 4))
        np.add.at(ref, idx, a.data)
        np.testing.assert_allclose(ops.segment_sum(a, idx, 9).data, ref)

    def test_segment_sum_gradcheck(self, rng):
        a = t64(rng, 12, 3)
        idx = rng.integers(0, 5, size=12)
        gradcheck(lambda a: ops.sum(ops.segment_sum(a, idx, 5)), [a])

    def test_segment_mean_forward_parity(self, rng):
        idx = rng.integers(0, 6, size=30)
        a = Tensor(rng.normal(size=(30, 4)))
        sums = np.zeros((6, 4))
        np.add.at(sums, idx, a.data)
        counts = np.maximum(np.bincount(idx, minlength=6), 1)
        np.testing.assert_allclose(
            ops.segment_mean(a, idx, 6).data, sums / counts[:, None]
        )

    def test_segment_mean_empty_segments_zero(self, rng):
        # regression: the folded divisor must not divide empty rows by 0
        idx = np.array([0, 0, 4], dtype=np.int64)
        a = Tensor(rng.normal(size=(3, 2)))
        out = ops.segment_mean(a, idx, 6).data
        assert np.all(np.isfinite(out))
        np.testing.assert_array_equal(out[[1, 2, 3, 5]], np.zeros((4, 2)))

    def test_segment_mean_gradcheck(self, rng):
        a = t64(rng, 10, 3)
        idx = np.array([0, 2, 2, 0, 4, 4, 4, 1, 1, 0])  # segment 3 empty
        gradcheck(lambda a: ops.sum(ops.segment_mean(a, idx, 5)), [a])

    def test_gather_rows_duplicate_indices_gradcheck(self, rng):
        a = t64(rng, 6, 3)
        idx = np.array([0, 5, 0, 0, 3, 5])
        gradcheck(lambda a: ops.sum(ops.mul(ops.gather_rows(a, idx), 2.0)), [a])

    def test_getitem_fancy_index_grad_parity(self, rng):
        idx = np.array([1, 3, 1, 0])
        a = t64(rng, 5, 2)
        out = ops.sum(ops.mul(a[idx], a[idx]))
        out.backward()
        ref = np.zeros((5, 2))
        np.add.at(ref, idx, 2.0 * a.data[idx])
        np.testing.assert_allclose(a.grad, ref, rtol=1e-12, atol=1e-12)

    def test_gather_rows_negative_index_fallback(self, rng):
        # negative fancy indices must keep numpy wrap semantics in the grad
        a = t64(rng, 4, 2)
        idx = np.array([-1, 0, -1])
        out = ops.sum(ops.gather_rows(a, idx))
        out.backward()
        ref = np.zeros((4, 2))
        np.add.at(ref, idx, np.ones((3, 2)))
        np.testing.assert_array_equal(a.grad, ref)


# ----------------------------------------------------------------------
# fused edge-message / vertex-update ops
# ----------------------------------------------------------------------
def unfused_edge_input(y, x, rows, cols, w, b):
    cat = ops.concat([y, ops.gather_rows(x, rows), ops.gather_rows(x, cols)], axis=1)
    out = ops.matmul(cat, w)
    return ops.add(out, b) if b is not None else out


def unfused_node_input(msg, rows, cols, x, w, b):
    n = x.shape[0]
    cat = ops.concat(
        [ops.segment_sum(msg, rows, n), ops.segment_sum(msg, cols, n), x], axis=1
    )
    out = ops.matmul(cat, w)
    return ops.add(out, b) if b is not None else out


class TestGatherConcatMatmul:
    def edge_case(self, rng, m=25, n=7, e=4, f=3, h=6):
        y = t64(rng, m, e)
        x = t64(rng, n, f)
        rows = rng.integers(0, n, size=m)
        cols = rng.integers(0, n, size=m)
        w = t64(rng, e + 2 * f, h)
        b = t64(rng, h)
        return y, x, rows, cols, w, b

    def test_forward_parity(self, rng):
        y, x, rows, cols, w, b = self.edge_case(rng)
        fused = ops.gather_concat_matmul(y, x, rows, cols, w, b)
        ref = unfused_edge_input(y, x, rows, cols, w, b)
        np.testing.assert_allclose(fused.data, ref.data, rtol=1e-12, atol=1e-12)

    def test_forward_parity_no_bias(self, rng):
        y, x, rows, cols, w, _ = self.edge_case(rng)
        fused = ops.gather_concat_matmul(y, x, rows, cols, w)
        ref = unfused_edge_input(y, x, rows, cols, w, None)
        np.testing.assert_allclose(fused.data, ref.data, rtol=1e-12, atol=1e-12)

    def test_gradcheck(self, rng):
        y, x, rows, cols, w, b = self.edge_case(rng, m=10, n=4, e=2, f=2, h=3)
        gradcheck(
            lambda y, x, w, b: ops.sum(
                ops.relu(ops.gather_concat_matmul(y, x, rows, cols, w, b))
            ),
            [y, x, w, b],
        )

    def test_grads_match_unfused(self, rng):
        y, x, rows, cols, w, b = self.edge_case(rng)
        ops.sum(ops.gather_concat_matmul(y, x, rows, cols, w, b)).backward()
        fused_grads = [p.grad.copy() for p in (y, x, w, b)]
        for p in (y, x, w, b):
            p.grad = None
        ops.sum(unfused_edge_input(y, x, rows, cols, w, b)).backward()
        for g, p in zip(fused_grads, (y, x, w, b)):
            np.testing.assert_allclose(g, p.grad, rtol=1e-11, atol=1e-11)

    def test_weight_shape_validated(self, rng):
        y, x, rows, cols, _, b = self.edge_case(rng)
        bad_w = t64(rng, 5, 6)
        with pytest.raises(ValueError):
            ops.gather_concat_matmul(y, x, rows, cols, bad_w, b)

    def test_row_stable_mode_deterministic(self, rng):
        y, x, rows, cols, w, b = self.edge_case(rng)
        with row_stable_matmul():
            a1 = ops.gather_concat_matmul(y, x, rows, cols, w, b).data
            a2 = ops.gather_concat_matmul(y, x, rows, cols, w, b).data
        np.testing.assert_array_equal(a1, a2)


class TestScatterMlpInput:
    def node_case(self, rng, m=25, n=7, f=3, h=6, out_h=5):
        msg = t64(rng, m, h)
        x = t64(rng, n, f)
        rows = rng.integers(0, n, size=m)
        cols = rng.integers(0, n, size=m)
        w = t64(rng, 2 * h + f, out_h)
        b = t64(rng, out_h)
        return msg, rows, cols, x, w, b

    def test_forward_parity(self, rng):
        msg, rows, cols, x, w, b = self.node_case(rng)
        fused = ops.scatter_mlp_input(msg, rows, cols, x, w, b)
        ref = unfused_node_input(msg, rows, cols, x, w, b)
        np.testing.assert_allclose(fused.data, ref.data, rtol=1e-12, atol=1e-12)

    def test_gradcheck(self, rng):
        msg, rows, cols, x, w, b = self.node_case(rng, m=9, n=4, f=2, h=3, out_h=3)
        gradcheck(
            lambda msg, x, w, b: ops.sum(
                ops.relu(ops.scatter_mlp_input(msg, rows, cols, x, w, b))
            ),
            [msg, x, w, b],
        )

    def test_grads_match_unfused(self, rng):
        msg, rows, cols, x, w, b = self.node_case(rng)
        ops.sum(ops.scatter_mlp_input(msg, rows, cols, x, w, b)).backward()
        fused_grads = [p.grad.copy() for p in (msg, x, w, b)]
        for p in (msg, x, w, b):
            p.grad = None
        ops.sum(unfused_node_input(msg, rows, cols, x, w, b)).backward()
        for g, p in zip(fused_grads, (msg, x, w, b)):
            np.testing.assert_allclose(g, p.grad, rtol=1e-11, atol=1e-11)

    def test_weight_shape_validated(self, rng):
        msg, rows, cols, x, _, b = self.node_case(rng)
        bad_w = t64(rng, 4, 5)
        with pytest.raises(ValueError):
            ops.scatter_mlp_input(msg, rows, cols, x, bad_w, b)


# ----------------------------------------------------------------------
# satellite bugfixes
# ----------------------------------------------------------------------
class TestBugfixes:
    def test_dropout_validates_p_even_when_not_training(self, rng):
        a = Tensor(rng.normal(size=(3, 3)))
        with pytest.raises(ValueError):
            ops.dropout(a, 1.5, rng, training=False)
        with pytest.raises(ValueError):
            ops.dropout(a, -0.1, rng, training=True)

    def test_dropout_eval_passthrough(self, rng):
        a = Tensor(rng.normal(size=(3, 3)))
        assert ops.dropout(a, 0.5, rng, training=False) is a

    def test_bce_with_logits_matches_naive(self, rng):
        x = Tensor(rng.normal(size=20) * 3.0)
        t = (rng.random(20) > 0.5).astype(np.float64)
        loss = ops.bce_with_logits(x, t).data
        p = 1.0 / (1.0 + np.exp(-x.data))
        naive = -np.mean(t * np.log(p) + (1 - t) * np.log(1 - p))
        np.testing.assert_allclose(loss, naive, rtol=1e-10)

    def test_bce_with_logits_extreme_logits_finite(self):
        x = Tensor(np.array([800.0, -800.0]))
        t = np.array([0.0, 1.0])
        assert np.isfinite(ops.bce_with_logits(x, t).data)


# ----------------------------------------------------------------------
# backward pooling: results identical with the arena on and off
# ----------------------------------------------------------------------
class TestArenaParity:
    def test_training_graph_grads_unchanged(self, rng):
        def run():
            local = np.random.default_rng(3)
            y = Tensor(local.normal(size=(30, 4)), requires_grad=True)
            x = Tensor(local.normal(size=(8, 3)), requires_grad=True)
            w1 = Tensor(local.normal(size=(10, 6)), requires_grad=True)
            w2 = Tensor(local.normal(size=(15, 5)), requires_grad=True)
            rows = local.integers(0, 8, size=30)
            cols = local.integers(0, 8, size=30)
            msg = ops.relu(ops.gather_concat_matmul(y, x, rows, cols, w1))
            out = ops.scatter_mlp_input(msg, rows, cols, x, w2)
            ops.sum(ops.mul(out, out)).backward()
            return [p.grad for p in (y, x, w1, w2)]

        pooled = run()
        prev = set_arena_enabled(False)
        try:
            plain = run()
        finally:
            set_arena_enabled(prev)
        for a, b in zip(pooled, plain):
            np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-12)
        # leaf .grad arrays must not alias pool-owned memory: thrash the
        # pool with same-shaped buffers and verify the grads are untouched
        snapshots = [g.copy() for g in pooled]
        arena = default_arena()
        for g in pooled:
            scratch = arena.take(g.shape, g.dtype)
            scratch.fill(1234.5)
            arena.give(scratch)
        for g, snap in zip(pooled, snapshots):
            np.testing.assert_array_equal(g, snap)
