"""Property-based fuzzing of the autograd engine.

Builds random expression DAGs from the op library and checks the analytic
gradients against central finite differences — the broadest net for
backward-closure bugs (wrong broadcasting reductions, stale buffers,
double-counted diamond paths).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, gradcheck, ops

# unary ops safe on any real input
_UNARY = [
    lambda t: ops.tanh(t),
    lambda t: ops.sigmoid(t),
    lambda t: ops.mul(t, t),
    lambda t: ops.neg(t),
    lambda t: ops.leaky_relu(t, 0.2),
    lambda t: ops.softmax(t, axis=-1),
]

# binary ops on same-shape operands
_BINARY = [
    ops.add,
    ops.sub,
    ops.mul,
    lambda a, b: ops.concat([a, b], axis=0),
    lambda a, b: ops.add(a, ops.tanh(b)),
]


@st.composite
def expression_programs(draw):
    seed = draw(st.integers(0, 10_000))
    n_steps = draw(st.integers(1, 6))
    steps = [
        (draw(st.integers(0, 1)),  # 0 = unary, 1 = binary
         draw(st.integers(0, max(len(_UNARY), len(_BINARY)) - 1)))
        for _ in range(n_steps)
    ]
    return seed, steps


class TestAutogradFuzz:
    @given(expression_programs())
    @settings(max_examples=60, deadline=None)
    def test_random_dag_gradients(self, program):
        seed, steps = program
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(scale=0.7, size=(3, 4)), requires_grad=True)
        y = Tensor(rng.normal(scale=0.7, size=(3, 4)), requires_grad=True)

        def build(x, y):
            pool = [x, y]
            for kind, which in steps:
                if kind == 0:
                    op = _UNARY[which % len(_UNARY)]
                    pool.append(op(pool[-1]))
                else:
                    op = _BINARY[which % len(_BINARY)]
                    a = pool[-1]
                    b = pool[-2] if pool[-2].shape == a.shape else a
                    pool.append(op(a, b))
            return ops.mean(ops.mul(pool[-1], pool[-1]))

        gradcheck(build, [x, y], atol=2e-5, rtol=1e-3)

    @given(st.integers(0, 10_000), st.integers(2, 6), st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_graph_primitive_chain(self, seed, n, f):
        """gather → segment_sum → gather chains (the IGNN skeleton) on
        random index patterns, including repeats and empty segments."""
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 3 * n))
        idx = rng.integers(0, n, size=m)
        seg = rng.integers(0, n, size=m)
        x = Tensor(rng.normal(size=(n, f)), requires_grad=True)

        def build(x):
            msgs = ops.gather_rows(x, idx)
            agg = ops.segment_sum(msgs, seg, n)
            back = ops.gather_rows(agg, idx)
            return ops.mean(ops.mul(back, back))

        gradcheck(build, [x], atol=2e-5, rtol=1e-3)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_broadcast_matrix_vector_mix(self, seed):
        rng = np.random.default_rng(seed)
        A = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        v = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 1)), requires_grad=True)

        def build(A, v, b):
            h = ops.add(ops.mul(A, v), b)     # broadcast both ways
            return ops.mean(ops.mul(ops.tanh(h), h))

        gradcheck(build, [A, v, b], atol=2e-5, rtol=1e-3)
