"""Matrix-based bulk ShaDow sampler (Figure 2) invariants and
equivalence with the sequential reference."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import chain_graph, random_graph
from repro.sampling import BulkShadowSampler, ShadowSampler, sample_rows_csr


@st.composite
def sampler_cases(draw):
    seed = draw(st.integers(0, 5000))
    rng = np.random.default_rng(seed)
    n = draw(st.integers(10, 80))
    g = random_graph(n, 4 * n, rng=rng)
    b = draw(st.integers(1, min(8, n)))
    batch = rng.choice(n, size=b, replace=False)
    depth = draw(st.integers(1, 3))
    fanout = draw(st.integers(1, 5))
    return g, batch, depth, fanout, seed


class TestSampleRowsCSR:
    def test_samples_at_most_fanout_per_row(self):
        rng = np.random.default_rng(0)
        P = sp.random(20, 30, density=0.4, format="csr", random_state=1)
        rows, cols = sample_rows_csr(P, 3, rng)
        counts = np.bincount(rows, minlength=20)
        assert counts.max() <= 3

    def test_takes_all_when_row_small(self):
        P = sp.csr_matrix(np.array([[1, 1, 0], [0, 0, 1]], dtype=float))
        rows, cols = sample_rows_csr(P, 5, np.random.default_rng(0))
        assert np.bincount(rows, minlength=2).tolist() == [2, 1]

    def test_sampled_entries_are_nonzeros(self):
        rng = np.random.default_rng(0)
        P = sp.random(15, 15, density=0.3, format="csr", random_state=2)
        rows, cols = sample_rows_csr(P, 2, rng)
        dense = P.toarray()
        for r, c in zip(rows, cols):
            assert dense[r, c] != 0

    def test_distinct_within_row(self):
        P = sp.csr_matrix(np.ones((4, 10)))
        rows, cols = sample_rows_csr(P, 6, np.random.default_rng(0))
        for r in range(4):
            picked = cols[rows == r]
            assert len(set(picked.tolist())) == len(picked)

    def test_uniformity(self):
        """Sampling one of three columns: each should appear ~1/3."""
        P = sp.csr_matrix(np.ones((1, 3)))
        rng = np.random.default_rng(0)
        counts = np.zeros(3)
        for _ in range(3000):
            _, cols = sample_rows_csr(P, 1, rng)
            counts[cols[0]] += 1
        assert np.all(np.abs(counts / 3000 - 1 / 3) < 0.05)

    def test_empty_matrix(self):
        P = sp.csr_matrix((3, 3))
        rows, cols = sample_rows_csr(P, 2, np.random.default_rng(0))
        assert rows.size == 0 and cols.size == 0

    def test_lexsort_path_matches_composite_path(self, monkeypatch):
        """Above the row-count threshold the segmented lexsort takes over;
        both paths draw the same keys, so where the composite key is
        exact the selections must be bit-identical."""
        import repro.sampling.bulk as bulk_mod

        P = sp.random(50, 40, density=0.3, format="csr", random_state=5)
        a = sample_rows_csr(P, 3, np.random.default_rng(11))
        monkeypatch.setattr(bulk_mod, "_COMPOSITE_KEY_MAX_ROWS", 0)
        b = sample_rows_csr(P, 3, np.random.default_rng(11))
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_uniform_selection_for_large_row_indices(self, monkeypatch):
        """Regression for the composite-key precision bug: rows with
        large indices must still select neighbours uniformly (the old
        ``row + U[0,1)`` key loses fractional precision as row indices
        grow, biasing ties toward CSR order)."""
        import repro.sampling.bulk as bulk_mod

        monkeypatch.setattr(bulk_mod, "_COMPOSITE_KEY_MAX_ROWS", 0)
        n_rows, last = 4096, 4095
        # only the last (largest-index) row is populated, with 3 columns
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        indptr[last + 1 :] = 3
        P = sp.csr_matrix(
            (np.ones(3), np.array([0, 1, 2]), indptr), shape=(n_rows, 3)
        )
        rng = np.random.default_rng(0)
        counts = np.zeros(3)
        for _ in range(3000):
            _, cols = sample_rows_csr(P, 1, rng)
            counts[cols[0]] += 1
        assert np.all(np.abs(counts / 3000 - 1 / 3) < 0.05)

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            sample_rows_csr(sp.csr_matrix((2, 2)), 0, np.random.default_rng(0))


class TestBulkInvariants:
    @given(sampler_cases())
    @settings(max_examples=40, deadline=None)
    def test_one_component_per_batch_vertex(self, case):
        g, batch, depth, fanout, seed = case
        out = BulkShadowSampler(depth, fanout).sample(g, batch, np.random.default_rng(seed))
        assert out.num_components == len(batch)

    @given(sampler_cases())
    @settings(max_examples=40, deadline=None)
    def test_roots_resolve_to_batch_vertices(self, case):
        g, batch, depth, fanout, seed = case
        out = BulkShadowSampler(depth, fanout).sample(g, batch, np.random.default_rng(seed))
        assert np.array_equal(out.node_parent[out.roots], batch)

    @given(sampler_cases())
    @settings(max_examples=40, deadline=None)
    def test_edges_never_cross_components(self, case):
        g, batch, depth, fanout, seed = case
        out = BulkShadowSampler(depth, fanout).sample(g, batch, np.random.default_rng(seed))
        ci = out.component_ids
        assert np.all(ci[out.graph.rows] == ci[out.graph.cols])

    @given(sampler_cases())
    @settings(max_examples=40, deadline=None)
    def test_components_are_induced_subgraphs(self, case):
        """Every parent edge between two selected vertices of a component
        must appear exactly once (induced-subgraph completeness)."""
        g, batch, depth, fanout, seed = case
        out = BulkShadowSampler(depth, fanout).sample(g, batch, np.random.default_rng(seed))
        got = set(zip(out.graph.rows.tolist(), out.graph.cols.tolist()))
        assert len(got) == out.graph.num_edges  # no duplicates
        for ci in range(len(batch)):
            members = out.node_parent[out.component_ids == ci]
            member_set = set(members.tolist())
            compact = {int(v): i for i, v in enumerate(np.flatnonzero(out.component_ids == ci))}
            # count parent edges inside this component's vertex set
            inside = sum(
                1
                for u, v in zip(g.rows.tolist(), g.cols.tolist())
                if u in member_set and v in member_set
            )
            block_edges = int(np.sum(out.component_ids[out.graph.rows] == ci))
            assert block_edges == inside

    @given(sampler_cases())
    @settings(max_examples=40, deadline=None)
    def test_features_follow_parents(self, case):
        g, batch, depth, fanout, seed = case
        out = BulkShadowSampler(depth, fanout).sample(g, batch, np.random.default_rng(seed))
        assert np.array_equal(out.graph.x, g.x[out.node_parent])
        assert np.array_equal(out.graph.y, g.y[out.edge_parent])
        assert np.array_equal(out.graph.edge_labels, g.edge_labels[out.edge_parent])

    @given(sampler_cases())
    @settings(max_examples=30, deadline=None)
    def test_matches_sequential_size_distribution(self, case):
        """Bulk and sequential samplers draw from the same process: with a
        generous fanout (≥ max degree) both must return the *exact* full
        d-hop neighbourhood, deterministically."""
        g, batch, depth, _, seed = case
        big_fanout = int(g.degrees().max()) + 1
        seq = ShadowSampler(depth, big_fanout).sample(g, batch, np.random.default_rng(seed))
        blk = BulkShadowSampler(depth, big_fanout).sample(g, batch, np.random.default_rng(seed))
        assert np.array_equal(seq.node_parent, blk.node_parent)
        assert np.array_equal(seq.component_ids, blk.component_ids)
        assert seq.graph.num_edges == blk.graph.num_edges


class TestBulkMultiBatch:
    def test_k_batches_independent_results(self):
        g = random_graph(100, 500, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        batches = [rng.choice(100, size=10, replace=False) for _ in range(4)]
        outs = BulkShadowSampler(2, 3).sample_bulk(g, batches, np.random.default_rng(2))
        assert len(outs) == 4
        for out, batch in zip(outs, batches):
            assert out.num_components == 10
            assert np.array_equal(out.node_parent[out.roots], batch)
            ci = out.component_ids
            assert np.all(ci[out.graph.rows] == ci[out.graph.cols])

    def test_unequal_batch_sizes(self):
        g = random_graph(60, 300, rng=np.random.default_rng(0))
        batches = [np.array([0, 1, 2]), np.array([5]), np.array([7, 9])]
        outs = BulkShadowSampler(2, 2).sample_bulk(g, batches, np.random.default_rng(3))
        assert [o.num_components for o in outs] == [3, 1, 2]

    def test_empty_batch_rejected(self):
        g = chain_graph(5)
        with pytest.raises(ValueError):
            BulkShadowSampler(2, 2).sample_bulk(g, [np.array([], dtype=np.int64)], np.random.default_rng(0))

    def test_fallback_searchsorted_path_matches_dense(self):
        """Force the non-dense extraction path and compare."""
        g = random_graph(80, 400, rng=np.random.default_rng(4))
        batch = np.arange(10)
        dense = BulkShadowSampler(2, 3)
        sparse_path = BulkShadowSampler(2, 3)
        sparse_path.DENSE_LOOKUP_MAX = 0  # force fallback
        a = dense.sample(g, batch, np.random.default_rng(9))
        b = sparse_path.sample(g, batch, np.random.default_rng(9))
        assert np.array_equal(a.node_parent, b.node_parent)
        assert np.array_equal(a.component_ids, b.component_ids)
        assert a.graph.num_edges == b.graph.num_edges
        # identical edge sets (order may differ between the two paths)
        ea = set(zip(a.graph.rows.tolist(), a.graph.cols.tolist()))
        eb = set(zip(b.graph.rows.tolist(), b.graph.cols.tolist()))
        assert ea == eb
