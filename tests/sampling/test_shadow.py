"""Sequential ShaDow sampler (Algorithm 2) invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import chain_graph, random_graph, star_graph
from repro.sampling import ShadowSampler


@st.composite
def sampler_cases(draw):
    seed = draw(st.integers(0, 5000))
    rng = np.random.default_rng(seed)
    n = draw(st.integers(10, 80))
    g = random_graph(n, 4 * n, rng=rng)
    b = draw(st.integers(1, min(8, n)))
    batch = rng.choice(n, size=b, replace=False)
    depth = draw(st.integers(1, 3))
    fanout = draw(st.integers(1, 5))
    return g, batch, depth, fanout, seed


class TestShadowInvariants:
    @given(sampler_cases())
    @settings(max_examples=40, deadline=None)
    def test_one_component_per_batch_vertex(self, case):
        g, batch, depth, fanout, seed = case
        out = ShadowSampler(depth, fanout).sample(g, batch, np.random.default_rng(seed))
        assert out.num_components == len(batch)

    @given(sampler_cases())
    @settings(max_examples=40, deadline=None)
    def test_roots_resolve_to_batch_vertices(self, case):
        g, batch, depth, fanout, seed = case
        out = ShadowSampler(depth, fanout).sample(g, batch, np.random.default_rng(seed))
        assert np.array_equal(out.node_parent[out.roots], batch)

    @given(sampler_cases())
    @settings(max_examples=40, deadline=None)
    def test_edges_never_cross_components(self, case):
        g, batch, depth, fanout, seed = case
        out = ShadowSampler(depth, fanout).sample(g, batch, np.random.default_rng(seed))
        ci = out.component_ids
        assert np.all(ci[out.graph.rows] == ci[out.graph.cols])

    @given(sampler_cases())
    @settings(max_examples=40, deadline=None)
    def test_sampled_edges_exist_in_parent(self, case):
        g, batch, depth, fanout, seed = case
        out = ShadowSampler(depth, fanout).sample(g, batch, np.random.default_rng(seed))
        assert np.array_equal(out.node_parent[out.graph.rows], g.rows[out.edge_parent])
        assert np.array_equal(out.node_parent[out.graph.cols], g.cols[out.edge_parent])
        assert np.array_equal(out.graph.edge_labels, g.edge_labels[out.edge_parent])

    @given(sampler_cases())
    @settings(max_examples=40, deadline=None)
    def test_walk_size_bounded_by_fanout_geometric_series(self, case):
        g, batch, depth, fanout, seed = case
        out = ShadowSampler(depth, fanout).sample(g, batch, np.random.default_rng(seed))
        bound = sum(fanout**i for i in range(depth + 1))
        counts = np.bincount(out.component_ids, minlength=len(batch))
        assert np.all(counts <= bound)

    @given(sampler_cases())
    @settings(max_examples=40, deadline=None)
    def test_subgraph_vertices_within_depth_hops(self, case):
        """Every sampled vertex is within `depth` hops of its root."""
        import networkx as nx

        g, batch, depth, fanout, seed = case
        out = ShadowSampler(depth, fanout).sample(g, batch, np.random.default_rng(seed))
        G = nx.Graph()
        G.add_nodes_from(range(g.num_nodes))
        G.add_edges_from(zip(g.rows.tolist(), g.cols.tolist()))
        for ci, root in enumerate(batch):
            members = out.node_parent[out.component_ids == ci]
            lengths = nx.single_source_shortest_path_length(G, int(root), cutoff=depth)
            for v in members:
                assert int(v) in lengths


class TestShadowSpecialCases:
    def test_isolated_vertex_gives_singleton_component(self):
        g = star_graph(5)
        # add an isolated vertex by using a batch vertex with no neighbours:
        # vertex ids 1..5 are leaves with degree 1; use leaf and hub
        out = ShadowSampler(2, 3).sample(g, np.array([0]), np.random.default_rng(0))
        assert out.num_components == 1

    def test_chain_walk_reaches_depth(self):
        g = chain_graph(10)
        out = ShadowSampler(3, 2).sample(g, np.array([0]), np.random.default_rng(0))
        # from vertex 0 the only walk is 0-1-2-3
        assert set(out.node_parent.tolist()) == {0, 1, 2, 3}

    def test_duplicate_root_vertices_make_separate_components(self):
        g = chain_graph(6)
        out = ShadowSampler(1, 2).sample(g, np.array([2, 2]), np.random.default_rng(0))
        assert out.num_components == 2

    def test_fanout_one_is_a_path_walk(self):
        g = star_graph(20)
        out = ShadowSampler(1, 1).sample(g, np.array([0]), np.random.default_rng(0))
        # hub plus exactly one sampled leaf
        assert out.graph.num_nodes == 2

    def test_empty_batch_rejected(self):
        g = chain_graph(5)
        with pytest.raises(ValueError):
            ShadowSampler(2, 2).sample(g, np.array([], dtype=np.int64), np.random.default_rng(0))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            ShadowSampler(0, 2)
        with pytest.raises(ValueError):
            ShadowSampler(2, 0)

    def test_deterministic_given_rng(self):
        g = random_graph(50, 200, rng=np.random.default_rng(1))
        batch = np.array([0, 5, 9])
        a = ShadowSampler(2, 3).sample(g, batch, np.random.default_rng(7))
        b = ShadowSampler(2, 3).sample(g, batch, np.random.default_rng(7))
        assert np.array_equal(a.node_parent, b.node_parent)
        assert np.array_equal(a.edge_parent, b.edge_parent)
