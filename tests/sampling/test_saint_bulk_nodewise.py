"""GraphSAINT random-walk sampler and bulk node-wise sampler."""

import numpy as np
import pytest

from repro.graph import chain_graph, random_graph, star_graph
from repro.sampling import BulkNodeWiseSampler, NodeWiseSampler, SaintRWSampler


@pytest.fixture
def graph():
    return random_graph(150, 700, rng=np.random.default_rng(0))


class TestSaint:
    def test_batch_contained(self, graph):
        batch = np.array([3, 30, 90])
        out = SaintRWSampler(walk_length=3).sample(graph, batch, np.random.default_rng(0))
        assert set(batch.tolist()) <= set(out.node_parent.tolist())
        assert np.array_equal(out.node_parent[out.roots], batch)

    def test_single_subgraph_not_components(self, graph):
        out = SaintRWSampler(2).sample(graph, np.array([0, 1]), np.random.default_rng(0))
        assert out.component_ids is None

    def test_walks_respect_connectivity(self):
        g = chain_graph(40)
        out = SaintRWSampler(walk_length=3).sample(g, np.array([20]), np.random.default_rng(0))
        # a 3-step walk from vertex 20 can reach at most 17..23
        assert set(out.node_parent.tolist()) <= set(range(17, 24))

    def test_more_walks_touch_more(self):
        g = star_graph(100)
        few = SaintRWSampler(1, num_walks_per_root=1).sample(
            g, np.array([0]), np.random.default_rng(0)
        )
        many = SaintRWSampler(1, num_walks_per_root=20).sample(
            g, np.array([0]), np.random.default_rng(0)
        )
        assert many.graph.num_nodes >= few.graph.num_nodes

    def test_induced_subgraph_complete(self, graph):
        out = SaintRWSampler(2).sample(graph, np.array([5, 6]), np.random.default_rng(1))
        member = set(out.node_parent.tolist())
        expected = sum(
            1
            for u, v in zip(graph.rows.tolist(), graph.cols.tolist())
            if u in member and v in member
        )
        assert out.graph.num_edges == expected

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            SaintRWSampler(0)
        with pytest.raises(ValueError):
            SaintRWSampler(2).sample(graph, np.array([], dtype=np.int64), np.random.default_rng(0))

    def test_labels_follow(self, graph):
        out = SaintRWSampler(2).sample(graph, np.array([0]), np.random.default_rng(0))
        assert np.array_equal(out.graph.edge_labels, graph.edge_labels[out.edge_parent])


class TestBulkNodeWise:
    def test_structure_matches_sequential_nodewise(self, graph):
        """With fanout ≥ max degree both samplers return the exact layered
        neighbourhood, deterministically."""
        big = int(graph.degrees().max()) + 1
        batch = np.array([2, 7, 11])
        seq = NodeWiseSampler([big, big]).sample(graph, batch, np.random.default_rng(0))
        blk = BulkNodeWiseSampler([big, big]).sample(graph, batch, np.random.default_rng(0))
        assert np.array_equal(seq.node_parent, blk.node_parent)
        assert seq.graph.num_edges == blk.graph.num_edges

    def test_batch_contained_and_roots(self, graph):
        batch = np.array([1, 50, 100])
        out = BulkNodeWiseSampler([4, 4]).sample(graph, batch, np.random.default_rng(0))
        assert np.array_equal(out.node_parent[out.roots], batch)

    def test_multi_batch_bulk(self, graph):
        rng = np.random.default_rng(1)
        batches = [rng.choice(graph.num_nodes, size=10, replace=False) for _ in range(4)]
        outs = BulkNodeWiseSampler([3]).sample_bulk(graph, batches, np.random.default_rng(2))
        assert len(outs) == 4
        for out, b in zip(outs, batches):
            assert np.array_equal(out.node_parent[out.roots], np.asarray(b))
            # induced-subgraph completeness per batch
            member = set(out.node_parent.tolist())
            expected = sum(
                1
                for u, v in zip(graph.rows.tolist(), graph.cols.tolist())
                if u in member and v in member
            )
            assert out.graph.num_edges == expected

    def test_fanout_bounds_growth(self):
        g = star_graph(200)
        out = BulkNodeWiseSampler([5]).sample(g, np.array([0]), np.random.default_rng(0))
        assert out.graph.num_nodes <= 6

    def test_labels_follow(self, graph):
        out = BulkNodeWiseSampler([3]).sample(graph, np.array([0, 1]), np.random.default_rng(0))
        assert np.array_equal(out.graph.edge_labels, graph.edge_labels[out.edge_parent])

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            BulkNodeWiseSampler([])
        with pytest.raises(ValueError):
            BulkNodeWiseSampler([2]).sample_bulk(graph, [np.array([], dtype=np.int64)], np.random.default_rng(0))
