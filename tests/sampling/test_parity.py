"""Sequential/bulk ShaDow parity on degenerate graph structure.

With a fanout of at least the maximum degree both samplers are
deterministic (every neighbourhood is taken whole), so their outputs
must agree *exactly* — including the cases that historically diverged:
degree-0 batch vertices, self-loops, and duplicate parent edges (the
bulk SpGEMM extraction path used to emit only the first of several
duplicate edges between the same vertex pair).
"""

import numpy as np
import pytest

from repro.graph import EventGraph
from repro.sampling import BulkShadowSampler, ShadowSampler


def _graph(edge_index, n, seed=0):
    rng = np.random.default_rng(seed)
    m = edge_index.shape[1]
    return EventGraph(
        edge_index=edge_index,
        x=rng.random((n, 3)).astype(np.float32),
        y=rng.random((m, 2)).astype(np.float32),
        edge_labels=rng.integers(0, 2, m).astype(np.int8),
    )


def _assert_parity(graph, batch, depth=2, seed=7, forced_sparse=False):
    fanout = int(graph.degrees().max(initial=0)) + 1
    seq = ShadowSampler(depth, fanout).sample(
        graph, batch, np.random.default_rng(seed)
    )
    bulk = BulkShadowSampler(depth, fanout)
    if forced_sparse:
        bulk.DENSE_LOOKUP_MAX = 0  # force the SpGEMM + searchsorted path
    blk = bulk.sample(graph, batch, np.random.default_rng(seed))
    assert np.array_equal(seq.node_parent, blk.node_parent)
    assert np.array_equal(seq.component_ids, blk.component_ids)
    assert np.array_equal(seq.roots, blk.roots)
    assert seq.graph.num_edges == blk.graph.num_edges
    assert sorted(seq.edge_parent.tolist()) == sorted(blk.edge_parent.tolist())
    return seq, blk


class TestIsolatedRoots:
    def test_isolated_root_is_single_vertex_component(self):
        g = _graph(np.array([[0, 1, 2], [1, 2, 3]]), 6)
        seq, blk = _assert_parity(g, np.array([4, 0, 5]))
        for out in (seq, blk):
            # roots 4 and 5 have degree 0: one-vertex, zero-edge blocks
            for comp, root in ((0, 4), (2, 5)):
                members = out.node_parent[out.component_ids == comp]
                assert members.tolist() == [root]
                assert not np.any(out.component_ids[out.graph.rows] == comp)

    def test_batch_entirely_isolated(self):
        g = _graph(np.array([[0, 1], [1, 2]]), 6)
        seq, blk = _assert_parity(g, np.array([4, 5, 3]))
        assert seq.graph.num_edges == 0
        assert np.array_equal(blk.node_parent[blk.roots], np.array([4, 5, 3]))

    def test_edgeless_graph(self):
        g = _graph(np.zeros((2, 0), dtype=np.int64), 4)
        seq, blk = _assert_parity(g, np.array([1, 3]))
        assert blk.graph.num_edges == 0
        assert blk.num_components == 2


class TestDegenerateEdges:
    @pytest.mark.parametrize("forced_sparse", [False, True])
    def test_duplicate_parent_edges_kept_once_each(self, forced_sparse):
        """Every *instance* of a duplicated parent edge appears in the
        sampled block, matching the sequential sampler."""
        ei = np.array([[0, 0, 0, 1], [1, 1, 1, 2]])  # edge 0→1 three times
        g = _graph(ei, 4)
        seq, blk = _assert_parity(
            g, np.array([0, 3]), forced_sparse=forced_sparse
        )
        comp0 = blk.component_ids[blk.graph.rows] == 0
        assert int(comp0.sum()) >= 3

    @pytest.mark.parametrize("forced_sparse", [False, True])
    def test_self_loops(self, forced_sparse):
        ei = np.array([[0, 1, 2], [0, 2, 2]])  # self-loops at 0 and 2
        g = _graph(ei, 4)
        _assert_parity(g, np.array([0, 2, 3]), forced_sparse=forced_sparse)


class TestRandomizedParity:
    def test_sweep(self):
        """Randomized graphs with injected duplicates, self-loops, and
        isolated vertices: full structural parity under a shared seed."""
        rng0 = np.random.default_rng(99)
        for _ in range(40):
            n = int(rng0.integers(5, 40))
            m = int(rng0.integers(0, 4 * n))
            ei = rng0.integers(0, n, size=(2, m))
            if m >= 3:
                ei[:, 0] = ei[:, 1]  # duplicate
                ei[:, 2] = [ei[0, 2], ei[0, 2]]  # self-loop
            g = _graph(ei, n, seed=int(rng0.integers(0, 1000)))
            b = int(rng0.integers(1, min(6, n) + 1))
            batch = rng0.choice(n, size=b, replace=False)
            _assert_parity(
                g,
                batch,
                depth=int(rng0.integers(1, 4)),
                seed=int(rng0.integers(0, 10000)),
                forced_sparse=bool(rng0.integers(0, 2)),
            )
