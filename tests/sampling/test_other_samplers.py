"""Node-wise and layer-wise samplers, plus batching utilities."""

import numpy as np
import pytest

from repro.graph import chain_graph, random_graph, star_graph
from repro.sampling import (
    LayerWiseSampler,
    NodeWiseSampler,
    epoch_batches,
    group_batches,
    iter_vertex_batches,
)


@pytest.fixture
def graph():
    return random_graph(100, 500, rng=np.random.default_rng(0))


class TestNodeWise:
    def test_batch_contained_in_output(self, graph):
        batch = np.array([1, 5, 9])
        out = NodeWiseSampler([4, 4]).sample(graph, batch, np.random.default_rng(0))
        assert set(batch.tolist()) <= set(out.node_parent.tolist())
        assert np.array_equal(out.node_parent[out.roots], batch)

    def test_output_is_induced_subgraph(self, graph):
        out = NodeWiseSampler([3]).sample(graph, np.array([0, 1]), np.random.default_rng(0))
        member = set(out.node_parent.tolist())
        expected = sum(
            1 for u, v in zip(graph.rows.tolist(), graph.cols.tolist())
            if u in member and v in member
        )
        assert out.graph.num_edges == expected

    def test_star_hub_fanout_capped(self):
        g = star_graph(50)
        out = NodeWiseSampler([5]).sample(g, np.array([0]), np.random.default_rng(0))
        assert out.graph.num_nodes <= 6  # hub + at most 5 leaves

    def test_invalid_fanouts(self):
        with pytest.raises(ValueError):
            NodeWiseSampler([])
        with pytest.raises(ValueError):
            NodeWiseSampler([0])

    def test_empty_batch(self, graph):
        with pytest.raises(ValueError):
            NodeWiseSampler([2]).sample(graph, np.array([], dtype=np.int64), np.random.default_rng(0))


class TestLayerWise:
    def test_layer_size_bounds_growth(self, graph):
        out = LayerWiseSampler(layer_size=5, num_layers=2).sample(
            graph, np.array([0, 1, 2]), np.random.default_rng(0)
        )
        # at most batch + layer_size per layer
        assert out.graph.num_nodes <= 3 + 2 * 5

    def test_batch_contained(self, graph):
        batch = np.array([7, 8])
        out = LayerWiseSampler(4, 2).sample(graph, batch, np.random.default_rng(1))
        assert set(batch.tolist()) <= set(out.node_parent.tolist())

    def test_chain_respects_connectivity(self):
        g = chain_graph(30)
        out = LayerWiseSampler(3, 1).sample(g, np.array([10]), np.random.default_rng(0))
        # first layer candidates connect to vertex 10: only 9 and 11
        others = set(out.node_parent.tolist()) - {10}
        assert others <= {9, 11}

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LayerWiseSampler(0, 2)
        with pytest.raises(ValueError):
            LayerWiseSampler(2, 0)


class TestBatching:
    def test_batches_cover_graph_once(self, graph):
        rng = np.random.default_rng(0)
        seen = []
        for batch in iter_vertex_batches(graph, 10, rng):
            seen.extend(batch.tolist())
        assert len(seen) == len(set(seen)) == 100

    def test_drop_last(self):
        g = random_graph(25, 60, rng=np.random.default_rng(0))
        full = list(iter_vertex_batches(g, 10, np.random.default_rng(0), drop_last=True))
        assert [len(b) for b in full] == [10, 10]
        keep = list(iter_vertex_batches(g, 10, np.random.default_rng(0), drop_last=False))
        assert [len(b) for b in keep] == [10, 10, 5]

    def test_epoch_batches_pairs_graph_and_batch(self, graph):
        g2 = random_graph(40, 100, rng=np.random.default_rng(1))
        pairs = list(epoch_batches([graph, g2], 10, np.random.default_rng(0)))
        for g, b in pairs:
            assert b.max() < g.num_nodes
        # both graphs appear
        assert {id(g) for g, _ in pairs} == {id(graph), id(g2)}

    def test_group_batches_never_spans_graphs(self, graph):
        g2 = random_graph(40, 100, rng=np.random.default_rng(1))
        pairs = epoch_batches([graph, g2], 10, np.random.default_rng(0))
        for g, group in group_batches(pairs, 3):
            assert 1 <= len(group) <= 3

    def test_group_batches_chunk_size(self, graph):
        pairs = epoch_batches([graph], 10, np.random.default_rng(0))
        groups = [grp for _, grp in group_batches(pairs, 4)]
        assert [len(g) for g in groups] == [4, 4, 2]

    def test_invalid_batch_size(self, graph):
        with pytest.raises(ValueError):
            list(iter_vertex_batches(graph, 0, np.random.default_rng(0)))

    def test_invalid_group_size(self, graph):
        pairs = epoch_batches([graph], 10, np.random.default_rng(0))
        with pytest.raises(ValueError):
            list(group_batches(pairs, 0))
