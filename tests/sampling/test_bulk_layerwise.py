"""Bulk layer-wise (LADIES) sampler."""

import numpy as np
import pytest

from repro.graph import chain_graph, random_graph
from repro.sampling import BulkLayerWiseSampler, LayerWiseSampler


@pytest.fixture
def graph():
    return random_graph(120, 600, rng=np.random.default_rng(0))


class TestBulkLayerWise:
    def test_batch_contained_and_roots(self, graph):
        batch = np.array([3, 40, 77])
        out = BulkLayerWiseSampler(8, 2).sample(graph, batch, np.random.default_rng(0))
        assert np.array_equal(out.node_parent[out.roots], batch)

    def test_layer_size_bounds_growth(self, graph):
        batch = np.array([0, 1, 2])
        out = BulkLayerWiseSampler(5, 2).sample(graph, batch, np.random.default_rng(0))
        assert out.graph.num_nodes <= 3 + 2 * 5

    def test_chain_respects_connectivity(self):
        g = chain_graph(30)
        out = BulkLayerWiseSampler(3, 1).sample(g, np.array([10]), np.random.default_rng(0))
        others = set(out.node_parent.tolist()) - {10}
        assert others <= {9, 11}

    def test_induced_subgraph_complete(self, graph):
        out = BulkLayerWiseSampler(6, 2).sample(
            graph, np.array([5, 6]), np.random.default_rng(1)
        )
        member = set(out.node_parent.tolist())
        expected = sum(
            1
            for u, v in zip(graph.rows.tolist(), graph.cols.tolist())
            if u in member and v in member
        )
        assert out.graph.num_edges == expected

    def test_multi_batch_bulk(self, graph):
        rng = np.random.default_rng(1)
        batches = [rng.choice(graph.num_nodes, size=6, replace=False) for _ in range(4)]
        outs = BulkLayerWiseSampler(6, 2).sample_bulk(
            graph, batches, np.random.default_rng(2)
        )
        assert len(outs) == 4
        for out, b in zip(outs, batches):
            assert np.array_equal(out.node_parent[out.roots], np.asarray(b))

    def test_same_distribution_family_as_sequential(self, graph):
        """Both samplers draw layers proportional to connectivity; with a
        layer size covering every candidate both return the full 1-hop
        closure of the batch."""
        batch = np.array([2, 9])
        big = graph.num_nodes
        seq = LayerWiseSampler(big, 1).sample(graph, batch, np.random.default_rng(3))
        blk = BulkLayerWiseSampler(big, 1).sample(graph, batch, np.random.default_rng(3))
        assert set(seq.node_parent.tolist()) == set(blk.node_parent.tolist())

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            BulkLayerWiseSampler(0, 1)
        with pytest.raises(ValueError):
            BulkLayerWiseSampler(3, 1).sample_bulk(
                graph, [np.array([], dtype=np.int64)], np.random.default_rng(0)
            )

    def test_labels_follow(self, graph):
        out = BulkLayerWiseSampler(5, 2).sample(
            graph, np.array([0]), np.random.default_rng(0)
        )
        assert np.array_equal(out.graph.edge_labels, graph.edge_labels[out.edge_parent])
