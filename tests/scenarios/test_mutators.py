"""Event mutators: seeded determinism and per-mutator semantics."""

import numpy as np
import pytest

from repro.detector import DetectorGeometry, EventSimulator, ParticleGun
from repro.scenarios import MutatorSpec, apply_mutators


@pytest.fixture(scope="module")
def base_events(geometry):
    sim = EventSimulator(geometry, gun=ParticleGun(), particles_per_event=10)
    return [sim.generate(np.random.default_rng(i), event_id=i) for i in range(4)]


def _apply(events, geometry, *specs, seed=0):
    return apply_mutators(events, geometry, tuple(specs), seed)


class TestMutatorSpec:
    def test_unknown_mutator_rejected(self):
        with pytest.raises(KeyError, match="unknown mutator"):
            MutatorSpec.of("quantum_foam")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(TypeError):
            MutatorSpec.of("noise_burst", mean_hits=5.0, flavour="up")

    def test_to_doc_is_stable(self):
        spec = MutatorSpec.of("misalign", shift_mm=1.0, layers=(1, 2))
        assert spec.to_doc() == {
            "name": "misalign",
            "params": {"layers": (1, 2), "shift_mm": 1.0},
        }


class TestDeterminism:
    def test_same_seed_same_bits(self, geometry, base_events):
        specs = (
            MutatorSpec.of("noise_burst", mean_hits=10.0),
            MutatorSpec.of("misalign", layers=(1,), shift_mm=1.0),
        )
        a = _apply(base_events, geometry, *specs, seed=7)
        b = _apply(base_events, geometry, *specs, seed=7)
        for ea, eb in zip(a, b):
            assert np.array_equal(ea.positions, eb.positions)
            assert np.array_equal(ea.particle_ids, eb.particle_ids)

    def test_different_seed_different_noise(self, geometry, base_events):
        spec = MutatorSpec.of("noise_burst", mean_hits=10.0)
        a = _apply(base_events, geometry, spec, seed=1)
        b = _apply(base_events, geometry, spec, seed=2)
        assert not all(
            np.array_equal(ea.positions, eb.positions) for ea, eb in zip(a, b)
        )

    def test_inputs_not_mutated_in_place(self, geometry, base_events):
        before = [ev.positions.copy() for ev in base_events]
        _apply(base_events, geometry, MutatorSpec.of("misalign", shift_mm=5.0))
        for ev, snap in zip(base_events, before):
            assert np.array_equal(ev.positions, snap)


class TestMutatorSemantics:
    def test_noise_burst_appends_noise_labels(self, geometry, base_events):
        out = _apply(
            base_events, geometry, MutatorSpec.of("noise_burst", mean_hits=30.0)
        )
        grew = False
        for before, after in zip(base_events, out):
            added = after.num_hits - before.num_hits
            if added > 0:
                grew = True
                assert np.all(after.particle_ids[-added:] == 0)
                assert np.all(after.hit_order[-added:] == -1)
        assert grew

    def test_dead_layers_drops_exactly_those_hits(self, geometry, base_events):
        out = _apply(base_events, geometry, MutatorSpec.of("dead_layers", layers=(3,)))
        for before, after in zip(base_events, out):
            assert not np.any(after.layer_ids == 3)
            kept = before.layer_ids != 3
            assert after.num_hits == int(kept.sum())

    def test_misalign_shifts_only_named_layers(self, geometry, base_events):
        out = _apply(
            base_events, geometry,
            MutatorSpec.of("misalign", layers=(2,), shift_mm=3.0),
        )
        for before, after in zip(base_events, out):
            moved = before.layer_ids == 2
            if moved.any():
                deltas = np.linalg.norm(
                    after.positions[moved] - before.positions[moved], axis=1
                )
                assert np.allclose(deltas, 3.0)
            still = ~moved
            assert np.array_equal(after.positions[still], before.positions[still])

    def test_duplicate_hits_are_spurious_noise(self, geometry, base_events):
        out = _apply(
            base_events, geometry,
            MutatorSpec.of("duplicate_hits", fraction=0.2, jitter_mm=0.0),
        )
        for before, after in zip(base_events, out):
            added = after.num_hits - before.num_hits
            assert added >= 1
            assert np.all(after.particle_ids[-added:] == 0)
            assert np.all(after.hit_order[-added:] == -1)

    def test_nan_hits_poisons_stride_events_only(self, geometry, base_events):
        out = _apply(
            base_events, geometry, MutatorSpec.of("nan_hits", hits=1, stride=2)
        )
        flags = [bool(np.isnan(ev.positions).any()) for ev in out]
        assert flags == [True, False, True, False]

    def test_pileup_multiplies_occupancy(self, geometry, base_events):
        out = _apply(base_events, geometry, MutatorSpec.of("pileup", multiplier=2))
        assert len(out) == len(base_events)
        for before, after in zip(base_events, out):
            assert after.num_hits > before.num_hits
            assert after.event_id == before.event_id

    def test_degenerate_appends_events(self, geometry, base_events):
        out = _apply(
            base_events, geometry,
            MutatorSpec.of("degenerate", kind="star", count=2),
        )
        assert len(out) == len(base_events) + 2
        star = out[-1]
        assert np.all(star.particle_ids == 0)  # pure noise blob
        spread = star.positions.max(axis=0) - star.positions.min(axis=0)
        assert np.all(spread < 2.0)  # all hits inside a tiny ball

    def test_degenerate_giant_is_single_track(self, geometry, base_events):
        out = _apply(
            base_events, geometry,
            MutatorSpec.of("degenerate", kind="giant", count=1),
        )
        giant = out[-1]
        assert set(np.unique(giant.particle_ids)) == {1}
        assert giant.num_hits > 3 * len(np.unique(giant.layer_ids)) - 1
