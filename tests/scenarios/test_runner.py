"""Scenario runner and conformance report: determinism, floors, JSON."""

import json

import pytest

from repro.obs import RunTelemetry, use_telemetry
from repro.scenarios import (
    ScenarioFloors,
    ScenarioMatrix,
    ScenarioSpec,
    build_report,
    get_matrix,
    render_report,
    run_matrix,
    run_scenario,
    smoke_matrix,
    strip_volatile,
    write_report,
)
from repro.scenarios.runner import _evaluate_floors


@pytest.fixture(scope="module")
def baseline_result(tmp_path_factory):
    spec = smoke_matrix().get("baseline")
    workdir = str(tmp_path_factory.mktemp("scenario"))
    return run_scenario(spec, workdir)


class TestRunScenario:
    def test_baseline_passes_its_floors(self, baseline_result):
        assert baseline_result.passed
        assert baseline_result.status == "pass"
        assert baseline_result.metrics["scored_events"] >= 3

    def test_doc_round_trips_through_json(self, baseline_result):
        doc = baseline_result.to_doc()
        assert json.loads(json.dumps(doc, sort_keys=True)) == doc

    def test_doc_contains_no_paths(self, baseline_result, tmp_path):
        blob = json.dumps(baseline_result.to_doc())
        assert "/tmp" not in blob and str(tmp_path) not in blob

    def test_rerun_is_bit_deterministic(self, baseline_result, tmp_path):
        again = run_scenario(smoke_matrix().get("baseline"), str(tmp_path))
        assert again.to_doc() == baseline_result.to_doc()

    def test_scenario_telemetry_counters(self, tmp_path):
        telemetry = RunTelemetry()
        with use_telemetry(telemetry):
            run_scenario(smoke_matrix().get("baseline"), str(tmp_path))
        assert telemetry.metrics.counter("scenario.runs").value == 1
        assert telemetry.metrics.counter("scenario.passed").value == 1


class TestMatrix:
    def test_smoke_matrix_contents(self):
        matrix = smoke_matrix()
        names = matrix.names()
        # the resilience proofs the acceptance gate demands
        assert "hostile_mix_quarantine" in names  # quarantine isolation
        assert "breaker_recovery" in names  # degraded-mode recovery
        assert "train_sigkill" in names  # SIGKILL chaos
        assert "store_bitflip" in names  # store corruption
        assert len(names) >= 6

    def test_full_matrix_extends_smoke(self):
        assert set(smoke_matrix().names()) < set(get_matrix("full").names())

    def test_duplicate_names_rejected(self):
        spec = ScenarioSpec(name="twin")
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioMatrix(name="bad", scenarios=(spec, spec))

    def test_unknown_lookups_raise(self):
        with pytest.raises(KeyError, match="unknown matrix"):
            get_matrix("nope")
        with pytest.raises(KeyError, match="no scenario"):
            smoke_matrix().get("nope")

    def test_run_matrix_subset_and_progress(self, tmp_path):
        seen = []
        results = run_matrix(
            smoke_matrix(), str(tmp_path), names=["baseline"],
            progress=lambda r: seen.append(r.spec.name),
        )
        assert [r.spec.name for r in results] == ["baseline"] == seen


class TestFloorEvaluation:
    METRICS = {"efficiency": 0.5, "purity": 0.4}
    SERVE = {
        "completed": 3, "quarantined": 1, "degraded": 2, "breaker_degraded": 1,
        "breaker": {"state": "closed", "transitions": {"open": 1}},
    }

    def test_all_floors_pass(self):
        floors = ScenarioFloors(
            min_efficiency=0.5, min_purity=0.4, min_completed=3,
            min_quarantined=1, min_degraded=3, require_breaker_recovery=True,
        )
        checks = _evaluate_floors(floors, self.METRICS, self.SERVE, {})
        assert all(c["ok"] for c in checks)

    def test_exact_floor_is_not_a_violation(self):
        floors = ScenarioFloors(min_efficiency=0.5, min_purity=0.4)
        checks = _evaluate_floors(floors, self.METRICS, self.SERVE, {})
        assert all(c["ok"] for c in checks)

    def test_violations_are_named(self):
        floors = ScenarioFloors(min_efficiency=0.9)
        checks = _evaluate_floors(floors, self.METRICS, self.SERVE, {})
        bad = [c for c in checks if not c["ok"]]
        assert [c["check"] for c in bad] == ["efficiency"]

    def test_breaker_stuck_open_fails_recovery(self):
        serve = dict(self.SERVE)
        serve["breaker"] = {"state": "open", "transitions": {"open": 1}}
        floors = ScenarioFloors(require_breaker_recovery=True)
        checks = _evaluate_floors(floors, self.METRICS, serve, {})
        assert not [c for c in checks if c["check"] == "breaker_recovery"][0]["ok"]

    def test_chaos_floors_read_chaos_docs(self):
        floors = ScenarioFloors(
            require_store_corrupt_detected=True,
            min_watchdog_rollbacks=1,
            min_evicted_ranks=1,
        )
        chaos = {
            "store": {"detected": True},
            "train": {"watchdog_rollbacks": 1, "evicted_ranks": [1]},
        }
        checks = _evaluate_floors(floors, self.METRICS, self.SERVE, chaos)
        by_name = {c["check"]: c for c in checks}
        assert by_name["store_corrupt_detected"]["ok"]
        assert by_name["watchdog_rollbacks"]["ok"]
        assert by_name["evicted_ranks"]["ok"]


class TestReport:
    def test_build_and_render(self, baseline_result):
        doc = build_report("smoke", [baseline_result])
        assert doc["format"] == "repro.scenarios/v1"
        assert doc["summary"] == {"total": 1, "passed": 1, "failed": 0}
        text = render_report(doc)
        assert "[PASS] baseline" in text

    def test_write_report_fixed_timestamp_identical(
        self, baseline_result, tmp_path
    ):
        doc = build_report("smoke", [baseline_result])
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        write_report(doc, a, timestamp="T0")
        write_report(doc, b, timestamp="T0")
        assert open(a).read() == open(b).read()

    def test_strip_volatile_removes_only_timestamp(self, baseline_result, tmp_path):
        doc = build_report("smoke", [baseline_result])
        path = str(tmp_path / "r.json")
        write_report(doc, path)
        with open(path) as fh:
            loaded = json.load(fh)
        assert "generated_at" in loaded
        assert strip_volatile(loaded) == json.loads(
            json.dumps(strip_volatile(doc))
        )
