"""End-to-end precision mode: float64 reference vs float32 deployment.

The convergence-parity gates that qualify the float32 default: a short
float32 run must track the float64 reference trajectory, and the fused
kernels must not change where training converges.
"""

import numpy as np
import pytest

from repro.pipeline import GNNTrainConfig, train_gnn

SMALL = dict(
    mode="bulk", epochs=3, batch_size=32, hidden=8, num_layers=2,
    mlp_layers=2, depth=2, fanout=3, bulk_k=2, seed=0,
)


@pytest.fixture(scope="module")
def splits(tiny_dataset):
    return tiny_dataset.train, tiny_dataset.val


class TestConfig:
    def test_precision_validated(self):
        with pytest.raises(ValueError):
            GNNTrainConfig(precision="float16")

    def test_defaults(self):
        cfg = GNNTrainConfig()
        assert cfg.precision == "float32" and cfg.fused_kernels


class TestPrecisionParity:
    def test_float64_trains_with_float64_weights(self, splits):
        train, val = splits
        res = train_gnn(train, val, GNNTrainConfig(**SMALL, precision="float64"))
        model = res.model
        assert all(p.data.dtype == np.float64 for p in model.parameters())
        assert np.isfinite(res.history.final.train_loss)

    def test_float32_tracks_float64_reference(self, splits):
        """Convergence-parity gate for the float32 deployment mode."""
        train, val = splits
        r32 = train_gnn(train, val, GNNTrainConfig(**SMALL, precision="float32"))
        r64 = train_gnn(train, val, GNNTrainConfig(**SMALL, precision="float64"))
        l32 = [e.train_loss for e in r32.history]
        l64 = [e.train_loss for e in r64.history]
        np.testing.assert_allclose(l32, l64, rtol=2e-3)
        assert abs(r32.history.final.val_recall - r64.history.final.val_recall) < 0.05

    def test_fused_tracks_unfused(self, splits):
        """Convergence-parity gate for the fused message path."""
        train, val = splits
        rf = train_gnn(train, val, GNNTrainConfig(**SMALL, fused_kernels=True))
        ru = train_gnn(train, val, GNNTrainConfig(**SMALL, fused_kernels=False))
        lf = [e.train_loss for e in rf.history]
        lu = [e.train_loss for e in ru.history]
        np.testing.assert_allclose(lf, lu, rtol=2e-3)
