"""Hard-negative mining in the embedding stage."""

import numpy as np
import pytest

from repro.pipeline import EmbeddingStage, GraphConstructionStage, PipelineConfig


@pytest.fixture(scope="module")
def configs():
    common = dict(
        embedding_dim=6, embedding_epochs=14, frnn_radius=0.3, hnm_warmup_epochs=7
    )
    return (
        PipelineConfig(hard_negative_mining=False, **common),
        PipelineConfig(hard_negative_mining=True, **common),
    )


class TestHNM:
    def test_mining_runs_and_trains(self, configs, geometry, small_events):
        _, cfg_hnm = configs
        stage = EmbeddingStage(cfg_hnm, geometry).fit(
            small_events[:4], np.random.default_rng(0)
        )
        assert stage.net is not None
        assert stage.losses[-1] < stage.losses[0]

    def test_mined_negatives_are_false_pairs(self, configs, geometry, small_events):
        _, cfg_hnm = configs
        stage = EmbeddingStage(cfg_hnm, geometry).fit(
            small_events[:4], np.random.default_rng(0)
        )
        from repro.detector import vertex_features

        ev = small_events[4]
        x = vertex_features(ev, geometry, cfg_hnm.feature_scheme)
        src, dst = stage._mine_hard_negatives(stage.net, ev, x)
        if src.size:
            pid = ev.particle_ids
            assert np.all((pid[src] != pid[dst]) | (pid[src] == 0))

    def test_hnm_raises_graph_purity(self, configs, geometry, small_events):
        """The acorn rationale: mined negatives push apart exactly the
        pairs the FRNN construction would wrongly connect."""
        cfg_plain, cfg_hnm = configs
        purities = {}
        for name, cfg in (("plain", cfg_plain), ("hnm", cfg_hnm)):
            emb = EmbeddingStage(cfg, geometry).fit(
                small_events[:4], np.random.default_rng(0)
            )
            con = GraphConstructionStage(cfg, geometry, emb)
            graphs = [con.build(e) for e in small_events[4:]]
            edges = sum(g.num_edges for g in graphs)
            true = sum(int(g.edge_labels.sum()) for g in graphs)
            purities[name] = true / max(edges, 1)
        assert purities["hnm"] > purities["plain"]
