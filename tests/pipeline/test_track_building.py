"""Track builders: connected components vs score-guided walkthrough."""

import numpy as np
import pytest

from repro.graph import EventGraph, disjoint_chains
from repro.pipeline import build_tracks, build_tracks_walkthrough


def two_chains_with_bridge():
    """Two 4-hit chains connected by one fake bridge edge.

    Vertices 0-1-2-3 (particle 1) and 4-5-6-7 (particle 2); edge 2→5 is
    the fake.  True edges score high, the fake scores lower-but-surviving.
    """
    edge_index = np.array(
        [[0, 1, 2, 4, 5, 6, 2], [1, 2, 3, 5, 6, 7, 5]]
    )
    g = EventGraph(
        edge_index=edge_index,
        x=np.zeros((8, 2), dtype=np.float32),
        y=np.zeros((7, 1), dtype=np.float32),
        edge_labels=np.array([1, 1, 1, 1, 1, 1, 0], dtype=np.int8),
    )
    scores = np.array([0.95, 0.9, 0.92, 0.94, 0.91, 0.93, 0.7])
    return g, scores


class TestConnectedComponents:
    def test_bridge_merges_tracks(self):
        """Plain CC's failure mode: one fake edge merges two tracks."""
        g, _ = two_chains_with_bridge()
        tracks = build_tracks(g, min_hits=3)
        assert len(tracks) == 1  # merged!
        assert len(tracks[0]) == 8

    def test_clean_chains_ok(self, chains_graph):
        tracks = build_tracks(chains_graph, min_hits=3)
        assert len(tracks) == 10


class TestWalkthrough:
    def test_bridge_rejected_by_degree_constraint(self):
        """The walkthrough's point: vertex 2 already has an outgoing true
        segment (higher score), so the fake bridge is refused."""
        g, scores = two_chains_with_bridge()
        tracks = build_tracks_walkthrough(g, scores, min_hits=3)
        assert len(tracks) == 2
        assert sorted(len(t) for t in tracks) == [4, 4]
        sets = [set(t.tolist()) for t in tracks]
        assert {0, 1, 2, 3} in sets and {4, 5, 6, 7} in sets

    def test_paths_are_ordered_chains(self):
        g, scores = two_chains_with_bridge()
        for t in build_tracks_walkthrough(g, scores, min_hits=3):
            # consecutive hits are joined by accepted edges
            pairs = set(zip(g.rows.tolist(), g.cols.tolist()))
            for a, b in zip(t[:-1], t[1:]):
                assert (int(a), int(b)) in pairs

    def test_min_score_gate(self):
        g, scores = two_chains_with_bridge()
        tracks = build_tracks_walkthrough(g, scores, min_hits=3, min_score=0.99)
        assert tracks == []

    def test_min_hits_gate(self):
        g, scores = two_chains_with_bridge()
        assert build_tracks_walkthrough(g, scores, min_hits=5) == []

    def test_disjoint_output(self):
        g, scores = two_chains_with_bridge()
        tracks = build_tracks_walkthrough(g, scores, min_hits=3)
        flat = np.concatenate(tracks)
        assert len(flat) == len(set(flat.tolist()))

    def test_clean_chains_fully_recovered(self, chains_graph):
        scores = np.full(chains_graph.num_edges, 0.9)
        tracks = build_tracks_walkthrough(chains_graph, scores, min_hits=3)
        assert len(tracks) == 10
        assert all(len(t) == 8 for t in tracks)

    def test_score_length_checked(self):
        g, _ = two_chains_with_bridge()
        with pytest.raises(ValueError):
            build_tracks_walkthrough(g, np.zeros(3))

    def test_cycle_edge_skipped(self):
        # triangle 0→1→2 plus closing edge 2→0 (oriented graphs from the
        # pipeline cannot cycle, but the builder must stay robust)
        g = EventGraph(
            edge_index=np.array([[0, 1, 2], [1, 2, 0]]),
            x=np.zeros((3, 1), dtype=np.float32),
            y=np.zeros((3, 1), dtype=np.float32),
        )
        tracks = build_tracks_walkthrough(g, np.array([0.9, 0.8, 0.7]), min_hits=3)
        assert len(tracks) == 1
        assert np.array_equal(tracks[0], [0, 1, 2])
