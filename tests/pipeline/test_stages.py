"""Individual pipeline stages on simulated events."""

import numpy as np
import pytest

from repro.pipeline import (
    EmbeddingStage,
    FilterStage,
    GraphConstructionStage,
    PipelineConfig,
    build_tracks,
)
from repro.graph import disjoint_chains


@pytest.fixture(scope="module")
def config():
    return PipelineConfig(
        embedding_dim=6,
        embedding_epochs=12,
        filter_epochs=12,
        frnn_radius=0.3,
    )


@pytest.fixture(scope="module")
def fitted_embedding(config, geometry, small_events):
    stage = EmbeddingStage(config, geometry)
    stage.fit(small_events[:4], np.random.default_rng(0))
    return stage


class TestEmbeddingStage:
    def test_requires_fit_before_embed(self, config, geometry, small_events):
        stage = EmbeddingStage(config, geometry)
        with pytest.raises(RuntimeError):
            stage.embed(small_events[0])

    def test_loss_decreases(self, fitted_embedding):
        losses = fitted_embedding.losses
        assert losses[-1] < losses[0]

    def test_embedding_shape_and_norm(self, fitted_embedding, small_events, config):
        z = fitted_embedding.embed(small_events[0])
        assert z.shape == (small_events[0].num_hits, config.embedding_dim)
        assert np.allclose(np.linalg.norm(z, axis=1), 1.0, atol=1e-5)

    def test_true_pairs_closer_than_random(self, fitted_embedding, small_events):
        ev = small_events[4]
        z = fitted_embedding.embed(ev)
        seg = ev.true_segments()
        same = np.linalg.norm(z[seg[0]] - z[seg[1]], axis=1).mean()
        rng = np.random.default_rng(0)
        a = rng.integers(0, ev.num_hits, 500)
        b = rng.integers(0, ev.num_hits, 500)
        mask = ev.particle_ids[a] != ev.particle_ids[b]
        rand = np.linalg.norm(z[a[mask]] - z[b[mask]], axis=1).mean()
        assert same < rand

    def test_empty_events_rejected(self, config, geometry):
        with pytest.raises(ValueError):
            EmbeddingStage(config, geometry).fit([], np.random.default_rng(0))


class TestGraphConstruction:
    def test_builds_labelled_graph(self, config, geometry, fitted_embedding, small_events):
        stage = GraphConstructionStage(config, geometry, fitted_embedding)
        g = stage.build(small_events[4])
        assert g.num_nodes == small_events[4].num_hits
        assert g.edge_labels is not None

    def test_edges_oriented_outward(self, config, geometry, fitted_embedding, small_events):
        stage = GraphConstructionStage(config, geometry, fitted_embedding)
        ev = small_events[4]
        g = stage.build(ev)
        r = np.hypot(ev.positions[:, 0], ev.positions[:, 1])
        assert np.all(r[g.rows] <= r[g.cols] + 1e-9)

    def test_edge_efficiency_reasonable(self, config, geometry, fitted_embedding, small_events):
        stage = GraphConstructionStage(config, geometry, fitted_embedding)
        eff = stage.edge_efficiency(small_events[4])
        assert eff > 0.5  # trained embedding must capture most segments


class TestFilterStage:
    @pytest.fixture(scope="class")
    def graphs(self, config, geometry, fitted_embedding, small_events):
        stage = GraphConstructionStage(config, geometry, fitted_embedding)
        return [stage.build(e) for e in small_events[:4]]

    def test_fit_and_prune(self, config, graphs):
        stage = FilterStage(config)
        stage.fit(graphs, np.random.default_rng(0))
        pruned, keep = stage.prune(graphs[0])
        assert pruned.num_edges == int(keep.sum())
        assert pruned.num_nodes == graphs[0].num_nodes

    def test_high_segment_recall(self, config, graphs):
        """The filter's job: prune while keeping true segments."""
        stage = FilterStage(config)
        stage.fit(graphs, np.random.default_rng(0))
        _, keep = stage.prune(graphs[0])
        assert stage.segment_recall(graphs[0], keep) > 0.9

    def test_requires_fit(self, config, graphs):
        with pytest.raises(RuntimeError):
            FilterStage(config).prune(graphs[0])


class TestTrackBuilding:
    def test_chains_become_tracks(self, chains_graph):
        tracks = build_tracks(chains_graph, min_hits=3)
        assert len(tracks) == 10
        assert all(len(t) == 8 for t in tracks)

    def test_min_hits_filters_stubs(self):
        g = disjoint_chains(3, 2, rng=np.random.default_rng(0))  # 2-hit chains
        assert build_tracks(g, min_hits=3) == []

    def test_pruned_graph_splits_components(self, chains_graph):
        # remove the middle edge of each chain: every chain splits in two
        keep = np.ones(chains_graph.num_edges, dtype=bool)
        # chain c edges occupy positions [c*7, (c+1)*7); middle edge index 3
        for c in range(10):
            keep[c * 7 + 3] = False
        pruned = chains_graph.edge_mask_subgraph(keep)
        tracks = build_tracks(pruned, min_hits=3)
        assert len(tracks) == 20
