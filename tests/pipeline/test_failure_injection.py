"""Failure injection: diverged runs must fail loudly, not silently."""

import numpy as np
import pytest

from repro.pipeline import GNNTrainConfig, train_gnn

SMALL = dict(epochs=1, batch_size=32, hidden=8, num_layers=2, mlp_layers=2, depth=2, fanout=3, seed=0)


@pytest.mark.filterwarnings("ignore:invalid value encountered")
@pytest.mark.filterwarnings("ignore:overflow encountered")
class TestNaNGuards:
    def test_nan_features_raise_floating_point_error(self, tiny_dataset):
        train = [g for g in tiny_dataset.train]
        poisoned = train[0].edge_mask_subgraph(np.ones(train[0].num_edges, dtype=bool))
        poisoned.x = poisoned.x.copy()
        poisoned.x[0, 0] = np.nan
        with pytest.raises(FloatingPointError, match="non-finite"):
            train_gnn([poisoned], tiny_dataset.val, GNNTrainConfig(mode="full", **SMALL))

    def test_error_names_the_event(self, tiny_dataset):
        poisoned = tiny_dataset.train[0].edge_mask_subgraph(
            np.ones(tiny_dataset.train[0].num_edges, dtype=bool)
        )
        poisoned.x = poisoned.x.copy()
        poisoned.x[:] = np.inf
        poisoned.event_id = 77
        with pytest.raises(FloatingPointError, match="77"):
            train_gnn([poisoned], tiny_dataset.val, GNNTrainConfig(mode="full", **SMALL))

    def test_minibatch_modes_also_guarded(self, tiny_dataset):
        poisoned = tiny_dataset.train[0].edge_mask_subgraph(
            np.ones(tiny_dataset.train[0].num_edges, dtype=bool)
        )
        poisoned.y = poisoned.y.copy()
        poisoned.y[:] = np.nan
        with pytest.raises(FloatingPointError):
            train_gnn([poisoned], tiny_dataset.val, GNNTrainConfig(mode="shadow", **SMALL))

    def test_healthy_training_unaffected(self, tiny_dataset):
        res = train_gnn(
            tiny_dataset.train, tiny_dataset.val, GNNTrainConfig(mode="full", **SMALL)
        )
        assert np.isfinite(res.history.final.train_loss)
