"""GNN stage on the forward-region (barrel + endcap) dataset."""

import numpy as np
import pytest

from repro.detector import dataset_config, make_dataset
from repro.pipeline import GNNTrainConfig, train_gnn


@pytest.mark.slow
class TestEndcapTraining:
    def test_gnn_trains_on_forward_dataset(self):
        """The endcap geometry flows through features, builder, samplers
        and the IGNN without special-casing, and reaches a usable F1."""
        ds = make_dataset(dataset_config("fwd_like").with_sizes(4, 2, 0))
        res = train_gnn(
            ds.train,
            ds.val,
            GNNTrainConfig(
                mode="bulk", epochs=4, batch_size=64, hidden=16,
                num_layers=2, mlp_layers=2, depth=2, fanout=4, bulk_k=4,
                lr=2e-3, seed=1,
            ),
        )
        final = res.history.final
        assert final.val_f1 > 0.6
        assert final.val_recall > 0.7
