"""Pluggable graph-construction strategy (metric learning vs module map)."""

import numpy as np
import pytest

from repro.pipeline import (
    ExaTrkXPipeline,
    GNNTrainConfig,
    PipelineConfig,
    diagnose_event,
    save_pipeline,
)


@pytest.fixture(scope="module")
def mm_events(geometry):
    """The module map needs more training events than the metric-learning
    fixtures (coverage of the cell-pair space grows with statistics)."""
    from repro.detector import EventSimulator

    sim = EventSimulator(geometry, particles_per_event=20, noise_fraction=0.05)
    return [sim.generate(np.random.default_rng(800 + i), event_id=i) for i in range(14)]


@pytest.fixture(scope="module")
def mm_pipeline(geometry, mm_events):
    cfg = PipelineConfig(
        construction="module_map",
        filter_epochs=10,
        gnn=GNNTrainConfig(
            mode="bulk", epochs=3, batch_size=32, hidden=8,
            num_layers=2, mlp_layers=2, depth=2, fanout=3, bulk_k=2,
        ),
    )
    pipe = ExaTrkXPipeline(cfg, geometry)
    pipe.fit(mm_events[:12], mm_events[12:13])
    return pipe


class TestModuleMapStrategy:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(construction="random_edges")

    def test_fit_skips_embedding(self, mm_pipeline):
        assert mm_pipeline.embedding.net is None  # never trained
        assert mm_pipeline.construction is not None

    def test_reconstruct_works(self, mm_pipeline, mm_events):
        tracks = mm_pipeline.reconstruct(mm_events[13])
        assert all(len(t) >= 3 for t in tracks)

    def test_diagnostics_work(self, mm_pipeline, mm_events):
        diag = diagnose_event(mm_pipeline, mm_events[13])
        assert len(diag.stages) == 3

    def test_report_populated(self, mm_pipeline):
        assert mm_pipeline.report.graph_edge_efficiency > 0.5
        assert mm_pipeline.report.gnn_final_recall > 0.0

    def test_persistence_not_supported(self, mm_pipeline, tmp_path):
        with pytest.raises(NotImplementedError):
            save_pipeline(mm_pipeline, str(tmp_path / "mm.npz"))

    def test_scores_reasonably(self, mm_pipeline, mm_events):
        score = mm_pipeline.score_event(mm_events[13])
        assert score.efficiency > 0.2
