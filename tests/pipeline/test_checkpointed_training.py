"""Full-graph training with gradient checkpointing (skip rescue)."""

import numpy as np
import pytest

from repro.memory import ActivationMemoryModel
from repro.models import IGNNConfig
from repro.pipeline import GNNTrainConfig, train_gnn

SMALL = dict(epochs=2, hidden=8, num_layers=2, mlp_layers=2, seed=0)


@pytest.fixture(scope="module")
def splits(tiny_dataset):
    return tiny_dataset.train, tiny_dataset.val


def _capacity_between(train, frac=0.5):
    """A budget above the checkpointed footprint but below full backprop."""
    cfg = IGNNConfig(
        node_features=train[0].num_node_features,
        edge_features=train[0].num_edge_features,
        hidden=SMALL["hidden"],
        num_layers=SMALL["num_layers"],
    )
    mem = ActivationMemoryModel(cfg)
    full = max(mem.total_bytes(g.num_nodes, g.num_edges) for g in train)
    ck = max(mem.checkpointed_bytes(g.num_nodes, g.num_edges) for g in train)
    assert ck < full
    return int(ck + frac * (full - ck))


class TestCheckpointRescue:
    def test_rescues_graphs_the_skip_policy_drops(self, splits):
        train, val = splits
        cap = _capacity_between(train)
        base = train_gnn(
            train, val, GNNTrainConfig(mode="full", capacity_bytes=cap, **SMALL)
        )
        rescued = train_gnn(
            train,
            val,
            GNNTrainConfig(
                mode="full", capacity_bytes=cap, checkpoint_activations=True, **SMALL
            ),
        )
        assert base.skipped_graphs > 0
        assert rescued.checkpointed_steps > 0
        assert rescued.trained_steps > base.trained_steps
        assert rescued.skipped_graphs < base.skipped_graphs

    def test_checkpointing_unused_when_everything_fits(self, splits):
        train, val = splits
        res = train_gnn(
            train,
            val,
            GNNTrainConfig(mode="full", checkpoint_activations=True, **SMALL),
        )
        assert res.checkpointed_steps == 0
        assert res.skipped_graphs == 0

    def test_still_skips_graphs_exceeding_checkpointed_footprint(self, splits):
        train, val = splits
        res = train_gnn(
            train,
            val,
            GNNTrainConfig(
                mode="full",
                capacity_bytes=1,
                checkpoint_activations=True,
                **SMALL,
            ),
        )
        assert res.trained_steps == 0
        assert res.skipped_graphs == len(train) * SMALL["epochs"]

    def test_checkpointed_run_converges(self, splits):
        """All-checkpointed training still reduces the loss."""
        train, val = splits
        cfg = IGNNConfig(
            node_features=train[0].num_node_features,
            edge_features=train[0].num_edge_features,
            hidden=SMALL["hidden"],
            num_layers=SMALL["num_layers"],
        )
        mem = ActivationMemoryModel(cfg)
        # capacity just above every checkpointed footprint, below every full one
        cap = max(mem.checkpointed_bytes(g.num_nodes, g.num_edges) for g in train) + 1
        res = train_gnn(
            train,
            val,
            GNNTrainConfig(
                mode="full",
                capacity_bytes=cap,
                checkpoint_activations=True,
                **{**SMALL, "epochs": 3},
            ),
        )
        # small graphs may fit outright; the oversized ones must all have
        # been rescued via checkpointing, with nothing skipped
        assert res.checkpointed_steps > 0
        assert res.skipped_graphs == 0
        assert res.trained_steps == len(train) * 3
        losses = res.history.series("train_loss")
        assert losses[-1] < losses[0]
