"""End-to-end pipeline integration: hits in, tracks out."""

import numpy as np
import pytest

from repro.metrics import match_tracks
from repro.pipeline import ExaTrkXPipeline, GNNTrainConfig, PipelineConfig


@pytest.fixture(scope="module")
def fitted_pipeline(geometry, small_events):
    config = PipelineConfig(
        embedding_dim=6,
        embedding_epochs=15,
        filter_epochs=15,
        frnn_radius=0.3,
        gnn=GNNTrainConfig(
            mode="bulk",
            epochs=4,
            batch_size=64,
            hidden=16,
            num_layers=2,
            mlp_layers=2,
            depth=2,
            fanout=4,
            bulk_k=4,
        ),
    )
    pipe = ExaTrkXPipeline(config, geometry)
    pipe.fit(small_events[:4], small_events[4:5])
    return pipe


@pytest.mark.slow
class TestEndToEnd:
    def test_fit_report_sane(self, fitted_pipeline):
        r = fitted_pipeline.report
        assert r.graph_edge_efficiency > 0.5
        assert r.filter_segment_recall > 0.8
        assert 0.0 < r.gnn_final_precision <= 1.0
        assert 0.0 < r.gnn_final_recall <= 1.0

    def test_reconstruct_returns_tracks(self, fitted_pipeline, small_events):
        tracks = fitted_pipeline.reconstruct(small_events[5])
        assert isinstance(tracks, list)
        assert all(len(t) >= 3 for t in tracks)

    def test_recovers_a_reasonable_fraction_of_tracks(self, fitted_pipeline, small_events):
        score = fitted_pipeline.score_event(small_events[5])
        assert score.num_reconstructable > 0
        assert score.efficiency > 0.2  # small training budget, lenient bar

    def test_score_event_consistent_with_match_tracks(self, fitted_pipeline, small_events):
        ev = small_events[5]
        tracks = fitted_pipeline.reconstruct(ev)
        direct = match_tracks(tracks, ev.particle_ids, min_hits=3)
        score = fitted_pipeline.score_event(ev)
        assert direct.num_reconstructable == score.num_reconstructable

    def test_unfitted_pipeline_rejects_reconstruct(self, geometry, small_events):
        pipe = ExaTrkXPipeline(PipelineConfig(), geometry)
        with pytest.raises(RuntimeError):
            pipe.reconstruct(small_events[0])
