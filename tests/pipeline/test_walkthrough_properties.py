"""Property-based invariants of the walkthrough track builder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import random_graph
from repro.pipeline import build_tracks_walkthrough


@st.composite
def scored_graphs(draw):
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    n = draw(st.integers(5, 60))
    g = random_graph(n, 3 * n, rng=rng)
    scores = rng.random(g.num_edges)
    min_hits = draw(st.integers(2, 4))
    return g, scores, min_hits


class TestWalkthroughProperties:
    @given(scored_graphs())
    @settings(max_examples=60, deadline=None)
    def test_tracks_are_vertex_disjoint(self, case):
        g, scores, min_hits = case
        tracks = build_tracks_walkthrough(g, scores, min_hits=min_hits)
        flat = [int(h) for t in tracks for h in t]
        assert len(flat) == len(set(flat))

    @given(scored_graphs())
    @settings(max_examples=60, deadline=None)
    def test_consecutive_hits_are_graph_edges(self, case):
        g, scores, min_hits = case
        pairs = set(zip(g.rows.tolist(), g.cols.tolist()))
        for t in build_tracks_walkthrough(g, scores, min_hits=min_hits):
            for a, b in zip(t[:-1], t[1:]):
                assert (int(a), int(b)) in pairs

    @given(scored_graphs())
    @settings(max_examples=60, deadline=None)
    def test_min_hits_respected(self, case):
        g, scores, min_hits = case
        for t in build_tracks_walkthrough(g, scores, min_hits=min_hits):
            assert len(t) >= min_hits

    @given(scored_graphs())
    @settings(max_examples=40, deadline=None)
    def test_min_score_never_adds_tracks(self, case):
        g, scores, min_hits = case
        loose = build_tracks_walkthrough(g, scores, min_hits=min_hits, min_score=0.0)
        tight = build_tracks_walkthrough(g, scores, min_hits=min_hits, min_score=0.5)
        assert sum(len(t) for t in tight) <= sum(len(t) for t in loose)

    @given(scored_graphs())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, case):
        g, scores, min_hits = case
        a = build_tracks_walkthrough(g, scores, min_hits=min_hits)
        b = build_tracks_walkthrough(g, scores, min_hits=min_hits)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)
