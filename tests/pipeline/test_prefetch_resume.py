"""Prefetch × checkpoint matrix: bit-identical weights in every cell.

The acceptance contract of the async data pipeline
(docs/data_pipeline.md): training with ``prefetch_workers=0`` and
``prefetch_workers=4``, each either uninterrupted or crashed mid-epoch
and resumed from a step checkpoint, produces **bit-identical final
weights and identical loss history** in all four combinations.
"""

import numpy as np
import pytest

from repro.obs import RunTelemetry, use_telemetry
from repro.pipeline import GNNTrainConfig, describe_checkpoint, train_gnn

SMALL = dict(
    mode="bulk",
    epochs=2,
    batch_size=32,
    hidden=8,
    num_layers=2,
    mlp_layers=2,
    depth=2,
    fanout=3,
    bulk_k=2,
    world_size=2,
    seed=0,
)


def _config(**overrides):
    return GNNTrainConfig(**dict(SMALL, **overrides))


def _deterministic_history(history):
    return [
        (r.epoch, r.train_loss, r.val_precision, r.val_recall)
        for r in history.records
    ]


def _steps_per_epoch(dataset):
    probe = train_gnn(dataset.train, dataset.val, _config(epochs=1))
    assert probe.trained_steps > 2, "dataset too small for a mid-epoch crash"
    return probe.trained_steps


def _train_crashed_then_resumed(dataset, ckpt, workers, crash_at):
    """Stop mid-epoch via max_steps, then resume from the step checkpoint."""
    crashed = train_gnn(
        dataset.train,
        dataset.val,
        _config(
            prefetch_workers=workers,
            checkpoint_path=ckpt,
            checkpoint_every_steps=1,
            max_steps=crash_at,
        ),
    )
    # the crash really was mid-epoch: no record for the torn epoch
    assert len(crashed.history) < SMALL["epochs"]
    info = describe_checkpoint(ckpt)
    assert info["step_in_epoch"] > 0
    return train_gnn(
        dataset.train,
        dataset.val,
        _config(prefetch_workers=workers, resume_from=ckpt),
    )


class TestPrefetchResumeMatrix:
    def test_all_four_combinations_bit_identical(self, tiny_dataset, tmp_path):
        per_epoch = _steps_per_epoch(tiny_dataset)
        crash_at = per_epoch + max(per_epoch // 2, 1)  # inside epoch 1

        results = {
            "sync": train_gnn(
                tiny_dataset.train, tiny_dataset.val, _config(prefetch_workers=0)
            ),
            "prefetch": train_gnn(
                tiny_dataset.train, tiny_dataset.val, _config(prefetch_workers=4)
            ),
            "sync+resume": _train_crashed_then_resumed(
                tiny_dataset, str(tmp_path / "sync.npz"), 0, crash_at
            ),
            "prefetch+resume": _train_crashed_then_resumed(
                tiny_dataset, str(tmp_path / "prefetch.npz"), 4, crash_at
            ),
        }
        reference = results["sync"]
        ref_state = reference.model.state_dict()
        ref_history = _deterministic_history(reference.history)
        assert len(ref_history) == SMALL["epochs"]
        for name, result in results.items():
            state = result.model.state_dict()
            assert set(state) == set(ref_state), name
            for key in ref_state:
                assert np.array_equal(state[key], ref_state[key]), (name, key)
            assert _deterministic_history(result.history) == ref_history, name
            assert result.trained_steps == reference.trained_steps, name

    def test_crash_in_first_epoch_resumes(self, tiny_dataset, tmp_path):
        """The cursor also works when the torn epoch is epoch 0."""
        ckpt = str(tmp_path / "early.npz")
        reference = train_gnn(
            tiny_dataset.train, tiny_dataset.val, _config(prefetch_workers=2)
        )
        resumed = _train_crashed_then_resumed(tiny_dataset, ckpt, 2, crash_at=1)
        ref_state = reference.model.state_dict()
        state = resumed.model.state_dict()
        for key in ref_state:
            assert np.array_equal(state[key], ref_state[key]), key
        assert _deterministic_history(resumed.history) == (
            _deterministic_history(reference.history)
        )

    def test_resume_may_change_worker_count(self, tiny_dataset, tmp_path):
        """prefetch_workers is a pure throughput knob: a checkpoint written
        at workers=0 resumes under workers=4 with identical results."""
        per_epoch = _steps_per_epoch(tiny_dataset)
        crash_at = per_epoch + max(per_epoch // 2, 1)
        ckpt = str(tmp_path / "cross.npz")
        reference = train_gnn(
            tiny_dataset.train, tiny_dataset.val, _config(prefetch_workers=0)
        )
        train_gnn(
            tiny_dataset.train,
            tiny_dataset.val,
            _config(
                prefetch_workers=0,
                checkpoint_path=ckpt,
                checkpoint_every_steps=1,
                max_steps=crash_at,
            ),
        )
        resumed = train_gnn(
            tiny_dataset.train,
            tiny_dataset.val,
            _config(prefetch_workers=4, resume_from=ckpt),
        )
        ref_state = reference.model.state_dict()
        state = resumed.model.state_dict()
        for key in ref_state:
            assert np.array_equal(state[key], ref_state[key]), key


class TestPrefetchTelemetry:
    def test_queue_and_stall_metrics_exported(self, tiny_dataset):
        telemetry = RunTelemetry()
        with use_telemetry(telemetry):
            train_gnn(
                tiny_dataset.train,
                tiny_dataset.val,
                _config(epochs=1, prefetch_workers=2),
            )
        m = telemetry.metrics
        assert m.counter("data.prefetch.steps").value > 0
        assert m.counter("data.prefetch.sample_seconds").value > 0
        assert m.gauge("data.prefetch.workers").value == 2
        assert m.histogram("data.prefetch.queue_depth_dist").count > 0
        assert m.histogram("data.prefetch.stall_s").count > 0
        names = {s.name for s in telemetry.tracer.spans}
        assert "data.prefetch.next" in names
        assert "data.prefetch.sample" in names


class TestMaxStepsValidation:
    def test_mid_epoch_stop_leaves_partial_history(self, tiny_dataset, tmp_path):
        ckpt = str(tmp_path / "partial.npz")
        result = train_gnn(
            tiny_dataset.train,
            tiny_dataset.val,
            _config(
                checkpoint_path=ckpt,
                checkpoint_every_steps=1,
                max_steps=1,
            ),
        )
        assert result.trained_steps >= 1
        assert len(result.history) == 0  # torn epoch: no record written
        assert result.checkpoints_written >= 1

    def test_checkpoint_every_steps_requires_path(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            _config(checkpoint_every_steps=2)
