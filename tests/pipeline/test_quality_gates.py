"""Quality gates: the headline numbers must not silently regress.

Slow-marked integration tests pinning the operating points the README
and EXPERIMENTS.md advertise.
"""

import numpy as np
import pytest

from repro.detector import dataset_config, make_dataset
from repro.pipeline import GNNTrainConfig, train_gnn


@pytest.mark.slow
class TestQualityGates:
    @pytest.fixture(scope="class")
    def ex3(self):
        return make_dataset(dataset_config("ex3_like").with_sizes(4, 2, 0))

    def test_bulk_shadow_reaches_f1_080(self, ex3):
        """The Ex3-like GNN stage at bench scale reaches F1 ≥ 0.80."""
        res = train_gnn(
            ex3.train,
            ex3.val,
            GNNTrainConfig(
                mode="bulk", epochs=6, batch_size=128, hidden=16,
                num_layers=2, mlp_layers=2, depth=2, fanout=4, bulk_k=4,
                lr=2e-3, seed=3,
            ),
        )
        assert res.history.final.val_f1 >= 0.80

    def test_minibatch_margin_over_fullgraph(self, ex3):
        """The Figure-4 margin: ≥ 0.03 F1 at equal epochs."""
        common = dict(
            epochs=6, batch_size=128, hidden=16, num_layers=2,
            mlp_layers=2, depth=2, fanout=4, lr=2e-3, seed=3,
        )
        full = train_gnn(ex3.train, ex3.val, GNNTrainConfig(mode="full", **common))
        mini = train_gnn(
            ex3.train, ex3.val, GNNTrainConfig(mode="bulk", bulk_k=4, **common)
        )
        assert mini.history.final.val_f1 - full.history.final.val_f1 >= 0.03

    def test_bulk_sampler_speedup_over_sequential(self, ex3):
        """Bulk sampling at the paper's d=3/s=6 stays ≥ 2× faster than the
        sequential baseline on Ex3-like graphs."""
        import time

        from repro.sampling import BulkShadowSampler, ShadowSampler

        g = ex3.train[0]
        g.to_csr(symmetric=True)
        rng = np.random.default_rng(0)
        batches = [rng.choice(g.num_nodes, size=128, replace=False) for _ in range(8)]
        seq, bulk = ShadowSampler(3, 6), BulkShadowSampler(3, 6)
        t_seq = t_bulk = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for b in batches:
                seq.sample(g, b, rng)
            t_seq = min(t_seq, time.perf_counter() - t0)
            t0 = time.perf_counter()
            bulk.sample_bulk(g, batches, rng)
            t_bulk = min(t_bulk, time.perf_counter() - t0)
        assert t_seq / t_bulk >= 2.0
