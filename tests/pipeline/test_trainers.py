"""GNN-stage trainers: all three regimes, DDP, skipping, convergence shape."""

import numpy as np
import pytest

from repro.memory import ActivationMemoryModel
from repro.models import IGNNConfig
from repro.pipeline import GNNTrainConfig, derive_pos_weight, train_gnn


SMALL = dict(epochs=2, batch_size=32, hidden=8, num_layers=2, mlp_layers=2, depth=2, fanout=3, seed=0)


@pytest.fixture(scope="module")
def splits(tiny_dataset):
    return tiny_dataset.train, tiny_dataset.val


class TestConfig:
    def test_paper_defaults(self):
        """Section IV-A: batch 256, hidden 64, 30 epochs, 8 layers, d=3, s=6."""
        cfg = GNNTrainConfig()
        assert cfg.batch_size == 256
        assert cfg.hidden == 64
        assert cfg.epochs == 30
        assert cfg.num_layers == 8
        assert cfg.depth == 3
        assert cfg.fanout == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            GNNTrainConfig(mode="nope")
        with pytest.raises(ValueError):
            GNNTrainConfig(allreduce="tree")
        with pytest.raises(ValueError):
            GNNTrainConfig(batch_size=10, world_size=3)
        with pytest.raises(ValueError):
            GNNTrainConfig(bulk_k=0)

    def test_replace(self):
        cfg = GNNTrainConfig().replace(epochs=5)
        assert cfg.epochs == 5 and cfg.batch_size == 256


class TestDerivePosWeight:
    def test_balance_formula(self, splits):
        train, _ = splits
        pos = sum(int(g.edge_labels.sum()) for g in train)
        neg = sum(g.num_edges for g in train) - pos
        assert derive_pos_weight(train) == pytest.approx(max(neg / pos, 1.0))

    def test_floor_at_one(self, chains_graph):
        assert derive_pos_weight([chains_graph]) == 1.0  # all edges positive


class TestRegimes:
    @pytest.mark.parametrize(
        "mode,extra",
        [
            ("full", {}),
            ("shadow", {}),
            ("bulk", {"bulk_k": 2}),
            ("nodewise", {"bulk_k": 2}),
            ("saint", {}),
        ],
    )
    def test_trains_and_records_history(self, splits, mode, extra):
        train, val = splits
        res = train_gnn(train, val, GNNTrainConfig(mode=mode, **SMALL, **extra))
        assert len(res.history) == SMALL["epochs"]
        final = res.history.final
        assert np.isfinite(final.train_loss)
        assert 0.0 <= final.val_precision <= 1.0
        assert 0.0 <= final.val_recall <= 1.0
        assert res.trained_steps > 0

    def test_loss_decreases_over_epochs(self, splits):
        train, val = splits
        res = train_gnn(
            train, val, GNNTrainConfig(mode="bulk", **{**SMALL, "epochs": 4})
        )
        losses = res.history.series("train_loss")
        assert losses[-1] < losses[0]

    def test_minibatch_records_sampling_time(self, splits):
        train, val = splits
        res = train_gnn(train, val, GNNTrainConfig(mode="shadow", **SMALL))
        assert res.timers.total("sampling") > 0
        assert res.timers.total("training") > 0

    def test_full_mode_rejects_multirank(self, splits):
        train, val = splits
        with pytest.raises(ValueError):
            train_gnn(train, val, GNNTrainConfig(mode="full", world_size=2, **{k: v for k, v in SMALL.items() if k != "seed"}))

    def test_unlabelled_graphs_rejected(self, splits):
        train, val = splits
        bad = train[0].edge_mask_subgraph(np.ones(train[0].num_edges, dtype=bool))
        bad.edge_labels = None
        with pytest.raises(ValueError):
            train_gnn([bad], val, GNNTrainConfig(**SMALL))

    def test_empty_training_set_rejected(self, splits):
        _, val = splits
        with pytest.raises(ValueError):
            train_gnn([], val, GNNTrainConfig(**SMALL))


class TestMemorySkipping:
    def test_capacity_skips_large_graphs(self, splits):
        """Section III-B: graphs exceeding the activation budget are
        skipped, reducing trained steps."""
        train, val = splits
        cfg_all = GNNTrainConfig(mode="full", **SMALL)
        res_all = train_gnn(train, val, cfg_all)

        # capacity below the largest graph's footprint
        ignn = IGNNConfig(
            node_features=train[0].num_node_features,
            edge_features=train[0].num_edge_features,
            hidden=SMALL["hidden"],
            num_layers=SMALL["num_layers"],
        )
        mem = ActivationMemoryModel(ignn)
        footprints = [mem.total_bytes(g.num_nodes, g.num_edges) for g in train]
        cap = int(np.median(footprints))
        res_capped = train_gnn(train, val, cfg_all.replace(capacity_bytes=cap))
        assert res_capped.skipped_graphs > 0
        assert res_capped.trained_steps < res_all.trained_steps

    def test_zero_capacity_skips_everything(self, splits):
        train, val = splits
        res = train_gnn(train, val, GNNTrainConfig(mode="full", capacity_bytes=1, **SMALL))
        assert res.trained_steps == 0
        assert res.skipped_graphs == len(train) * SMALL["epochs"]


class TestDDP:
    def test_multirank_matches_singlerank_steps(self, splits):
        train, val = splits
        res1 = train_gnn(train, val, GNNTrainConfig(mode="bulk", bulk_k=2, **SMALL))
        res2 = train_gnn(
            train, val, GNNTrainConfig(mode="bulk", bulk_k=2, world_size=2, **SMALL)
        )
        assert res1.trained_steps == res2.trained_steps

    def test_coalesced_fewer_allreduce_calls(self, splits):
        train, val = splits
        res_pp = train_gnn(
            train,
            val,
            GNNTrainConfig(mode="shadow", world_size=2, allreduce="per_parameter", **SMALL),
        )
        res_co = train_gnn(
            train,
            val,
            GNNTrainConfig(mode="shadow", world_size=2, allreduce="coalesced", **SMALL),
        )
        assert res_co.comm_stats.num_allreduce_calls < res_pp.comm_stats.num_allreduce_calls
        assert res_co.comm_stats.modeled_seconds < res_pp.comm_stats.modeled_seconds

    def test_world1_has_zero_comm_time(self, splits):
        train, val = splits
        res = train_gnn(train, val, GNNTrainConfig(mode="shadow", **SMALL))
        assert res.comm_stats.modeled_seconds == 0.0


@pytest.mark.slow
class TestConvergenceShape:
    def test_minibatch_beats_fullgraph(self, tiny_dataset):
        """The Figure-4 headline: ShaDow minibatch converges to better
        validation F1 than full-graph training under an equal epoch
        budget."""
        train, val = tiny_dataset.train, tiny_dataset.val
        common = dict(epochs=6, hidden=16, num_layers=2, mlp_layers=2, seed=1)
        full = train_gnn(train, val, GNNTrainConfig(mode="full", **common))
        mini = train_gnn(
            train,
            val,
            GNNTrainConfig(mode="bulk", batch_size=64, depth=2, fanout=4, bulk_k=4, **common),
        )
        assert mini.history.final.val_f1 > full.history.final.val_f1
