"""Per-stage diagnostics of a fitted pipeline."""

import numpy as np
import pytest

from repro.pipeline import (
    ExaTrkXPipeline,
    GNNTrainConfig,
    PipelineConfig,
    diagnose_event,
)


@pytest.fixture(scope="module")
def fitted(geometry, small_events):
    config = PipelineConfig(
        embedding_dim=6,
        embedding_epochs=15,
        filter_epochs=15,
        frnn_radius=0.3,
        gnn=GNNTrainConfig(
            mode="bulk", epochs=3, batch_size=64, hidden=16,
            num_layers=2, mlp_layers=2, depth=2, fanout=4, bulk_k=4,
        ),
    )
    pipe = ExaTrkXPipeline(config, geometry)
    pipe.fit(small_events[:4], small_events[4:5])
    return pipe


class TestDiagnostics:
    def test_three_stages_reported(self, fitted, small_events):
        diag = diagnose_event(fitted, small_events[5])
        assert [s.name for s in diag.stages] == [
            "graph construction",
            "filter MLP",
            "interaction GNN",
        ]

    def test_edges_monotone_nonincreasing(self, fitted, small_events):
        diag = diagnose_event(fitted, small_events[5])
        edges = [s.num_edges for s in diag.stages]
        assert edges[0] >= edges[1] >= edges[2]

    def test_purity_improves_downstream(self, fitted, small_events):
        """Each pruning stage should raise edge purity."""
        diag = diagnose_event(fitted, small_events[5])
        purities = [s.purity for s in diag.stages]
        assert purities[2] >= purities[0]

    def test_recall_bounded_by_upstream(self, fitted, small_events):
        diag = diagnose_event(fitted, small_events[5])
        recalls = [s.segment_recall for s in diag.stages]
        assert recalls[0] >= recalls[1] >= recalls[2] - 1e-9

    def test_auc_present_and_discriminative(self, fitted, small_events):
        diag = diagnose_event(fitted, small_events[5])
        assert diag.gnn_auc is not None
        assert diag.gnn_auc > 0.7

    def test_render_lines(self, fitted, small_events):
        lines = diagnose_event(fitted, small_events[5]).render()
        assert any("graph construction" in l for l in lines)
        assert any("tracking:" in l for l in lines)

    def test_unfitted_rejected(self, geometry, small_events):
        pipe = ExaTrkXPipeline(PipelineConfig(), geometry)
        with pytest.raises(RuntimeError):
            diagnose_event(pipe, small_events[0])
