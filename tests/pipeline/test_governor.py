"""Trainer conveniences: LR schedules, early stopping, best-weight restore."""

import numpy as np
import pytest

from repro.pipeline import GNNTrainConfig, evaluate_edge_classifier, train_gnn

SMALL = dict(batch_size=32, hidden=8, num_layers=2, mlp_layers=2, depth=2, fanout=3, seed=0)


@pytest.fixture(scope="module")
def splits(tiny_dataset):
    return tiny_dataset.train, tiny_dataset.val


class TestConfigValidation:
    def test_unknown_scheduler(self):
        with pytest.raises(ValueError):
            GNNTrainConfig(scheduler="exponential")

    def test_bad_patience(self):
        with pytest.raises(ValueError):
            GNNTrainConfig(early_stopping_patience=0)


class TestEarlyStopping:
    def test_patience_can_stop_before_budget(self, splits):
        train, val = splits
        res = train_gnn(
            train,
            val,
            GNNTrainConfig(mode="bulk", epochs=10, early_stopping_patience=1, **SMALL),
        )
        assert len(res.history) <= 10

    def test_no_patience_runs_full_budget(self, splits):
        train, val = splits
        res = train_gnn(train, val, GNNTrainConfig(mode="bulk", epochs=3, **SMALL))
        assert len(res.history) == 3

    def test_unevaluated_epochs_do_not_trigger_stop(self, splits):
        """With eval_every > epochs, F1 is always NaN and patience never
        fires."""
        train, val = splits
        res = train_gnn(
            train,
            val,
            GNNTrainConfig(
                mode="bulk", epochs=3, eval_every=100,
                early_stopping_patience=1, **SMALL,
            ),
        )
        assert len(res.history) == 3


class TestRestoreBest:
    @pytest.mark.parametrize("mode", ["full", "shadow"])
    def test_final_model_scores_best_f1(self, splits, mode):
        train, val = splits
        res = train_gnn(
            train, val, GNNTrainConfig(mode=mode, epochs=5, restore_best=True, **SMALL)
        )
        p, r = evaluate_edge_classifier(res.model, val)
        f1 = 2 * p * r / (p + r) if (p + r) else 0.0
        assert f1 == pytest.approx(res.history.best("val_f1").val_f1, abs=1e-6)

    def test_without_restore_final_weights_kept(self, splits):
        train, val = splits
        res = train_gnn(train, val, GNNTrainConfig(mode="shadow", epochs=4, **SMALL))
        p, r = evaluate_edge_classifier(res.model, val)
        final = res.history.final
        assert p == pytest.approx(final.val_precision, abs=1e-6)
        assert r == pytest.approx(final.val_recall, abs=1e-6)


class TestSchedulers:
    @pytest.mark.parametrize("scheduler", ["cosine", "step"])
    def test_training_completes_with_schedule(self, splits, scheduler):
        train, val = splits
        res = train_gnn(
            train,
            val,
            GNNTrainConfig(mode="bulk", epochs=4, scheduler=scheduler, **SMALL),
        )
        assert len(res.history) == 4
        assert np.isfinite(res.history.final.train_loss)

    def test_ddp_ranks_share_schedule(self, splits):
        """Schedules step every rank's optimiser — replicas stay in sync."""
        train, val = splits
        res = train_gnn(
            train,
            val,
            GNNTrainConfig(
                mode="bulk", epochs=3, scheduler="cosine", world_size=2, **SMALL
            ),
        )
        assert np.isfinite(res.history.final.train_loss)
