"""Pipeline save/load round-trip and multi-seed sweeps."""

import os

import numpy as np
import pytest

from repro.faults import flip_bit, truncate_file
from repro.io.serialization import CheckpointError, atomic_savez
from repro.pipeline import (
    ExaTrkXPipeline,
    GNNTrainConfig,
    PipelineConfig,
    SeedSweepResult,
    load_pipeline,
    run_with_seeds,
    save_pipeline,
)


@pytest.fixture(scope="module")
def fitted(geometry, small_events):
    cfg = PipelineConfig(
        embedding_dim=6,
        embedding_epochs=10,
        filter_epochs=10,
        frnn_radius=0.3,
        gnn=GNNTrainConfig(
            mode="bulk", epochs=2, batch_size=32, hidden=8,
            num_layers=2, mlp_layers=2, depth=2, fanout=3, bulk_k=2,
        ),
    )
    pipe = ExaTrkXPipeline(cfg, geometry)
    pipe.fit(small_events[:4], small_events[4:5])
    return pipe


class TestPersistence:
    def test_round_trip_reconstruction_identical(self, fitted, geometry, small_events, tmp_path):
        path = str(tmp_path / "pipe.npz")
        save_pipeline(fitted, path)
        loaded = load_pipeline(path, geometry)
        before = fitted.reconstruct(small_events[5])
        after = loaded.reconstruct(small_events[5])
        assert len(before) == len(after)
        for a, b in zip(before, after):
            assert np.array_equal(a, b)

    def test_config_survives(self, fitted, geometry, tmp_path):
        path = str(tmp_path / "pipe.npz")
        save_pipeline(fitted, path)
        loaded = load_pipeline(path, geometry)
        assert loaded.config == fitted.config

    def test_all_weights_identical(self, fitted, geometry, tmp_path):
        path = str(tmp_path / "pipe.npz")
        save_pipeline(fitted, path)
        loaded = load_pipeline(path, geometry)
        for (n1, a), (n2, b) in zip(
            fitted.gnn.model.named_parameters(), loaded.gnn.model.named_parameters()
        ):
            assert n1 == n2
            assert np.array_equal(a.data, b.data)
        for (n1, a), (n2, b) in zip(
            fitted.embedding.net.named_parameters(),
            loaded.embedding.net.named_parameters(),
        ):
            assert np.array_equal(a.data, b.data), n1

    def test_unfitted_rejected(self, geometry, tmp_path):
        pipe = ExaTrkXPipeline(PipelineConfig(), geometry)
        with pytest.raises(RuntimeError):
            save_pipeline(pipe, str(tmp_path / "x.npz"))

    def test_creates_directories(self, fitted, tmp_path):
        path = str(tmp_path / "a" / "b" / "pipe.npz")
        save_pipeline(fitted, path)
        assert os.path.exists(path)


@pytest.mark.faults
class TestPersistenceDurability:
    """Torn writes and silent corruption must surface as CheckpointError."""

    def test_save_is_atomic_no_temp_left_behind(self, fitted, tmp_path):
        path = str(tmp_path / "pipe.npz")
        save_pipeline(fitted, path)
        assert os.path.exists(path)
        leftovers = [f for f in os.listdir(tmp_path) if f != "pipe.npz"]
        assert leftovers == []

    def test_truncated_archive_raises_checkpoint_error(self, fitted, geometry, tmp_path):
        path = str(tmp_path / "pipe.npz")
        save_pipeline(fitted, path)
        truncate_file(path, os.path.getsize(path) // 3)
        with pytest.raises(CheckpointError, match="pipe.npz"):
            load_pipeline(path, geometry)

    def test_bit_flip_raises_checkpoint_error(self, fitted, geometry, tmp_path):
        path = str(tmp_path / "pipe.npz")
        save_pipeline(fitted, path)
        flip_bit(path, os.path.getsize(path) // 2, bit=5)
        with pytest.raises(CheckpointError):
            load_pipeline(path, geometry)

    def test_garbage_file_raises_checkpoint_error(self, geometry, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not an archive")
        with pytest.raises(CheckpointError, match="junk.npz"):
            load_pipeline(str(path), geometry)

    def test_missing_file_raises_checkpoint_error(self, geometry, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            load_pipeline(str(tmp_path / "never_saved.npz"), geometry)

    def test_malformed_meta_raises_checkpoint_error(self, fitted, geometry, tmp_path):
        """A 'meta' entry of the wrong length is caught before unpacking."""
        path = str(tmp_path / "pipe.npz")
        save_pipeline(fitted, path)
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["meta"] = payload["meta"][:3]
        atomic_savez(path, payload)
        with pytest.raises(CheckpointError, match="meta"):
            load_pipeline(path, geometry)


class TestSeedSweep:
    @pytest.fixture(scope="class")
    def sweep(self, tiny_dataset):
        cfg = GNNTrainConfig(
            mode="shadow", epochs=2, batch_size=32, hidden=8,
            num_layers=2, mlp_layers=2, depth=2, fanout=3,
        )
        return run_with_seeds(tiny_dataset.train, tiny_dataset.val, cfg, seeds=[0, 1, 2])

    def test_one_result_per_seed(self, sweep):
        assert len(sweep) == 3
        assert sweep.seeds == [0, 1, 2]

    def test_different_seeds_different_models(self, sweep):
        w0 = next(iter(sweep.results[0].model.parameters())).data
        w1 = next(iter(sweep.results[1].model.parameters())).data
        assert not np.array_equal(w0, w1)

    def test_mean_std_consistent(self, sweep):
        finals = [r.history.final.val_f1 for r in sweep.results]
        assert sweep.mean("val_f1") == pytest.approx(np.mean(finals))
        assert sweep.std("val_f1") == pytest.approx(np.std(finals))

    def test_summary_format(self, sweep):
        s = sweep.summary()
        assert set(s) == {"val_precision", "val_recall", "val_f1"}
        assert "±" in s["val_f1"]

    def test_empty_seeds_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            run_with_seeds(
                tiny_dataset.train, tiny_dataset.val, GNNTrainConfig(), seeds=[]
            )
