"""Resumable training: deterministic resume, atomicity, corruption detection.

The contract under test (docs/fault_tolerance.md): training for 2N
epochs and training N epochs → checkpoint → "crash" → resume N epochs
produce *bit-identical* final weights and identical history, in every
training mode — and a damaged checkpoint is always detected as a typed
:class:`CheckpointError`, never a raw ``zipfile``/``KeyError`` surprise.
"""

import os

import numpy as np
import pytest

from repro.faults import FaultPlan, IOFault, RetryPolicy, flip_bit, truncate_file
from repro.pipeline import (
    CheckpointError,
    GNNTrainConfig,
    describe_checkpoint,
    load_trainer_checkpoint,
    train_gnn,
)

SMALL = dict(
    epochs=4,
    batch_size=32,
    hidden=8,
    num_layers=2,
    mlp_layers=2,
    depth=2,
    fanout=3,
    seed=0,
)


def _config(mode, **overrides):
    fields = dict(SMALL, mode=mode)
    if mode != "full":
        fields["world_size"] = 2
    fields.update(overrides)
    return GNNTrainConfig(**fields)


def _deterministic_history(history):
    """The seed-determined record fields (timings are wall-clock)."""
    return [
        (r.epoch, r.train_loss, r.val_precision, r.val_recall)
        for r in history.records
    ]


def _train_interrupted_then_resumed(dataset, mode, ckpt, **overrides):
    """Train N epochs, checkpoint, 'crash', then resume to 2N epochs."""
    half = SMALL["epochs"] // 2
    train_gnn(
        dataset.train,
        dataset.val,
        _config(mode, epochs=half, checkpoint_every=half,
                checkpoint_path=ckpt, **overrides),
    )
    return train_gnn(
        dataset.train,
        dataset.val,
        _config(mode, resume_from=ckpt, **overrides),
    )


class TestResumeEquivalence:
    @pytest.mark.parametrize("mode", ["full", "shadow", "bulk"])
    def test_resume_bit_equals_uninterrupted(self, tiny_dataset, tmp_path, mode):
        ckpt = str(tmp_path / "trainer.npz")
        uninterrupted = train_gnn(tiny_dataset.train, tiny_dataset.val, _config(mode))
        resumed = _train_interrupted_then_resumed(tiny_dataset, mode, ckpt)

        assert resumed.resumed_epoch == SMALL["epochs"] // 2
        reference = uninterrupted.model.state_dict()
        restored = resumed.model.state_dict()
        assert set(reference) == set(restored)
        for name in reference:
            assert np.array_equal(reference[name], restored[name]), name
        assert _deterministic_history(uninterrupted.history) == (
            _deterministic_history(resumed.history)
        )

    def test_resume_preserves_early_stop_and_best_state(self, tiny_dataset, tmp_path):
        """restore_best + patience bookkeeping survives the crash."""
        ckpt = str(tmp_path / "trainer.npz")
        extras = dict(restore_best=True, early_stopping_patience=10)
        uninterrupted = train_gnn(
            tiny_dataset.train, tiny_dataset.val, _config("shadow", **extras)
        )
        resumed = _train_interrupted_then_resumed(
            tiny_dataset, "shadow", ckpt, **extras
        )
        reference = uninterrupted.model.state_dict()
        restored = resumed.model.state_dict()
        for name in reference:
            assert np.array_equal(reference[name], restored[name]), name

    def test_trained_step_counter_continues(self, tiny_dataset, tmp_path):
        ckpt = str(tmp_path / "trainer.npz")
        uninterrupted = train_gnn(
            tiny_dataset.train, tiny_dataset.val, _config("bulk")
        )
        resumed = _train_interrupted_then_resumed(tiny_dataset, "bulk", ckpt)
        assert resumed.trained_steps == uninterrupted.trained_steps

    def test_describe_checkpoint(self, tiny_dataset, tmp_path):
        ckpt = str(tmp_path / "trainer.npz")
        train_gnn(
            tiny_dataset.train,
            tiny_dataset.val,
            _config("shadow", epochs=2, checkpoint_every=2, checkpoint_path=ckpt),
        )
        info = describe_checkpoint(ckpt)
        assert info["epochs_done"] == 2
        assert info["mode"] == "shadow"
        assert info["format_version"] == 1


class TestResumeValidation:
    def _checkpoint(self, dataset, tmp_path, mode="shadow"):
        ckpt = str(tmp_path / "trainer.npz")
        train_gnn(
            dataset.train,
            dataset.val,
            _config(mode, epochs=2, checkpoint_every=2, checkpoint_path=ckpt),
        )
        return ckpt

    def test_missing_checkpoint_raises(self, tiny_dataset, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            train_gnn(
                tiny_dataset.train,
                tiny_dataset.val,
                _config("shadow", resume_from=str(tmp_path / "nope.npz")),
            )

    def test_config_mismatch_refused(self, tiny_dataset, tmp_path):
        ckpt = self._checkpoint(tiny_dataset, tmp_path)
        with pytest.raises(CheckpointError, match="different training configuration"):
            train_gnn(
                tiny_dataset.train,
                tiny_dataset.val,
                _config("shadow", resume_from=ckpt, lr=5e-3),
            )

    def test_mode_mismatch_refused(self, tiny_dataset, tmp_path):
        ckpt = self._checkpoint(tiny_dataset, tmp_path)
        with pytest.raises(CheckpointError, match="mode"):
            train_gnn(
                tiny_dataset.train,
                tiny_dataset.val,
                _config("full", resume_from=ckpt),
            )

    def test_fully_trained_checkpoint_refused(self, tiny_dataset, tmp_path):
        ckpt = self._checkpoint(tiny_dataset, tmp_path)
        with pytest.raises(CheckpointError, match="nothing to resume"):
            load_trainer_checkpoint(ckpt, _config("shadow", epochs=2))


@pytest.mark.faults
class TestCheckpointCorruption:
    def _checkpoint(self, dataset, tmp_path):
        ckpt = str(tmp_path / "trainer.npz")
        train_gnn(
            dataset.train,
            dataset.val,
            _config("shadow", epochs=2, checkpoint_every=2, checkpoint_path=ckpt),
        )
        return ckpt

    def test_truncation_detected(self, tiny_dataset, tmp_path):
        ckpt = self._checkpoint(tiny_dataset, tmp_path)
        truncate_file(ckpt, os.path.getsize(ckpt) // 2)
        with pytest.raises(CheckpointError, match="corrupt"):
            load_trainer_checkpoint(ckpt, _config("shadow"))

    def test_bit_flip_detected(self, tiny_dataset, tmp_path):
        ckpt = self._checkpoint(tiny_dataset, tmp_path)
        # flip one bit in the middle of the archive body
        flip_bit(ckpt, os.path.getsize(ckpt) // 2, bit=3)
        with pytest.raises(CheckpointError):
            load_trainer_checkpoint(ckpt, _config("shadow"))

    def test_garbage_file_detected(self, tiny_dataset, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_trainer_checkpoint(str(path), _config("shadow"))


@pytest.mark.faults
class TestCheckpointWriteFaults:
    def test_transient_write_failure_retried(self, tiny_dataset, tmp_path):
        """One injected I/O failure is absorbed by retry-with-backoff."""
        ckpt = str(tmp_path / "trainer.npz")
        plan = FaultPlan(io_faults=[IOFault(at_write=0, times=1)])
        result = train_gnn(
            tiny_dataset.train,
            tiny_dataset.val,
            _config("shadow", epochs=2, checkpoint_every=2, checkpoint_path=ckpt),
            fault_plan=plan,
        )
        assert result.checkpoints_written == 1
        assert os.path.exists(ckpt)
        # the retried checkpoint is complete and loadable
        load_trainer_checkpoint(ckpt, _config("shadow", epochs=4))

    def test_write_failure_exhaustion_surfaces_oserror(self, tiny_dataset, tmp_path):
        ckpt = str(tmp_path / "trainer.npz")
        plan = FaultPlan(io_faults=[IOFault(at_write=0, times=10)])
        with pytest.raises(OSError, match="injected transient I/O error"):
            train_gnn(
                tiny_dataset.train,
                tiny_dataset.val,
                _config("shadow", epochs=2, checkpoint_every=1, checkpoint_path=ckpt),
                fault_plan=plan,
                retry_policy=RetryPolicy(max_retries=2),
            )
        # atomic write: the failed attempts left nothing behind
        assert not os.path.exists(ckpt)

    def test_failed_write_preserves_previous_checkpoint(self, tiny_dataset, tmp_path):
        """A later failed write never damages the existing checkpoint."""
        ckpt = str(tmp_path / "trainer.npz")
        plan = FaultPlan(io_faults=[IOFault(at_write=1, times=10)])
        with pytest.raises(OSError):
            train_gnn(
                tiny_dataset.train,
                tiny_dataset.val,
                _config("shadow", epochs=4, checkpoint_every=1, checkpoint_path=ckpt),
                fault_plan=plan,
                retry_policy=RetryPolicy(max_retries=1),
            )
        # epoch-1 checkpoint still intact and verifiable
        state = load_trainer_checkpoint(ckpt, _config("shadow", epochs=4))
        assert state.epochs_done == 1
