"""Tracer: span nesting, export round-trips, and the null no-op guard."""

import json
import time

import pytest

from repro.obs import NULL_TRACER, NullTracer, Tracer


class TestNesting:
    def test_parent_child_links(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1
        assert outer.depth == 0
        assert outer.parent_id is None

    def test_close_order_children_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.spans] == ["b", "a"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("s1") as s1:
                pass
            with tracer.span("s2") as s2:
                pass
        assert s1.parent_id == root.span_id == s2.parent_id
        assert {c.name for c in tracer.children_of(root)} == {"s1", "s2"}

    def test_durations_nest(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                time.sleep(0.005)
        assert inner.duration_s > 0
        assert outer.duration_s >= inner.duration_s
        assert outer.start_s <= inner.start_s
        assert outer.end_s >= inner.end_s

    def test_exception_recorded_and_span_closed(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span.attributes["error"] == "ValueError"
        # stack unwound: a new root span has depth 0
        with tracer.span("next") as nxt:
            pass
        assert nxt.depth == 0

    def test_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("s", category="comm", nbytes=128) as span:
            span.set(modeled_s=1.5)
        assert span.attributes == {"nbytes": 128, "modeled_s": 1.5}

    def test_totals_and_counts(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("x"):
                pass
        assert tracer.count("x") == 3
        assert tracer.total("x") >= 0.0
        assert tracer.total("missing") == 0.0

    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            tracer.event("retry", rank=2)
        (event,) = tracer.events
        assert event["name"] == "retry"
        assert event["parent"] == span.span_id
        assert event["attrs"] == {"rank": 2}


class TestExport:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("epoch", category="stage"):
            with tracer.span("sampling", category="stage", roots=4):
                pass
            tracer.event("fault", rank=1)
        return tracer

    def test_jsonl_round_trip(self, tmp_path):
        tracer = self._traced()
        path = str(tmp_path / "trace.jsonl")
        tracer.write_jsonl(path)
        records = [json.loads(line) for line in open(path)]
        spans = [r for r in records if r["type"] == "span"]
        events = [r for r in records if r["type"] == "event"]
        assert {s["name"] for s in spans} == {"epoch", "sampling"}
        by_name = {s["name"]: s for s in spans}
        assert by_name["sampling"]["parent"] == by_name["epoch"]["id"]
        assert by_name["sampling"]["attrs"] == {"roots": 4}
        assert by_name["sampling"]["dur"] == pytest.approx(
            by_name["sampling"]["t1"] - by_name["sampling"]["t0"]
        )
        assert events[0]["name"] == "fault"

    def test_chrome_trace_schema(self):
        tracer = self._traced()
        payload = tracer.to_chrome_trace(metadata={"seed": 7})
        assert payload["otherData"] == {"seed": 7}
        events = payload["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        for e in events:
            if e["ph"] == "M":
                continue
            assert isinstance(e["ts"], float)
            assert "pid" in e and "tid" in e
            if e["ph"] == "X":
                assert e["dur"] >= 0.0
        # microsecond conversion: span duration in seconds * 1e6
        xs = {e["name"]: e for e in events if e["ph"] == "X"}
        epoch = next(s for s in tracer.spans if s.name == "epoch")
        assert xs["epoch"]["dur"] == pytest.approx(epoch.duration_s * 1e6)

    def test_chrome_trace_is_json_serialisable(self, tmp_path):
        path = str(tmp_path / "trace.json")
        self._traced().write_chrome_trace(path)
        payload = json.load(open(path))
        assert payload["traceEvents"]


class TestNullTracer:
    def test_span_is_shared_noop(self):
        tracer = NullTracer()
        s1 = tracer.span("a", nbytes=1)
        s2 = tracer.span("b")
        assert s1 is s2  # no allocation per call
        with s1 as entered:
            entered.set(anything=1)  # swallowed
        assert tracer.spans == ()
        assert tracer.events == ()

    def test_event_is_noop(self):
        NULL_TRACER.event("x", rank=1)
        assert NULL_TRACER.events == ()

    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_overhead_is_negligible(self):
        # The no-op guard: 200k disabled spans must cost well under a
        # second (in practice ~tens of ms) — no timestamps, no buffers.
        start = time.perf_counter()
        for _ in range(200_000):
            with NULL_TRACER.span("hot"):
                pass
        assert time.perf_counter() - start < 2.0
