"""Tracer: span nesting, export round-trips, and the null no-op guard."""

import json
import time

import pytest

from repro.obs import NULL_TRACER, NullTracer, Tracer


class TestNesting:
    def test_parent_child_links(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1
        assert outer.depth == 0
        assert outer.parent_id is None

    def test_close_order_children_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.spans] == ["b", "a"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("s1") as s1:
                pass
            with tracer.span("s2") as s2:
                pass
        assert s1.parent_id == root.span_id == s2.parent_id
        assert {c.name for c in tracer.children_of(root)} == {"s1", "s2"}

    def test_durations_nest(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                time.sleep(0.005)
        assert inner.duration_s > 0
        assert outer.duration_s >= inner.duration_s
        assert outer.start_s <= inner.start_s
        assert outer.end_s >= inner.end_s

    def test_exception_recorded_and_span_closed(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span.attributes["error"] == "ValueError"
        # stack unwound: a new root span has depth 0
        with tracer.span("next") as nxt:
            pass
        assert nxt.depth == 0

    def test_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("s", category="comm", nbytes=128) as span:
            span.set(modeled_s=1.5)
        assert span.attributes == {"nbytes": 128, "modeled_s": 1.5}

    def test_totals_and_counts(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("x"):
                pass
        assert tracer.count("x") == 3
        assert tracer.total("x") >= 0.0
        assert tracer.total("missing") == 0.0

    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            tracer.event("retry", rank=2)
        (event,) = tracer.events
        assert event["name"] == "retry"
        assert event["parent"] == span.span_id
        assert event["attrs"] == {"rank": 2}


class TestExport:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("epoch", category="stage"):
            with tracer.span("sampling", category="stage", roots=4):
                pass
            tracer.event("fault", rank=1)
        return tracer

    def test_jsonl_round_trip(self, tmp_path):
        tracer = self._traced()
        path = str(tmp_path / "trace.jsonl")
        tracer.write_jsonl(path)
        records = [json.loads(line) for line in open(path)]
        spans = [r for r in records if r["type"] == "span"]
        events = [r for r in records if r["type"] == "event"]
        assert {s["name"] for s in spans} == {"epoch", "sampling"}
        by_name = {s["name"]: s for s in spans}
        assert by_name["sampling"]["parent"] == by_name["epoch"]["id"]
        assert by_name["sampling"]["attrs"] == {"roots": 4}
        assert by_name["sampling"]["dur"] == pytest.approx(
            by_name["sampling"]["t1"] - by_name["sampling"]["t0"]
        )
        assert events[0]["name"] == "fault"

    def test_chrome_trace_schema(self):
        tracer = self._traced()
        payload = tracer.to_chrome_trace(metadata={"seed": 7})
        assert payload["otherData"] == {"seed": 7}
        events = payload["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        for e in events:
            if e["ph"] == "M":
                continue
            assert isinstance(e["ts"], float)
            assert "pid" in e and "tid" in e
            if e["ph"] == "X":
                assert e["dur"] >= 0.0
        # microsecond conversion: span duration in seconds * 1e6
        xs = {e["name"]: e for e in events if e["ph"] == "X"}
        epoch = next(s for s in tracer.spans if s.name == "epoch")
        assert xs["epoch"]["dur"] == pytest.approx(epoch.duration_s * 1e6)

    def test_chrome_trace_is_json_serialisable(self, tmp_path):
        path = str(tmp_path / "trace.json")
        self._traced().write_chrome_trace(path)
        payload = json.load(open(path))
        assert payload["traceEvents"]


class TestRemoteIngestion:
    """Cross-process merging: drained worker records land in the driver
    trace as their own pid lane on the driver's timeline."""

    def _remote(self):
        worker = Tracer()
        with worker.span("comm.worker.allreduce", seq=3):
            with worker.span("comm.worker.reduce", step=0):
                pass
        worker.event("comm.worker.aborted", seq=3)
        return worker

    def test_drain_records_snapshots_and_clears(self):
        worker = self._remote()
        spans, events = worker.drain_records()
        assert {s["name"] for s in spans} == {
            "comm.worker.allreduce", "comm.worker.reduce"
        }
        assert events[0]["name"] == "comm.worker.aborted"
        assert worker.spans == [] and worker.events == []
        assert worker.drain_records() == ([], [])

    def test_drain_leaves_open_spans_for_later(self):
        worker = Tracer()
        with worker.span("outer"):
            with worker.span("inner"):
                pass
            spans, _ = worker.drain_records()
            assert [s["name"] for s in spans] == ["inner"]
        spans, _ = worker.drain_records()
        assert [s["name"] for s in spans] == ["outer"]

    def test_pid_zero_is_rejected(self):
        driver = Tracer()
        with pytest.raises(ValueError, match="pid 0"):
            driver.ingest_remote([], [], pid=0, process_name="rank 0")

    def test_time_shift_rebases_remote_lane(self):
        driver = Tracer()
        worker = self._remote()
        spans, events = worker.drain_records()
        t0 = spans[0]["t0"]
        shift = worker.origin - driver.origin
        driver.ingest_remote(
            spans, events, pid=2, process_name="rank 1",
            time_shift=shift, rank=1,
        )
        assert driver.remote_spans[0]["t0"] == pytest.approx(t0 + shift)
        assert driver.remote_spans[0]["pid"] == 2
        assert driver.remote_spans[0]["rank"] == 1
        assert driver.remote_events[0]["pid"] == 2

    def test_chrome_trace_gets_lane_per_process(self):
        driver = Tracer()
        with driver.span("driver.step"):
            pass
        for rank in range(2):
            worker = self._remote()
            spans, events = worker.drain_records()
            driver.ingest_remote(
                spans, events, pid=rank + 1,
                process_name=f"rank {rank}", rank=rank,
            )
        payload = driver.to_chrome_trace()
        events = payload["traceEvents"]
        lane_names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert lane_names[1] == "rank 0" and lane_names[2] == "rank 1"
        xs_by_pid = {}
        for e in events:
            if e["ph"] == "X":
                xs_by_pid.setdefault(e["pid"], set()).add(e["name"])
        assert xs_by_pid[0] == {"driver.step"}
        for pid in (1, 2):
            assert "comm.worker.allreduce" in xs_by_pid[pid]
        instants = [e for e in events if e["ph"] == "i" and e["pid"] == 1]
        assert any(e["name"] == "comm.worker.aborted" for e in instants)

    def test_remote_records_survive_jsonl_export(self, tmp_path):
        driver = Tracer()
        worker = self._remote()
        spans, events = worker.drain_records()
        driver.ingest_remote(
            spans, events, pid=1, process_name="rank 0", rank=0
        )
        path = str(tmp_path / "t.jsonl")
        driver.write_jsonl(path)
        records = [json.loads(line) for line in open(path)]
        remote = [r for r in records if r.get("pid") == 1]
        assert {r["name"] for r in remote if r["type"] == "span"} == {
            "comm.worker.allreduce", "comm.worker.reduce"
        }
        assert all(r.get("rank") == 0 for r in remote if r["type"] == "span")


class TestNullTracer:
    def test_span_is_shared_noop(self):
        tracer = NullTracer()
        s1 = tracer.span("a", nbytes=1)
        s2 = tracer.span("b")
        assert s1 is s2  # no allocation per call
        with s1 as entered:
            entered.set(anything=1)  # swallowed
        assert tracer.spans == ()
        assert tracer.events == ()

    def test_event_is_noop(self):
        NULL_TRACER.event("x", rank=1)
        assert NULL_TRACER.events == ()

    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_overhead_is_negligible(self):
        # The no-op guard: 200k disabled spans must cost well under a
        # second (in practice ~tens of ms) — no timestamps, no buffers.
        start = time.perf_counter()
        for _ in range(200_000):
            with NULL_TRACER.span("hot"):
                pass
        assert time.perf_counter() - start < 2.0
