"""RunTelemetry: metadata, process-wide install, comm-stats wiring, export."""

import json

import numpy as np

from repro.distributed import CommCostModel, SimCommunicator
from repro.obs import (
    NULL_TRACER,
    RunTelemetry,
    config_hash,
    get_telemetry,
    get_tracer,
    git_describe,
    set_telemetry,
    use_telemetry,
)
from repro.pipeline import GNNTrainConfig


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_differs_on_value_change(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_dataclass_and_none(self):
        h = config_hash(GNNTrainConfig(epochs=3))
        assert len(h) == 12
        assert h != config_hash(GNNTrainConfig(epochs=4))
        assert config_hash(None) == "none"

    def test_git_describe_returns_string(self):
        assert isinstance(git_describe(), str) and git_describe()


class TestInstall:
    def test_default_is_disabled(self):
        assert get_telemetry() is None
        assert get_tracer() is NULL_TRACER

    def test_use_telemetry_installs_and_restores(self):
        telemetry = RunTelemetry()
        with use_telemetry(telemetry) as installed:
            assert installed is telemetry
            assert get_telemetry() is telemetry
            assert get_tracer() is telemetry.tracer
        assert get_telemetry() is None
        assert get_tracer() is NULL_TRACER

    def test_use_telemetry_none_is_noop_scope(self):
        with use_telemetry(None):
            assert get_telemetry() is None

    def test_nested_scopes_restore_previous(self):
        outer, inner = RunTelemetry(), RunTelemetry()
        with use_telemetry(outer):
            with use_telemetry(inner):
                assert get_telemetry() is inner
            assert get_telemetry() is outer

    def test_restore_on_exception(self):
        try:
            with use_telemetry(RunTelemetry()):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_telemetry() is None

    def test_set_telemetry_returns_previous(self):
        first = RunTelemetry()
        assert set_telemetry(first) is None
        assert set_telemetry(None) is first


class TestMetadataAndExport:
    def test_for_run_metadata(self):
        telemetry = RunTelemetry.for_run(
            config={"lr": 0.01}, seed=7, world_size=4, command="train"
        )
        meta = telemetry.metadata
        assert meta["config_hash"] == config_hash({"lr": 0.01})
        assert meta["seed"] == 7
        assert meta["world_size"] == 4
        assert meta["command"] == "train"
        assert isinstance(meta["git"], str)

    def test_metrics_snapshot_sections(self):
        telemetry = RunTelemetry.for_run(seed=1)
        telemetry.metrics.counter("calls").add(3)
        snap = telemetry.metrics_snapshot()
        assert set(snap) == {"metadata", "counters", "gauges", "histograms"}
        assert snap["counters"]["calls"] == 3.0

    def test_write_metrics_round_trip(self, tmp_path):
        telemetry = RunTelemetry.for_run(seed=1)
        telemetry.metrics.gauge("g").set(2.5)
        path = str(tmp_path / "m.json")
        telemetry.write_metrics(path)
        snap = json.load(open(path))
        assert snap["gauges"]["g"] == 2.5
        assert snap["metadata"]["seed"] == 1

    def test_write_trace_format_by_extension(self, tmp_path):
        telemetry = RunTelemetry.for_run(seed=1)
        with telemetry.tracer.span("s"):
            pass
        chrome = str(tmp_path / "t.json")
        jsonl = str(tmp_path / "t.jsonl")
        telemetry.write_trace(chrome)
        telemetry.write_trace(jsonl)
        payload = json.load(open(chrome))
        assert payload["otherData"]["seed"] == 1
        records = [json.loads(line) for line in open(jsonl)]
        assert records[0]["name"] == "s"


class TestCommStatsWiring:
    def test_comm_stats_land_in_gauges(self):
        comm = SimCommunicator(
            world_size=2, cost_model=CommCostModel(alpha=1e-5, beta=1e-9)
        )
        comm.allreduce([np.ones(4), np.full(4, 2.0)])
        comm.broadcast(np.ones(8))
        telemetry = RunTelemetry()
        telemetry.record_comm_stats(comm.stats)
        gauges = telemetry.metrics_snapshot()["gauges"]
        assert gauges["comm.num_allreduce_calls"] == 1
        assert gauges["comm.num_broadcast_calls"] == 1
        assert gauges["comm.bytes_broadcast"] > 0
        assert gauges["comm.modeled_seconds"] > 0
        assert "comm.num_retries" in gauges
        assert "comm.retry_backoff_seconds" in gauges
        assert "comm.rank_failures_count" in gauges
