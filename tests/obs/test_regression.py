"""Perf-regression gate: baselines, tolerance bands, and CLI exit codes."""

import json

import pytest

from repro.cli import main as cli_main
from repro.obs import (
    BASELINE_SCHEMA,
    RunTelemetry,
    diff_profiles,
    load_baseline,
    load_phase_totals,
    record_baseline,
    use_telemetry,
    write_baseline,
)


@pytest.fixture
def trace_path(tmp_path):
    telemetry = RunTelemetry.for_run(seed=1)
    tracer = telemetry.tracer
    with tracer.span("epoch"):
        with tracer.span("sampling"):
            pass
        with tracer.span("training"):
            pass
    path = str(tmp_path / "run.trace.json")
    telemetry.write_trace(path)
    return path


def _scaled_trace(trace_path, tmp_path, factor, drop=None):
    """Copy of a chrome trace with every span duration scaled by factor."""
    with open(trace_path) as fh:
        trace = json.load(fh)
    events = []
    for ev in trace["traceEvents"]:
        if ev.get("ph") == "X":
            if drop and ev["name"] == drop:
                continue
            ev = dict(ev, dur=float(ev["dur"]) * factor)
        events.append(ev)
    trace["traceEvents"] = events
    out = str(tmp_path / f"scaled_{factor}.trace.json")
    with open(out, "w") as fh:
        json.dump(trace, fh)
    return out


class TestBaseline:
    def test_record_schema_and_phases(self, trace_path):
        baseline = record_baseline(trace_path, metadata={"bench": "unit"})
        assert baseline["schema"] == BASELINE_SCHEMA
        assert set(baseline["phases"]) == {"epoch", "sampling", "training"}
        for agg in baseline["phases"].values():
            assert set(agg) == {"total_s", "count", "mean_s"}
            assert agg["count"] >= 1
        assert baseline["tolerance"]["default"] == 3.0
        assert baseline["metadata"] == {"bench": "unit"}

    def test_tolerance_must_be_positive(self, trace_path):
        with pytest.raises(ValueError):
            record_baseline(trace_path, tolerance=0.0)

    def test_write_load_round_trip(self, trace_path, tmp_path):
        baseline = record_baseline(trace_path, per_phase={"epoch": 5.0})
        path = str(tmp_path / "b.json")
        write_baseline(baseline, path)
        assert load_baseline(path) == baseline

    def test_load_rejects_non_baseline(self, tmp_path):
        bogus = tmp_path / "b.json"
        bogus.write_text('{"schema": "something/else"}')
        with pytest.raises(ValueError, match="baseline"):
            load_baseline(str(bogus))

    def test_load_phase_totals_accepts_trace_or_baseline(
        self, trace_path, tmp_path
    ):
        baseline = record_baseline(trace_path)
        bpath = str(tmp_path / "b.json")
        write_baseline(baseline, bpath)
        from_trace = load_phase_totals(trace_path)
        from_baseline = load_phase_totals(bpath)
        assert set(from_trace) == set(from_baseline)
        for name in from_trace:
            assert from_trace[name]["total_s"] == pytest.approx(
                from_baseline[name]["total_s"]
            )


class TestDiffProfiles:
    def test_identical_profiles_pass(self, trace_path):
        baseline = record_baseline(trace_path)
        totals = load_phase_totals(trace_path)
        report, failures = diff_profiles(totals, baseline)
        assert failures == []
        assert any("ok" in line for line in report[1:])

    def test_slowdown_past_tolerance_trips(self, trace_path, tmp_path):
        baseline = record_baseline(trace_path, tolerance=2.0)
        slow = _scaled_trace(trace_path, tmp_path, 3.0)
        _, failures = diff_profiles(load_phase_totals(slow), baseline)
        assert len(failures) == 3  # every phase regressed

    def test_speedup_never_trips(self, trace_path, tmp_path):
        baseline = record_baseline(trace_path, tolerance=1.01)
        fast = _scaled_trace(trace_path, tmp_path, 0.25)
        _, failures = diff_profiles(load_phase_totals(fast), baseline)
        assert failures == []

    def test_missing_phase_fails(self, trace_path, tmp_path):
        baseline = record_baseline(trace_path)
        pruned = _scaled_trace(trace_path, tmp_path, 1.0, drop="sampling")
        _, failures = diff_profiles(load_phase_totals(pruned), baseline)
        assert any("sampling" in f and "missing" in f for f in failures)

    def test_new_phase_informational_not_failing(self, trace_path):
        baseline = record_baseline(trace_path)
        totals = load_phase_totals(trace_path)
        totals["brand.new"] = {"total_s": 9.0, "count": 1, "mean_s": 9.0}
        report, failures = diff_profiles(totals, baseline)
        assert failures == []
        assert any("brand.new" in line and "not gated" in line for line in report)

    def test_per_phase_tolerance_overrides_default(self, trace_path, tmp_path):
        # default band would trip at 3x; the loose per-phase band for
        # every phase lets a 4x slowdown through
        totals = load_phase_totals(trace_path)
        baseline = record_baseline(
            trace_path, per_phase={name: 10.0 for name in totals}
        )
        slow = _scaled_trace(trace_path, tmp_path, 4.0)
        _, failures = diff_profiles(load_phase_totals(slow), baseline)
        assert failures == []

    def test_cli_tolerance_override_beats_per_phase(self, trace_path, tmp_path):
        totals = load_phase_totals(trace_path)
        baseline = record_baseline(
            trace_path, per_phase={name: 100.0 for name in totals}
        )
        slow = _scaled_trace(trace_path, tmp_path, 4.0)
        _, failures = diff_profiles(
            load_phase_totals(slow), baseline, tolerance_override=2.0
        )
        assert len(failures) == 3

    def test_zero_baseline_phase(self, trace_path):
        baseline = record_baseline(trace_path)
        baseline["phases"]["sampling"]["total_s"] = 0.0
        totals = load_phase_totals(trace_path)
        # nonzero candidate over a zero baseline is an infinite ratio
        _, failures = diff_profiles(totals, baseline)
        assert any("sampling" in f for f in failures)
        totals["sampling"] = {"total_s": 0.0, "count": 1, "mean_s": 0.0}
        _, failures = diff_profiles(totals, baseline)
        assert not any("sampling" in f for f in failures)


class TestCli:
    def test_baseline_then_self_diff_exits_zero(self, trace_path, tmp_path):
        bpath = str(tmp_path / "b.json")
        assert cli_main(["telemetry", "baseline", trace_path, "-o", bpath]) == 0
        assert cli_main(["telemetry", "diff", trace_path, bpath]) == 0
        # baseline self-diff: machine-independent, used by CI obs-smoke
        assert cli_main(["telemetry", "diff", bpath, bpath]) == 0

    def test_diff_exits_one_on_regression(self, trace_path, tmp_path, capsys):
        bpath = str(tmp_path / "b.json")
        assert cli_main(["telemetry", "baseline", trace_path, "-o", bpath]) == 0
        slow = _scaled_trace(trace_path, tmp_path, 4.0)
        assert cli_main(["telemetry", "diff", slow, bpath]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().err

    def test_diff_exits_two_on_bad_input(self, trace_path, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        assert cli_main(["telemetry", "diff", trace_path, str(bogus)]) == 2
        assert cli_main(["telemetry", "baseline", str(bogus), "-o",
                         str(tmp_path / "o.json")]) == 2

    def test_checked_in_baselines_self_diff(self):
        import os

        root = os.path.join(os.path.dirname(__file__), "..", "..")
        for bench in ("bench_fig3_epoch_time", "bench_serving"):
            path = os.path.join(
                root, "benchmarks", "results", "telemetry", "baselines",
                f"{bench}.json",
            )
            assert os.path.isfile(path), f"missing checked-in baseline {bench}"
            baseline = load_baseline(path)
            _, failures = diff_profiles(load_phase_totals(path), baseline)
            assert failures == []
