"""Trace summarisation + traced training integration (the Figure-3 view)."""

import pytest

from repro.obs import (
    RunTelemetry,
    load_trace,
    phase_totals,
    summarize_trace,
    use_telemetry,
)
from repro.pipeline import GNNTrainConfig, train_gnn

SMALL = dict(
    epochs=2, batch_size=32, hidden=8, num_layers=2, mlp_layers=2,
    depth=2, fanout=3, seed=0,
)


@pytest.fixture(scope="module")
def splits(tiny_dataset):
    return tiny_dataset.train, tiny_dataset.val


@pytest.fixture(scope="module")
def traced_run(tiny_dataset):
    """One traced shadow-mode training shared by the integration tests."""
    telemetry = RunTelemetry.for_run(seed=0, world_size=2)
    with use_telemetry(telemetry):
        result = train_gnn(
            tiny_dataset.train,
            tiny_dataset.val,
            GNNTrainConfig(mode="shadow", world_size=2, **SMALL),
        )
    return telemetry, result


class TestPhaseTotals:
    def _synthetic(self, tmp_path, fmt):
        telemetry = RunTelemetry.for_run(seed=3)
        tracer = telemetry.tracer
        with tracer.span("epoch"):
            with tracer.span("sampling"):
                pass
            with tracer.span("sampling"):
                pass
            with tracer.span("training"):
                pass
        path = str(tmp_path / ("t.jsonl" if fmt == "jsonl" else "t.json"))
        telemetry.write_trace(path)
        return path

    @pytest.mark.parametrize("fmt", ["chrome", "jsonl"])
    def test_load_trace_both_formats(self, tmp_path, fmt):
        path = self._synthetic(tmp_path, fmt)
        spans = load_trace(path)
        assert {s.name for s in spans} == {"epoch", "sampling", "training"}
        totals = phase_totals(spans)
        assert totals["sampling"]["count"] == 2
        assert totals["epoch"]["total_s"] >= totals["training"]["total_s"]
        assert totals["sampling"]["mean_s"] == pytest.approx(
            totals["sampling"]["total_s"] / 2
        )

    def test_load_trace_rejects_empty_and_unknown(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        with pytest.raises(ValueError):
            load_trace(str(empty))
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"not_a_trace": []}')
        with pytest.raises(ValueError):
            load_trace(str(bogus))

    def test_summarize_renders_table_and_split(self, tmp_path):
        path = self._synthetic(tmp_path, "chrome")
        lines = summarize_trace(path)
        assert lines[0].startswith("trace:")
        assert "phase" in lines[1]
        assert any(line.startswith("sampling") for line in lines)
        assert lines[-1].startswith("Figure-3 split: sampling")


class TestMultiLane:
    """Merged multi-process traces: per-rank grouping, union wall-clock,
    and JSONL <-> Chrome schema round-tripping of pid/rank tags."""

    def _merged_telemetry(self):
        """Driver telemetry with two ingested worker lanes."""
        from repro.obs import Tracer

        telemetry = RunTelemetry.for_run(seed=0)
        driver = telemetry.tracer
        with driver.span("epoch"):
            pass
        for rank in range(2):
            worker = Tracer()
            with worker.span("comm.worker.allreduce", seq=0):
                pass
            spans, events = worker.drain_records()
            driver.ingest_remote(
                spans, events, pid=rank + 1,
                process_name=f"rank {rank}",
                time_shift=worker.origin - driver.origin,
                rank=rank,
            )
        return telemetry

    @pytest.mark.parametrize("fmt", ["chrome", "jsonl"])
    def test_pid_rank_round_trip_both_formats(self, tmp_path, fmt):
        telemetry = self._merged_telemetry()
        path = str(tmp_path / ("t.jsonl" if fmt == "jsonl" else "t.json"))
        telemetry.write_trace(path)
        spans = load_trace(path)
        by_lane = {}
        for s in spans:
            by_lane.setdefault((s.pid, s.rank), set()).add(s.name)
        assert by_lane[(0, None)] == {"epoch"}
        assert by_lane[(1, 0)] == {"comm.worker.allreduce"}
        assert by_lane[(2, 1)] == {"comm.worker.allreduce"}

    def test_formats_agree_on_phase_totals(self, tmp_path):
        telemetry = self._merged_telemetry()
        chrome = str(tmp_path / "t.json")
        jsonl = str(tmp_path / "t.jsonl")
        telemetry.write_trace(chrome)
        telemetry.write_trace(jsonl)
        t_chrome = phase_totals(load_trace(chrome), per_rank=True)
        t_jsonl = phase_totals(load_trace(jsonl), per_rank=True)
        assert set(t_chrome) == set(t_jsonl)
        for key in t_chrome:
            assert t_chrome[key]["count"] == t_jsonl[key]["count"]
            # chrome stores microseconds; round-trip agrees to ~1 us
            assert t_chrome[key]["total_s"] == pytest.approx(
                t_jsonl[key]["total_s"], abs=1e-5
            )

    def test_per_rank_totals_key_by_lane(self, tmp_path):
        telemetry = self._merged_telemetry()
        path = str(tmp_path / "t.json")
        telemetry.write_trace(path)
        spans = load_trace(path)
        flat = phase_totals(spans)
        assert flat["comm.worker.allreduce"]["count"] == 2  # pooled
        per_rank = phase_totals(spans, per_rank=True)
        assert per_rank["r0/comm.worker.allreduce"]["count"] == 1
        assert per_rank["r1/comm.worker.allreduce"]["count"] == 1
        assert per_rank["driver/epoch"]["count"] == 1

    def test_wall_clock_is_union_of_lane_intervals(self):
        from repro.obs.summarize import SpanRecord, _wall_seconds

        def span(start, dur, pid, rank):
            return SpanRecord(
                name="x", category="span", start_s=start, duration_s=dur,
                depth=0, pid=pid, rank=rank,
            )

        # two fully overlapping lanes: wall is one lane's extent
        overlapped = [span(0.0, 2.0, 1, 0), span(0.0, 2.0, 2, 1)]
        assert _wall_seconds(overlapped) == pytest.approx(2.0)
        # staggered lanes with a shared middle: union, not sum or extent
        staggered = [span(0.0, 2.0, 1, 0), span(1.0, 2.0, 2, 1)]
        assert _wall_seconds(staggered) == pytest.approx(3.0)
        # disjoint busy windows: the idle gap is not wall time
        gapped = [span(0.0, 1.0, 1, 0), span(5.0, 1.0, 2, 1)]
        assert _wall_seconds(gapped) == pytest.approx(2.0)
        assert _wall_seconds([]) == 0.0

    def test_summarize_renders_lane_count_and_per_rank_rows(self, tmp_path):
        telemetry = self._merged_telemetry()
        path = str(tmp_path / "t.json")
        telemetry.write_trace(path)
        lines = summarize_trace(path)
        assert "3 lanes" in lines[0]
        lines = summarize_trace(path, per_rank=True)
        assert any(line.startswith("r0/comm.worker.allreduce") for line in lines)
        assert any(line.startswith("driver/epoch") for line in lines)


class TestTracedTraining:
    def test_shadow_mode_emits_stage_spans_per_epoch(self, traced_run):
        telemetry, _ = traced_run
        tracer = telemetry.tracer
        epochs = SMALL["epochs"]
        assert tracer.count("epoch") == epochs
        assert tracer.count("sampling") >= epochs
        assert tracer.count("training") >= epochs
        # the acceptance nesting: epoch -> batch -> {forward, backward, allreduce}
        for name in ("batch", "forward", "backward", "allreduce"):
            assert tracer.count(name) > 0, name
        batch = tracer.find("batch")[0]
        child_names = {c.name for c in tracer.children_of(batch)}
        assert {"sampling", "training"} <= child_names
        epoch = tracer.find("epoch")[0]
        assert {c.name for c in tracer.children_of(epoch)} >= {"batch"}
        # sampler internals are traced beneath the sampling stage
        assert tracer.count("sampler.sample") > 0
        assert tracer.count("comm.allreduce") > 0

    def test_trace_totals_match_stagetimer_within_1pct(self, traced_run, tmp_path):
        """Acceptance: the summarized sampling/training split must agree
        with the StageTimer totals the training result reports."""
        telemetry, result = traced_run
        path = str(tmp_path / "t.json")
        telemetry.write_trace(path)
        totals = phase_totals(load_trace(path))
        timer_totals = result.timers.totals()
        for stage in ("sampling", "training"):
            trace_s = totals[stage]["total_s"]
            timer_s = timer_totals[stage]
            assert trace_s == pytest.approx(timer_s, rel=0.01), stage

    def test_training_metrics_recorded(self, traced_run):
        telemetry, result = traced_run
        snap = telemetry.metrics_snapshot()
        gauges = snap["gauges"]
        assert gauges["train.epochs"] == SMALL["epochs"]
        assert gauges["train.steps"] == result.trained_steps
        assert gauges["comm.num_allreduce_calls"] > 0
        assert snap["histograms"]["train.epoch_seconds"]["count"] == SMALL["epochs"]
        assert gauges["train.stage_seconds.sampling"] > 0
