"""Trace summarisation + traced training integration (the Figure-3 view)."""

import pytest

from repro.obs import (
    RunTelemetry,
    load_trace,
    phase_totals,
    summarize_trace,
    use_telemetry,
)
from repro.pipeline import GNNTrainConfig, train_gnn

SMALL = dict(
    epochs=2, batch_size=32, hidden=8, num_layers=2, mlp_layers=2,
    depth=2, fanout=3, seed=0,
)


@pytest.fixture(scope="module")
def splits(tiny_dataset):
    return tiny_dataset.train, tiny_dataset.val


@pytest.fixture(scope="module")
def traced_run(tiny_dataset):
    """One traced shadow-mode training shared by the integration tests."""
    telemetry = RunTelemetry.for_run(seed=0, world_size=2)
    with use_telemetry(telemetry):
        result = train_gnn(
            tiny_dataset.train,
            tiny_dataset.val,
            GNNTrainConfig(mode="shadow", world_size=2, **SMALL),
        )
    return telemetry, result


class TestPhaseTotals:
    def _synthetic(self, tmp_path, fmt):
        telemetry = RunTelemetry.for_run(seed=3)
        tracer = telemetry.tracer
        with tracer.span("epoch"):
            with tracer.span("sampling"):
                pass
            with tracer.span("sampling"):
                pass
            with tracer.span("training"):
                pass
        path = str(tmp_path / ("t.jsonl" if fmt == "jsonl" else "t.json"))
        telemetry.write_trace(path)
        return path

    @pytest.mark.parametrize("fmt", ["chrome", "jsonl"])
    def test_load_trace_both_formats(self, tmp_path, fmt):
        path = self._synthetic(tmp_path, fmt)
        spans = load_trace(path)
        assert {s.name for s in spans} == {"epoch", "sampling", "training"}
        totals = phase_totals(spans)
        assert totals["sampling"]["count"] == 2
        assert totals["epoch"]["total_s"] >= totals["training"]["total_s"]
        assert totals["sampling"]["mean_s"] == pytest.approx(
            totals["sampling"]["total_s"] / 2
        )

    def test_load_trace_rejects_empty_and_unknown(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        with pytest.raises(ValueError):
            load_trace(str(empty))
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"not_a_trace": []}')
        with pytest.raises(ValueError):
            load_trace(str(bogus))

    def test_summarize_renders_table_and_split(self, tmp_path):
        path = self._synthetic(tmp_path, "chrome")
        lines = summarize_trace(path)
        assert lines[0].startswith("trace:")
        assert "phase" in lines[1]
        assert any(line.startswith("sampling") for line in lines)
        assert lines[-1].startswith("Figure-3 split: sampling")


class TestTracedTraining:
    def test_shadow_mode_emits_stage_spans_per_epoch(self, traced_run):
        telemetry, _ = traced_run
        tracer = telemetry.tracer
        epochs = SMALL["epochs"]
        assert tracer.count("epoch") == epochs
        assert tracer.count("sampling") >= epochs
        assert tracer.count("training") >= epochs
        # the acceptance nesting: epoch -> batch -> {forward, backward, allreduce}
        for name in ("batch", "forward", "backward", "allreduce"):
            assert tracer.count(name) > 0, name
        batch = tracer.find("batch")[0]
        child_names = {c.name for c in tracer.children_of(batch)}
        assert {"sampling", "training"} <= child_names
        epoch = tracer.find("epoch")[0]
        assert {c.name for c in tracer.children_of(epoch)} >= {"batch"}
        # sampler internals are traced beneath the sampling stage
        assert tracer.count("sampler.sample") > 0
        assert tracer.count("comm.allreduce") > 0

    def test_trace_totals_match_stagetimer_within_1pct(self, traced_run, tmp_path):
        """Acceptance: the summarized sampling/training split must agree
        with the StageTimer totals the training result reports."""
        telemetry, result = traced_run
        path = str(tmp_path / "t.json")
        telemetry.write_trace(path)
        totals = phase_totals(load_trace(path))
        timer_totals = result.timers.totals()
        for stage in ("sampling", "training"):
            trace_s = totals[stage]["total_s"]
            timer_s = timer_totals[stage]
            assert trace_s == pytest.approx(timer_s, rel=0.01), stage

    def test_training_metrics_recorded(self, traced_run):
        telemetry, result = traced_run
        snap = telemetry.metrics_snapshot()
        gauges = snap["gauges"]
        assert gauges["train.epochs"] == SMALL["epochs"]
        assert gauges["train.steps"] == result.trained_steps
        assert gauges["comm.num_allreduce_calls"] > 0
        assert snap["histograms"]["train.epoch_seconds"]["count"] == SMALL["epochs"]
        assert gauges["train.stage_seconds.sampling"] > 0
