"""Metrics: counters, gauges, streaming histogram quantiles, registry."""

import random

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter("calls")
        c.add()
        c.add(4)
        assert c.value == 5.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("calls").add(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("level")
        g.set(3)
        g.set(7.5)
        assert g.value == 7.5


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("lat")
        for v in [2.0, 4.0, 6.0]:
            h.observe(v)
        assert h.count == 3
        assert h.sum == 12.0
        assert h.min == 2.0
        assert h.max == 6.0
        assert h.mean == 4.0

    def test_quantiles_uniform(self):
        h = Histogram("lat")
        for v in range(101):  # 0..100
            h.observe(float(v))
        assert h.quantile(0.0) == 0.0
        assert h.quantile(1.0) == 100.0
        assert h.quantile(0.5) == pytest.approx(50.0)
        assert h.quantile(0.95) == pytest.approx(95.0)

    def test_quantile_interpolates(self):
        h = Histogram("lat")
        h.observe(0.0)
        h.observe(10.0)
        assert h.quantile(0.25) == pytest.approx(2.5)

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)

    def test_empty_summary(self):
        s = Histogram("lat").summary()
        assert s["count"] == 0
        assert s["p95"] == 0.0

    def test_summary_keys(self):
        h = Histogram("lat")
        h.observe(1.0)
        assert set(h.summary()) == {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99"
        }

    def test_reservoir_bounds_memory_keeps_exact_aggregates(self):
        h = Histogram("lat", max_samples=64)
        rng = random.Random(0)
        values = [rng.random() for _ in range(10_000)]
        for v in values:
            h.observe(v)
        assert h.count == 10_000
        assert h.sum == pytest.approx(sum(values))
        assert h.min == min(values)
        assert h.max == max(values)
        assert len(h._samples) <= 2 * 64
        # decimated reservoir still tracks the true distribution
        assert h.quantile(0.5) == pytest.approx(0.5, abs=0.15)

    def test_max_samples_validated(self):
        with pytest.raises(ValueError):
            Histogram("lat", max_samples=1)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_cross_kind_name_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_to_dict_sections_and_sorting(self):
        reg = MetricsRegistry()
        reg.counter("z.calls").add(2)
        reg.counter("a.calls").add(1)
        reg.gauge("level").set(9)
        reg.histogram("lat").observe(0.5)
        snap = reg.to_dict()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert list(snap["counters"]) == ["a.calls", "z.calls"]
        assert snap["gauges"]["level"] == 9.0
        assert snap["histograms"]["lat"]["count"] == 1
