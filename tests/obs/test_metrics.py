"""Metrics: counters, gauges, streaming histogram quantiles, registry,
thread safety under concurrent instrumentation, and the cross-process
drain/merge protocol behind per-rank worker telemetry."""

import random
import threading

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter("calls")
        c.add()
        c.add(4)
        assert c.value == 5.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("calls").add(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("level")
        g.set(3)
        g.set(7.5)
        assert g.value == 7.5


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("lat")
        for v in [2.0, 4.0, 6.0]:
            h.observe(v)
        assert h.count == 3
        assert h.sum == 12.0
        assert h.min == 2.0
        assert h.max == 6.0
        assert h.mean == 4.0

    def test_quantiles_uniform(self):
        h = Histogram("lat")
        for v in range(101):  # 0..100
            h.observe(float(v))
        assert h.quantile(0.0) == 0.0
        assert h.quantile(1.0) == 100.0
        assert h.quantile(0.5) == pytest.approx(50.0)
        assert h.quantile(0.95) == pytest.approx(95.0)

    def test_quantile_interpolates(self):
        h = Histogram("lat")
        h.observe(0.0)
        h.observe(10.0)
        assert h.quantile(0.25) == pytest.approx(2.5)

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)

    def test_empty_summary(self):
        s = Histogram("lat").summary()
        assert s["count"] == 0
        assert s["p95"] == 0.0

    def test_summary_keys(self):
        h = Histogram("lat")
        h.observe(1.0)
        assert set(h.summary()) == {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99"
        }

    def test_reservoir_bounds_memory_keeps_exact_aggregates(self):
        h = Histogram("lat", max_samples=64)
        rng = random.Random(0)
        values = [rng.random() for _ in range(10_000)]
        for v in values:
            h.observe(v)
        assert h.count == 10_000
        assert h.sum == pytest.approx(sum(values))
        assert h.min == min(values)
        assert h.max == max(values)
        assert len(h._samples) <= 2 * 64
        # decimated reservoir still tracks the true distribution
        assert h.quantile(0.5) == pytest.approx(0.5, abs=0.15)

    def test_max_samples_validated(self):
        with pytest.raises(ValueError):
            Histogram("lat", max_samples=1)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_cross_kind_name_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_to_dict_sections_and_sorting(self):
        reg = MetricsRegistry()
        reg.counter("z.calls").add(2)
        reg.counter("a.calls").add(1)
        reg.gauge("level").set(9)
        reg.histogram("lat").observe(0.5)
        snap = reg.to_dict()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert list(snap["counters"]) == ["a.calls", "z.calls"]
        assert snap["gauges"]["level"] == 9.0
        assert snap["histograms"]["lat"]["count"] == 1


class TestConcurrency:
    """Instruments are shared between the exporter's scrape thread, the
    engine's worker threads, and the training loop: concurrent updates
    must never lose increments or corrupt histogram aggregates."""

    WORKERS = 8
    PER_WORKER = 2_000

    def _hammer(self, fn):
        barrier = threading.Barrier(self.WORKERS)

        def run():
            barrier.wait()
            for i in range(self.PER_WORKER):
                fn(i)

        threads = [threading.Thread(target=run) for _ in range(self.WORKERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_increments_are_not_lost(self):
        c = Counter("calls")
        self._hammer(lambda i: c.add(1))
        assert c.value == self.WORKERS * self.PER_WORKER

    def test_histogram_aggregates_stay_exact(self):
        h = Histogram("lat", max_samples=128)
        self._hammer(lambda i: h.observe(float(i)))
        assert h.count == self.WORKERS * self.PER_WORKER
        per_worker = self.PER_WORKER * (self.PER_WORKER - 1) / 2
        assert h.sum == pytest.approx(self.WORKERS * per_worker)
        assert h.min == 0.0
        assert h.max == float(self.PER_WORKER - 1)

    def test_registry_creation_races_return_one_instrument(self):
        reg = MetricsRegistry()
        seen = []
        lock = threading.Lock()

        def create(i):
            inst = reg.counter("shared")
            inst.add(1)
            with lock:
                seen.append(inst)

        self._hammer(create)
        assert len(set(map(id, seen))) == 1
        assert reg.counter("shared").value == self.WORKERS * self.PER_WORKER


class TestDrainMerge:
    """Worker registries ship deltas to the driver at epoch boundaries:
    drain must atomically snapshot-and-reset so repeated flushes never
    double-count, and merge must reproduce the exact aggregates."""

    def test_counter_drain_resets(self):
        c = Counter("calls")
        c.add(5)
        assert c.drain() == 5.0
        assert c.value == 0.0
        assert c.drain() == 0.0

    def test_histogram_state_merge_is_exact(self):
        src = Histogram("lat")
        for v in (1.0, 2.0, 3.0):
            src.observe(v)
        dst = Histogram("lat")
        dst.observe(10.0)
        dst.merge_state(src.state())
        assert dst.count == 4
        assert dst.sum == 16.0
        assert dst.min == 1.0 and dst.max == 10.0

    def test_registry_drain_state_resets_counters(self):
        reg = MetricsRegistry()
        reg.counter("a").add(3)
        reg.histogram("h").observe(1.0)
        state = reg.drain_state()
        assert state["counters"]["a"] == 3.0
        assert reg.counter("a").value == 0.0
        # second drain ships nothing: no double counting across epochs
        second = reg.drain_state()
        assert second["counters"].get("a", 0.0) == 0.0
        assert second["histograms"].get("h", {}).get("count", 0) == 0

    def test_merge_state_accumulates_and_suffixes_gauges(self):
        driver = MetricsRegistry()
        driver.counter("comm.worker.heartbeats").add(2)
        for rank in range(2):
            worker = MetricsRegistry()
            worker.counter("comm.worker.heartbeats").add(5)
            worker.gauge("mem.rss").set(100.0 + rank)
            worker.histogram("wait_ms").observe(float(rank + 1))
            driver.merge_state(
                worker.drain_state(), gauge_suffix=f".rank{rank}"
            )
        snap = driver.to_dict()
        assert snap["counters"]["comm.worker.heartbeats"] == 12.0
        assert snap["gauges"]["mem.rss.rank0"] == 100.0
        assert snap["gauges"]["mem.rss.rank1"] == 101.0
        assert snap["histograms"]["wait_ms"]["count"] == 2
        assert snap["histograms"]["wait_ms"]["sum"] == 3.0
