"""Live exposition: Prometheus rendering and the /metrics + /health server."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    MetricsExporter,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.exporter import sanitize_metric_name


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode()


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("serve.latency_ms") == "serve_latency_ms"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("3d.hits") == "_3d_hits"

    def test_colons_allowed(self):
        assert sanitize_metric_name("ns:metric") == "ns:metric"

    def test_empty_name(self):
        assert sanitize_metric_name("") == "_"


class TestRenderPrometheus:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests.completed").add(7)
        reg.gauge("train.epochs").set(2)
        h = reg.histogram("serve.latency_ms")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        return reg.to_dict()

    def test_counter_and_gauge_samples(self):
        text = render_prometheus(self._snapshot())
        assert "# TYPE serve_requests_completed counter" in text
        assert "serve_requests_completed 7.0" in text
        assert "# TYPE train_epochs gauge" in text
        assert "train_epochs 2.0" in text

    def test_histogram_rendered_as_summary(self):
        text = render_prometheus(self._snapshot())
        assert "# TYPE serve_latency_ms summary" in text
        for q in ("0.5", "0.95", "0.99"):
            assert f'serve_latency_ms{{quantile="{q}"}}' in text
        assert "serve_latency_ms_sum 10.0" in text
        assert "serve_latency_ms_count 4" in text
        assert "serve_latency_ms_min 1.0" in text
        assert "serve_latency_ms_max 4.0" in text

    def test_disabled_telemetry_renders_empty(self):
        # with telemetry off there is no snapshot: the page stays valid
        assert render_prometheus(None) == ""
        assert render_prometheus({}) == ""

    def test_empty_registry_is_empty_page(self):
        assert render_prometheus(MetricsRegistry().to_dict()) == ""


class TestMetricsExporter:
    def test_metrics_endpoint_serves_live_snapshot(self):
        reg = MetricsRegistry()
        with MetricsExporter(metrics_fn=reg.to_dict, port=0) as exporter:
            reg.counter("scrapes").add(3)
            status, body = _get(f"{exporter.url}/metrics")
            assert status == 200
            assert "scrapes 3.0" in body
            reg.counter("scrapes").add(1)  # pull-based: next scrape sees it
            _, body = _get(f"{exporter.url}/metrics")
            assert "scrapes 4.0" in body

    def test_health_defaults_ready_without_health_fn(self):
        with MetricsExporter(metrics_fn=lambda: None, port=0) as exporter:
            status, body = _get(f"{exporter.url}/health")
            assert status == 200
            assert json.loads(body) == {"live": True, "ready": True}

    def test_health_503_when_not_ready(self):
        health = {"live": True, "ready": False, "phase": "draining"}
        with MetricsExporter(
            metrics_fn=lambda: None, health_fn=lambda: health, port=0
        ) as exporter:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{exporter.url}/health", timeout=5.0)
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read()) == health

    def test_health_fn_exception_reported_not_raised(self):
        def boom():
            raise RuntimeError("engine gone")

        with MetricsExporter(
            metrics_fn=lambda: None, health_fn=boom, port=0
        ) as exporter:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{exporter.url}/health", timeout=5.0)
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read())
            assert payload["ready"] is False
            assert "engine gone" in payload["error"]

    def test_metrics_fn_exception_never_500s_a_scrape(self):
        def boom():
            raise KeyError("registry torn down")

        with MetricsExporter(metrics_fn=boom, port=0) as exporter:
            status, body = _get(f"{exporter.url}/metrics")
            assert status == 200
            assert body.startswith("# scrape error:")

    def test_unknown_path_404(self):
        with MetricsExporter(metrics_fn=lambda: None, port=0) as exporter:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{exporter.url}/nope", timeout=5.0)
            assert excinfo.value.code == 404

    def test_close_is_idempotent_and_stops_serving(self):
        exporter = MetricsExporter(metrics_fn=lambda: None, port=0)
        url = exporter.url
        exporter.close()
        exporter.close()  # idempotent
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(f"{url}/metrics", timeout=1.0)
