"""Fused vs unfused IGNN message path: forward/grad/training parity."""

import numpy as np
import pytest

from repro.graph import random_graph
from repro.models import GRUInteractionGNN, IGNNConfig, InteractionGNN
from repro.nn import Adam, BCEWithLogitsLoss
from repro.tensor import Tensor


def make_pair(fused_cfg=True, **kw):
    base = dict(node_features=6, edge_features=2, hidden=8,
                num_layers=3, mlp_layers=2, seed=0)
    base.update(kw)
    fused = InteractionGNN(IGNNConfig(**base, fused=True))
    plain = InteractionGNN(IGNNConfig(**base, fused=False))
    plain.load_state_dict(fused.state_dict())
    return fused, plain


@pytest.fixture
def graph():
    return random_graph(40, 160, rng=np.random.default_rng(1), true_fraction=0.4)


class TestForwardParity:
    def test_logits_agree(self, graph):
        fused, plain = make_pair()
        lf = fused(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols)
        lp = plain(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols)
        np.testing.assert_allclose(lf.data, lp.data, rtol=2e-4, atol=2e-5)

    def test_predict_proba_agree(self, graph):
        fused, plain = make_pair()
        np.testing.assert_allclose(
            fused.predict_proba(graph), plain.predict_proba(graph),
            rtol=2e-4, atol=2e-5,
        )

    def test_gru_variant_agrees(self, graph):
        base = dict(node_features=6, edge_features=2, hidden=8,
                    num_layers=3, mlp_layers=2, seed=0)
        fused = GRUInteractionGNN(IGNNConfig(**base, fused=True))
        plain = GRUInteractionGNN(IGNNConfig(**base, fused=False))
        plain.load_state_dict(fused.state_dict())
        lf = fused(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols)
        lp = plain(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols)
        np.testing.assert_allclose(lf.data, lp.data, rtol=2e-4, atol=2e-5)


class TestTrainingParity:
    def test_short_training_converges_together(self, graph):
        """Convergence-parity gate: a handful of fused Adam steps lands
        within float tolerance of the unfused reference trajectory."""
        fused, plain = make_pair()
        labels = graph.edge_labels.astype(np.float32)
        losses = {}
        for name, model in (("fused", fused), ("plain", plain)):
            loss_fn = BCEWithLogitsLoss(pos_weight=2.0)
            opt = Adam(model.parameters(), lr=1e-3)
            hist = []
            for _ in range(5):
                loss = loss_fn(
                    model(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols),
                    labels,
                )
                opt.zero_grad()
                loss.backward()
                opt.step()
                hist.append(loss.item())
            losses[name] = hist
        np.testing.assert_allclose(losses["fused"], losses["plain"], rtol=1e-3)
        assert losses["fused"][-1] < losses["fused"][0]


class TestPrecisionCast:
    def test_astype_roundtrip(self, graph):
        fused, _ = make_pair()
        fused.astype(np.float64)
        assert all(p.data.dtype == np.float64 for p in fused.parameters())
        # predict_proba casts inputs to the parameter dtype
        probs64 = fused.predict_proba(graph)
        fused.astype(np.float32)
        assert all(p.data.dtype == np.float32 for p in fused.parameters())
        probs32 = fused.predict_proba(graph)
        np.testing.assert_allclose(probs64, probs32, rtol=1e-3, atol=1e-4)
