"""Gradient checkpointing: exactness vs ordinary backprop, memory model."""

import numpy as np
import pytest

from repro.graph import random_graph
from repro.memory import ActivationMemoryModel
from repro.models import CheckpointedIGNN, IGNNConfig, InteractionGNN
from repro.nn import Adam, BCEWithLogitsLoss
from repro.tensor import Tensor


def make_pair(num_layers=3, hidden=8, seed=0):
    cfg = IGNNConfig(
        node_features=6, edge_features=2, hidden=hidden,
        num_layers=num_layers, mlp_layers=2, seed=seed,
    )
    m1, m2 = InteractionGNN(cfg), InteractionGNN(cfg)
    m2.load_state_dict(m1.state_dict())
    return m1, m2


@pytest.fixture
def graph():
    return random_graph(50, 200, rng=np.random.default_rng(0), true_fraction=0.4)


class TestExactness:
    @pytest.mark.parametrize("num_layers", [1, 2, 4])
    def test_loss_matches_plain_forward(self, graph, num_layers):
        m1, m2 = make_pair(num_layers=num_layers)
        loss_fn = BCEWithLogitsLoss(pos_weight=2.0)
        labels = graph.edge_labels.astype(np.float32)
        plain = loss_fn(
            m1(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols), labels
        )
        ck_loss = CheckpointedIGNN(m2).training_step(
            graph.x, graph.y, graph.rows, graph.cols, labels, loss_fn
        )
        assert ck_loss == pytest.approx(plain.item(), abs=1e-5)

    @pytest.mark.parametrize("num_layers", [1, 3])
    def test_gradients_match_plain_backprop(self, graph, num_layers):
        m1, m2 = make_pair(num_layers=num_layers)
        loss_fn = BCEWithLogitsLoss(pos_weight=2.0)
        labels = graph.edge_labels.astype(np.float32)
        loss_fn(
            m1(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols), labels
        ).backward()
        CheckpointedIGNN(m2).training_step(
            graph.x, graph.y, graph.rows, graph.cols, labels, loss_fn
        )
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            g1 = p1.grad if p1.grad is not None else np.zeros_like(p1.data)
            g2 = p2.grad if p2.grad is not None else np.zeros_like(p2.data)
            assert np.allclose(g1, g2, atol=1e-5), n1

    def test_training_converges(self, graph):
        _, model = make_pair(num_layers=2, hidden=16)
        ck = CheckpointedIGNN(model)
        opt = Adam(model.parameters(), lr=3e-3)
        loss_fn = BCEWithLogitsLoss()
        labels = graph.edge_labels.astype(np.float32)
        losses = []
        for _ in range(20):
            opt.zero_grad()
            losses.append(
                ck.training_step(graph.x, graph.y, graph.rows, graph.cols, labels, loss_fn)
            )
            opt.step()
        assert losses[-1] < 0.8 * losses[0]


class TestMemoryModel:
    def test_checkpointing_cuts_footprint(self):
        cfg = IGNNConfig(6, 2, hidden=64, num_layers=8, mlp_layers=2)
        model = ActivationMemoryModel(cfg)
        n, m = 13_000, 47_800
        assert model.checkpointed_bytes(n, m) < 0.5 * model.total_bytes(n, m)

    def test_saving_grows_with_depth(self):
        """Deeper networks gain more: plain memory is L×working-set,
        checkpointed is L×boundary + one working set."""
        ratios = []
        for L in (2, 8):
            cfg = IGNNConfig(6, 2, hidden=64, num_layers=L, mlp_layers=2)
            model = ActivationMemoryModel(cfg)
            ratios.append(model.checkpointed_bytes(5000, 20_000) / model.total_bytes(5000, 20_000))
        assert ratios[1] < ratios[0]

    def test_skipped_event_fits_when_checkpointed(self):
        """The motivating case: a graph the full regime skips can train
        under checkpointing at the same capacity."""
        cfg = IGNNConfig(14, 8, hidden=64, num_layers=8, mlp_layers=3)
        model = ActivationMemoryModel(cfg)
        n, m = 330_700, 6_900_000  # paper's average CTD event
        capacity = model.checkpointed_bytes(n, m) * 2
        assert not model.fits(n, m, capacity)  # full graph: skipped
        assert model.checkpointed_bytes(n, m) <= capacity  # checkpointed: fits
