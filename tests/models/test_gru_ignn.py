"""GRU-update Interaction GNN variant."""

import numpy as np
import pytest

from repro.graph import random_graph
from repro.models import GRUInteractionGNN, IGNNConfig, InteractionGNN
from repro.nn import Adam, BCEWithLogitsLoss
from repro.tensor import Tensor, no_grad


@pytest.fixture
def graph():
    return random_graph(50, 200, rng=np.random.default_rng(0), true_fraction=0.4)


def cfg(**kw):
    base = dict(node_features=6, edge_features=2, hidden=8, num_layers=3, mlp_layers=2, seed=0)
    base.update(kw)
    return IGNNConfig(**base)


class TestGRUIGNN:
    def test_logits_per_edge(self, graph):
        model = GRUInteractionGNN(cfg())
        out = model(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols)
        assert out.shape == (graph.num_edges,)

    def test_weight_shared_across_iterations(self):
        assert (
            GRUInteractionGNN(cfg(num_layers=2)).num_parameters()
            == GRUInteractionGNN(cfg(num_layers=8)).num_parameters()
        )

    def test_fewer_parameters_than_distinct_mlp_stack(self):
        assert (
            GRUInteractionGNN(cfg(num_layers=4)).num_parameters()
            < InteractionGNN(cfg(num_layers=4)).num_parameters()
        )

    def test_trains(self, graph):
        model = GRUInteractionGNN(cfg(hidden=16))
        opt = Adam(model.parameters(), lr=3e-3)
        loss_fn = BCEWithLogitsLoss()
        labels = graph.edge_labels.astype(np.float32)
        first = last = None
        for i in range(25):
            opt.zero_grad()
            loss = loss_fn(
                model(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols), labels
            )
            loss.backward()
            opt.step()
            first = loss.item() if i == 0 else first
            last = loss.item()
        assert last < 0.85 * first

    def test_deep_stack_stays_finite(self, graph):
        """The gating must keep a deep (8-iteration) stack numerically
        stable at init."""
        model = GRUInteractionGNN(cfg(num_layers=8))
        with no_grad():
            out = model(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols)
        assert np.all(np.isfinite(out.numpy()))

    def test_predict_proba(self, graph):
        model = GRUInteractionGNN(cfg())
        p = model.predict_proba(graph)
        assert np.all((p >= 0) & (p <= 1))
