"""Embedding and filter networks."""

import numpy as np
import pytest

from repro.graph import disjoint_chains
from repro.models import (
    EmbeddingConfig,
    EmbeddingNet,
    FilterConfig,
    FilterNet,
    sample_training_pairs,
)
from repro.nn import Adam, BCEWithLogitsLoss, HingeEmbeddingLoss
from repro.tensor import Tensor, ops


class TestEmbeddingNet:
    def test_output_on_unit_sphere(self):
        net = EmbeddingNet(EmbeddingConfig(node_features=6, embedding_dim=4))
        rng = np.random.default_rng(0)
        z = net.embed(rng.normal(size=(20, 6)).astype(np.float32))
        assert z.shape == (20, 4)
        assert np.allclose(np.linalg.norm(z, axis=1), 1.0, atol=1e-5)

    def test_metric_learning_separates_chains(self):
        """Train on idealised tracks: same-chain pairs should end closer
        than cross-chain pairs."""
        g = disjoint_chains(6, 6, num_node_features=6, rng=np.random.default_rng(0))
        # give each chain a distinctive feature signature + noise
        rng = np.random.default_rng(1)
        base = rng.normal(size=(6, 6)).astype(np.float32)
        x = base[(g.particle_ids - 1)] + 0.1 * rng.normal(size=g.x.shape).astype(np.float32)

        net = EmbeddingNet(EmbeddingConfig(node_features=6, embedding_dim=4, seed=0))
        opt = Adam(net.parameters(), lr=1e-2)
        loss_fn = HingeEmbeddingLoss(margin=1.0)
        pos = g.edge_index  # chain edges = positive pairs
        for _ in range(60):
            src, dst, labels = sample_training_pairs(pos, g.num_nodes, 3, rng)
            opt.zero_grad()
            z = net(Tensor(x))
            d2 = ops.squared_distance(ops.gather_rows(z, src), ops.gather_rows(z, dst))
            loss_fn(d2, labels).backward()
            opt.step()

        z = net.embed(x)
        same = np.linalg.norm(z[pos[0]] - z[pos[1]], axis=1).mean()
        cross_src = rng.integers(0, g.num_nodes, 200)
        cross_dst = rng.integers(0, g.num_nodes, 200)
        diff_mask = g.particle_ids[cross_src] != g.particle_ids[cross_dst]
        cross = np.linalg.norm(z[cross_src[diff_mask]] - z[cross_dst[diff_mask]], axis=1).mean()
        assert same < 0.5 * cross


class TestSampleTrainingPairs:
    def test_positive_pairs_first_and_labelled(self):
        segments = np.array([[0, 1], [1, 2]])
        src, dst, labels = sample_training_pairs(segments, 10, 2, np.random.default_rng(0))
        assert np.array_equal(src[:2], [0, 1])
        assert np.array_equal(dst[:2], [1, 2])
        assert np.all(labels[:2] == 1)
        assert np.all(labels[2:] == 0)

    def test_negative_rate(self):
        segments = np.stack([np.arange(50), np.arange(1, 51)])
        src, dst, labels = sample_training_pairs(segments, 1000, 4, np.random.default_rng(0))
        n_neg = int((labels == 0).sum())
        assert 0.9 * 200 <= n_neg <= 200

    def test_no_self_pairs(self):
        segments = np.array([[0], [1]])
        src, dst, _ = sample_training_pairs(segments, 5, 50, np.random.default_rng(0))
        assert np.all(src != dst)


class TestFilterNet:
    def test_logits_shape(self):
        g = disjoint_chains(4, 5, rng=np.random.default_rng(0))
        net = FilterNet(FilterConfig(node_features=6, edge_features=2))
        out = net(Tensor(g.x), Tensor(g.y), g.rows, g.cols)
        assert out.shape == (g.num_edges,)

    def test_learns_separable_labels(self):
        """Edges whose feature sign encodes the label should be learned."""
        rng = np.random.default_rng(0)
        n, m = 50, 300
        x = rng.normal(size=(n, 4)).astype(np.float32)
        rows = rng.integers(0, n, m)
        cols = rng.integers(0, n, m)
        labels = (rng.random(m) > 0.5).astype(np.float32)
        y = np.where(labels[:, None] > 0, 1.0, -1.0).astype(np.float32) + 0.1 * rng.normal(
            size=(m, 1)
        ).astype(np.float32)
        net = FilterNet(FilterConfig(node_features=4, edge_features=1, hidden=16))
        opt = Adam(net.parameters(), lr=1e-2)
        loss_fn = BCEWithLogitsLoss()
        for _ in range(60):
            opt.zero_grad()
            logits = net(Tensor(x), Tensor(y), rows, cols)
            loss_fn(logits, labels).backward()
            opt.step()
        scores = 1 / (1 + np.exp(-net(Tensor(x), Tensor(y), rows, cols).numpy()))
        acc = np.mean((scores > 0.5) == (labels > 0.5))
        assert acc > 0.95

    def test_predict_proba_range(self):
        g = disjoint_chains(4, 5, rng=np.random.default_rng(0))
        net = FilterNet(FilterConfig(node_features=6, edge_features=2))
        p = net.predict_proba(g)
        assert np.all((p >= 0) & (p <= 1))
