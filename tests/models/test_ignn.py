"""Interaction GNN (Algorithm 1): shapes, invariances, trainability."""

import numpy as np
import pytest

from repro.graph import random_graph
from repro.models import IGNNConfig, InteractionGNN, RecurrentInteractionGNN
from repro.nn import Adam, BCEWithLogitsLoss
from repro.tensor import Tensor, gradcheck, no_grad, ops


@pytest.fixture
def graph():
    return random_graph(40, 160, rng=np.random.default_rng(0), true_fraction=0.4)


def small_config(**kw):
    defaults = dict(node_features=6, edge_features=2, hidden=8, num_layers=2, mlp_layers=2, seed=0)
    defaults.update(kw)
    return IGNNConfig(**defaults)


class TestShapes:
    def test_one_logit_per_edge(self, graph):
        model = InteractionGNN(small_config())
        out = model(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols)
        assert out.shape == (graph.num_edges,)

    def test_distinct_mlps_per_layer(self):
        """The paper: 'each MLP is distinct' — parameter count grows
        linearly with layers (unlike the recurrent variant)."""
        p2 = InteractionGNN(small_config(num_layers=2)).num_parameters()
        p4 = InteractionGNN(small_config(num_layers=4)).num_parameters()
        rec2 = RecurrentInteractionGNN(small_config(num_layers=2)).num_parameters()
        rec4 = RecurrentInteractionGNN(small_config(num_layers=4)).num_parameters()
        assert p4 > p2
        assert rec2 == rec4  # weight sharing

    def test_mismatched_edges_rejected(self, graph):
        model = InteractionGNN(small_config())
        with pytest.raises(ValueError):
            model(Tensor(graph.x), Tensor(graph.y), graph.rows[:-1], graph.cols)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IGNNConfig(node_features=0, edge_features=2)
        with pytest.raises(ValueError):
            IGNNConfig(node_features=6, edge_features=2, num_layers=0)

    def test_paper_default_hyperparams(self):
        """Section IV-A: hidden 64, 8 layers."""
        cfg = IGNNConfig(node_features=6, edge_features=2)
        assert cfg.hidden == 64
        assert cfg.num_layers == 8


class TestInvariances:
    def test_vertex_relabelling_equivariance(self, graph):
        """Permuting vertex ids (and remapping the adjacency) must permute
        nothing in the edge logits (edges keep their order)."""
        model = InteractionGNN(small_config())
        perm = np.random.default_rng(1).permutation(graph.num_nodes)
        inv = np.empty_like(perm)
        inv[perm] = np.arange(len(perm))
        with no_grad():
            base = model(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols).numpy()
            permuted = model(
                Tensor(graph.x[perm]),
                Tensor(graph.y),
                inv[graph.rows],
                inv[graph.cols],
            ).numpy()
        assert np.allclose(base, permuted, atol=1e-4)

    def test_edge_order_equivariance(self, graph):
        """Permuting the edge list permutes logits identically."""
        model = InteractionGNN(small_config())
        perm = np.random.default_rng(2).permutation(graph.num_edges)
        with no_grad():
            base = model(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols).numpy()
            permuted = model(
                Tensor(graph.x), Tensor(graph.y[perm]), graph.rows[perm], graph.cols[perm]
            ).numpy()
        assert np.allclose(base[perm], permuted, atol=1e-4)

    def test_deterministic_given_seed(self, graph):
        m1 = InteractionGNN(small_config(seed=3))
        m2 = InteractionGNN(small_config(seed=3))
        with no_grad():
            o1 = m1(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols).numpy()
            o2 = m2(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols).numpy()
        assert np.array_equal(o1, o2)


class TestTraining:
    def test_loss_decreases(self, graph):
        model = InteractionGNN(small_config(hidden=16))
        opt = Adam(model.parameters(), lr=3e-3)
        loss_fn = BCEWithLogitsLoss()
        labels = graph.edge_labels.astype(np.float32)
        losses = []
        for _ in range(30):
            opt.zero_grad()
            logits = model(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols)
            loss = loss_fn(logits, labels)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < 0.7 * losses[0]

    def test_all_live_parameters_receive_gradients(self, graph):
        """Every parameter gets a gradient except the final layer's node
        MLP: Algorithm 1 returns φ(Y^L), so the last vertex update X^L is
        computed (and stored — the memory model counts it) but never read
        by the loss."""
        cfg = small_config(num_layers=2)
        model = InteractionGNN(cfg)
        loss_fn = BCEWithLogitsLoss()
        logits = model(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols)
        loss_fn(logits, graph.edge_labels.astype(np.float32)).backward()
        missing = {n for n, p in model.named_parameters() if p.grad is None}
        last = f"layer{cfg.num_layers - 1}.node_mlp"
        assert missing == {n for n in missing if n.startswith(last)}
        assert all(n.startswith(last) for n in missing)
        assert missing  # the dead update exists, as in Algorithm 1

    def test_full_layer_gradcheck(self):
        """End-to-end gradient check of a tiny IGNN in float64."""
        cfg = small_config(hidden=4, num_layers=1, layer_norm=False)
        model = InteractionGNN(cfg)
        # promote parameters to float64 for finite differences
        for _, p in model.named_parameters():
            p.data = p.data.astype(np.float64)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(5, 6)))
        y = Tensor(rng.normal(size=(7, 2)))
        rows = np.array([0, 1, 2, 3, 4, 0, 2])
        cols = np.array([1, 2, 3, 4, 0, 3, 0])
        params = [p for _, p in model.named_parameters()][:4]  # check a subset

        def f(*ps):
            logits = model(x, y, rows, cols)
            return ops.mean(ops.mul(logits, logits))

        gradcheck(f, params, atol=1e-5)

    def test_predict_proba_in_unit_interval(self, graph):
        model = InteractionGNN(small_config())
        proba = model.predict_proba(graph)
        assert proba.shape == (graph.num_edges,)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_recurrent_variant_trains(self, graph):
        model = RecurrentInteractionGNN(small_config(hidden=16))
        opt = Adam(model.parameters(), lr=3e-3)
        loss_fn = BCEWithLogitsLoss()
        labels = graph.edge_labels.astype(np.float32)
        first = last = None
        for i in range(20):
            opt.zero_grad()
            logits = model(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols)
            loss = loss_fn(logits, labels)
            loss.backward()
            opt.step()
            if i == 0:
                first = loss.item()
            last = loss.item()
        assert last < first
