"""Buffer-pool arena: pooling, identity safety, stats, global toggle."""

import numpy as np
import pytest

from repro.memory import BufferArena, arena_enabled, default_arena, set_arena_enabled


@pytest.fixture
def arena():
    return BufferArena()


class TestTakeReclaim:
    def test_take_shape_dtype(self, arena):
        arr = arena.take((4, 3), np.float32)
        assert arr.shape == (4, 3) and arr.dtype == np.float32
        assert arr.flags["C_CONTIGUOUS"]

    def test_scalar_shape(self, arena):
        assert arena.take(5).shape == (5,)

    def test_zeros_filled(self, arena):
        a = arena.take((8,), np.float64)
        a.fill(7.0)
        assert arena.reclaim(a)
        b = arena.zeros((8,), np.float64)
        np.testing.assert_array_equal(b, np.zeros(8))

    def test_reuse_same_buffer(self, arena):
        a = arena.take((16, 2), np.float64)
        assert arena.reclaim(a)
        b = arena.take((16, 2), np.float64)
        assert b is a
        assert arena.stats.hits == 1 and arena.stats.misses == 1
        assert arena.stats.bytes_reused == a.nbytes

    def test_no_reuse_across_size_classes(self, arena):
        a = arena.take((4,), np.float64)
        arena.reclaim(a)
        assert arena.take((5,), np.float64) is not a
        assert arena.take((4,), np.float32) is not a

    def test_pooled_bytes_tracks(self, arena):
        a = arena.take((10,), np.float64)
        assert arena.pooled_bytes == 0
        arena.reclaim(a)
        assert arena.pooled_bytes == 80
        arena.take((10,), np.float64)
        assert arena.pooled_bytes == 0


class TestReclaimSafety:
    def test_foreign_array_rejected(self, arena):
        assert not arena.reclaim(np.zeros(4))
        assert arena.stats.rejected == 1

    def test_view_of_issued_buffer_rejected(self, arena):
        a = arena.take((6,), np.float64)
        assert not arena.reclaim(a[:3])

    def test_double_reclaim_rejected(self, arena):
        a = arena.take((6,), np.float64)
        assert arena.reclaim(a)
        assert not arena.reclaim(a)
        assert arena.stats.reclaimed == 1 and arena.stats.rejected == 1

    def test_none_and_non_array_rejected(self, arena):
        assert not arena.reclaim(None)
        assert not arena.reclaim([1, 2, 3])

    def test_give_is_reclaim(self, arena):
        a = arena.take((3,), np.float32)
        assert arena.give(a)
        assert arena.stats.reclaimed == 1

    def test_cap_drops_overflow(self):
        small = BufferArena(max_pooled_bytes=100)
        a = small.take((10,), np.float64)  # 80 bytes -> fits
        b = small.take((10,), np.float64)  # would exceed the 100-byte cap
        assert small.reclaim(a)
        assert not small.reclaim(b)
        assert small.pooled_bytes == 80

    def test_clear_drops_pool(self, arena):
        arena.reclaim(arena.take((4,), np.float64))
        arena.clear()
        assert arena.pooled_bytes == 0
        assert arena.stats.hits == 0  # next take is a miss
        arena.take((4,), np.float64)
        assert arena.stats.misses == 2

    def test_registry_sweep_bounds_dead_entries(self):
        arena = BufferArena()
        arena._sweep_at = 8  # shrink the amortised threshold for the test
        for _ in range(64):
            arena.take((2,), np.float32)  # dropped immediately, never reclaimed
        assert len(arena._registry) < 64


class TestGlobalToggle:
    def test_default_arena_singleton(self):
        assert default_arena() is default_arena()

    def test_disable_bypasses_pool(self):
        prev = set_arena_enabled(False)
        try:
            assert not arena_enabled()
            arena = BufferArena()
            a = arena.take((4,), np.float64)
            assert not arena.reclaim(a)  # never registered
            assert arena.stats.hits == 0 and arena.stats.misses == 0
            z = arena.zeros((4,), np.float64)
            np.testing.assert_array_equal(z, np.zeros(4))
        finally:
            set_arena_enabled(prev)
        assert arena_enabled() == prev
