"""Activation-memory model and device specs."""

import numpy as np
import pytest

from repro.memory import A100_40GB, ActivationMemoryModel, DeviceSpec, scaled_device
from repro.models import IGNNConfig


@pytest.fixture
def model():
    return ActivationMemoryModel(
        IGNNConfig(node_features=6, edge_features=2, hidden=64, num_layers=8, mlp_layers=2)
    )


class TestActivationModel:
    def test_monotone_in_edges(self, model):
        assert model.total_bytes(1000, 20_000) > model.total_bytes(1000, 10_000)

    def test_monotone_in_nodes(self, model):
        assert model.total_bytes(2000, 10_000) > model.total_bytes(1000, 10_000)

    def test_scales_with_layers(self):
        cfg4 = IGNNConfig(6, 2, hidden=64, num_layers=4)
        cfg8 = IGNNConfig(6, 2, hidden=64, num_layers=8)
        b4 = ActivationMemoryModel(cfg4).total_bytes(1000, 10_000)
        b8 = ActivationMemoryModel(cfg8).total_bytes(1000, 10_000)
        assert 1.8 < b8 / b4 < 2.2

    def test_edge_term_has_mf_scale(self, model):
        """Section III-B: the largest matrices have m·f elements — the
        per-layer edge cost must be at least m·f elements (4 bytes each)."""
        m, f = 100_000, 64
        per_layer = model.elements_per_layer(0, m)
        assert per_layer >= m * f

    def test_fits_boundary(self, model):
        bytes_needed = model.total_bytes(500, 5000)
        assert model.fits(500, 5000, bytes_needed)
        assert not model.fits(500, 5000, bytes_needed - 1)

    def test_max_edges_inverse_of_total_bytes(self, model):
        cap = model.total_bytes(1000, 12_345)
        me = model.max_edges(1000, cap)
        assert abs(me - 12_345) <= 1
        assert model.fits(1000, me, cap)
        assert not model.fits(1000, me + 2, cap)

    def test_max_edges_zero_when_nodes_exhaust_budget(self, model):
        assert model.max_edges(10**9, 1000) == 0

    def test_ctd_scale_exceeds_a100(self):
        """The paper's motivation: large CTD events (≥ paper-average size)
        overflow a 40 GB A100's activation budget under the full 8-layer,
        hidden-64 configuration."""
        cfg = IGNNConfig(14, 8, hidden=64, num_layers=8, mlp_layers=3)
        model = ActivationMemoryModel(cfg)
        budget = A100_40GB.activation_budget()
        # paper Table I: avg CTD graph is 330.7K vertices, 6.9M edges; the
        # largest graphs are several times the average
        assert not model.fits(330_700 * 3, 6_900_000 * 3, budget)

    def test_ex3_scale_fits_a100(self):
        cfg = IGNNConfig(6, 2, hidden=64, num_layers=8, mlp_layers=2)
        model = ActivationMemoryModel(cfg)
        assert model.fits(13_000, 47_800, A100_40GB.activation_budget())


class TestDeviceSpec:
    def test_activation_budget_fraction(self):
        d = DeviceSpec("x", memory_bytes=1000, activation_fraction=0.5)
        assert d.activation_budget() == 500

    def test_scaled_device(self):
        half = scaled_device(0.5)
        assert half.memory_bytes == A100_40GB.memory_bytes // 2

    def test_scaled_device_validates(self):
        with pytest.raises(ValueError):
            scaled_device(0.0)
