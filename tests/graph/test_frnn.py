"""Fixed-radius / kNN graph construction invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import fixed_radius_graph, knn_graph


@st.composite
def point_clouds(draw):
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(2, 80))
    d = draw(st.integers(2, 4))
    rng = np.random.default_rng(seed)
    return rng.uniform(-1, 1, size=(n, d))


class TestFixedRadius:
    @given(point_clouds(), st.floats(0.05, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_all_edges_within_radius(self, pts, radius):
        ei = fixed_radius_graph(pts, radius)
        if ei.shape[1]:
            d = np.linalg.norm(pts[ei[0]] - pts[ei[1]], axis=1)
            assert np.all(d <= radius + 1e-9)

    @given(point_clouds(), st.floats(0.05, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_no_in_radius_pair_missed(self, pts, radius):
        ei = fixed_radius_graph(pts, radius)
        built = set(map(tuple, ei.T.tolist()))
        n = len(pts)
        for i in range(n):
            for j in range(i + 1, n):
                if np.linalg.norm(pts[i] - pts[j]) <= radius:
                    assert (i, j) in built

    def test_each_pair_once_src_lt_dst(self):
        rng = np.random.default_rng(0)
        ei = fixed_radius_graph(rng.uniform(size=(50, 3)), 0.4)
        assert np.all(ei[0] < ei[1])
        assert len({tuple(e) for e in ei.T.tolist()}) == ei.shape[1]

    def test_no_self_loops_by_default(self):
        rng = np.random.default_rng(0)
        ei = fixed_radius_graph(rng.uniform(size=(20, 2)), 0.5)
        assert np.all(ei[0] != ei[1])

    def test_loop_flag_adds_self_loops(self):
        rng = np.random.default_rng(0)
        ei = fixed_radius_graph(rng.uniform(size=(10, 2)), 0.5, loop=True)
        loops = ei[:, ei[0] == ei[1]]
        assert loops.shape[1] == 10

    def test_max_neighbors_caps_degree(self):
        # a dense blob: uncapped degree would be n-1
        rng = np.random.default_rng(0)
        pts = rng.normal(scale=0.01, size=(30, 3))
        ei = fixed_radius_graph(pts, radius=1.0, max_neighbors=3)
        deg = np.bincount(ei.reshape(-1), minlength=30)
        assert deg.max() <= 3

    def test_empty_input(self):
        ei = fixed_radius_graph(np.zeros((0, 3)), 0.5)
        assert ei.shape == (2, 0)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            fixed_radius_graph(np.zeros((3, 2)), 0.0)

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            fixed_radius_graph(np.random.default_rng(0).uniform(size=(10, 2)), 0.9, max_neighbors=0)


class TestKNN:
    def test_each_vertex_connected(self):
        rng = np.random.default_rng(0)
        ei = knn_graph(rng.uniform(size=(30, 3)), k=3)
        touched = set(ei.reshape(-1).tolist())
        assert touched == set(range(30))

    def test_contains_nearest_neighbor(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(size=(25, 2))
        ei = knn_graph(pts, k=1)
        built = {tuple(sorted(e)) for e in ei.T.tolist()}
        for i in range(25):
            d = np.linalg.norm(pts - pts[i], axis=1)
            d[i] = np.inf
            j = int(np.argmin(d))
            assert tuple(sorted((i, j))) in built

    def test_single_point(self):
        assert knn_graph(np.zeros((1, 3)), k=2).shape == (2, 0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            knn_graph(np.zeros((5, 2)), k=0)
