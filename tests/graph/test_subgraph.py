"""Induced subgraph extraction invariants (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import induced_edge_mask, induced_subgraph, random_graph, selection_matrix


@st.composite
def graph_and_nodes(draw):
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    n = draw(st.integers(4, 60))
    m = draw(st.integers(n, 4 * n))
    g = random_graph(n, m, rng=rng)
    k = draw(st.integers(1, n))
    nodes = rng.choice(n, size=k, replace=False)
    return g, nodes


class TestInducedSubgraph:
    @given(graph_and_nodes())
    @settings(max_examples=50, deadline=None)
    def test_every_subgraph_edge_maps_to_parent(self, data):
        g, nodes = data
        sub = induced_subgraph(g, nodes)
        # endpoints translate back through node_index
        assert np.array_equal(sub.node_index[sub.graph.rows], g.rows[sub.edge_index_parent])
        assert np.array_equal(sub.node_index[sub.graph.cols], g.cols[sub.edge_index_parent])

    @given(graph_and_nodes())
    @settings(max_examples=50, deadline=None)
    def test_no_induced_edge_missed(self, data):
        g, nodes = data
        sub = induced_subgraph(g, nodes)
        member = np.zeros(g.num_nodes, dtype=bool)
        member[nodes] = True
        expected = int(np.sum(member[g.rows] & member[g.cols]))
        assert sub.graph.num_edges == expected

    @given(graph_and_nodes())
    @settings(max_examples=50, deadline=None)
    def test_features_and_labels_follow(self, data):
        g, nodes = data
        sub = induced_subgraph(g, nodes)
        assert np.array_equal(sub.graph.x, g.x[sub.node_index])
        assert np.array_equal(sub.graph.y, g.y[sub.edge_index_parent])
        assert np.array_equal(sub.graph.edge_labels, g.edge_labels[sub.edge_index_parent])

    def test_duplicate_nodes_deduped(self):
        g = random_graph(10, 30, rng=np.random.default_rng(0))
        sub = induced_subgraph(g, np.array([3, 3, 5, 5]))
        assert sub.graph.num_nodes == 2

    def test_out_of_range_rejected(self):
        g = random_graph(10, 30, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            induced_subgraph(g, np.array([99]))

    def test_full_node_set_is_identity_up_to_order(self):
        g = random_graph(10, 30, rng=np.random.default_rng(0))
        sub = induced_subgraph(g, np.arange(10))
        assert sub.graph.num_edges == g.num_edges
        assert np.array_equal(np.sort(sub.edge_index_parent), np.arange(g.num_edges))


class TestEdgeMask:
    def test_mask_matches_membership(self):
        g = random_graph(20, 60, rng=np.random.default_rng(1))
        nodes = np.array([0, 1, 2, 3, 4])
        mask = induced_edge_mask(g, nodes)
        for e in range(g.num_edges):
            expected = g.rows[e] in nodes and g.cols[e] in nodes
            assert mask[e] == expected


class TestSelectionMatrix:
    def test_selects_rows(self):
        nodes = np.array([2, 0, 3])
        S = selection_matrix(nodes, 5)
        dense = np.eye(5)[nodes]
        assert np.array_equal(S.toarray(), dense)

    def test_row_selection_spgemm(self):
        g = random_graph(15, 40, rng=np.random.default_rng(2))
        A = g.to_csr(symmetric=True)
        nodes = np.array([1, 4, 7])
        S = selection_matrix(nodes, 15)
        picked = (S @ A).toarray()
        assert np.array_equal(picked, A.toarray()[nodes])
