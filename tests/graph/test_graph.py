"""EventGraph container validation and views."""

import numpy as np
import pytest

from repro.graph import EventGraph, random_graph


def tiny_graph():
    return EventGraph(
        edge_index=np.array([[0, 1, 2], [1, 2, 3]]),
        x=np.zeros((4, 6), dtype=np.float32),
        y=np.zeros((3, 2), dtype=np.float32),
        edge_labels=np.array([1, 0, 1], dtype=np.int8),
    )


class TestValidation:
    def test_counts(self):
        g = tiny_graph()
        assert g.num_nodes == 4
        assert g.num_edges == 3
        assert g.num_node_features == 6
        assert g.num_edge_features == 2

    def test_bad_edge_index_shape(self):
        with pytest.raises(ValueError):
            EventGraph(
                edge_index=np.zeros((3, 2), dtype=np.int64),
                x=np.zeros((4, 2), dtype=np.float32),
                y=np.zeros((2, 1), dtype=np.float32),
            )

    def test_edge_feature_count_mismatch(self):
        with pytest.raises(ValueError):
            EventGraph(
                edge_index=np.array([[0], [1]]),
                x=np.zeros((2, 2), dtype=np.float32),
                y=np.zeros((5, 1), dtype=np.float32),
            )

    def test_out_of_range_vertex(self):
        with pytest.raises(ValueError):
            EventGraph(
                edge_index=np.array([[0], [9]]),
                x=np.zeros((2, 2), dtype=np.float32),
                y=np.zeros((1, 1), dtype=np.float32),
            )

    def test_negative_vertex(self):
        with pytest.raises(ValueError):
            EventGraph(
                edge_index=np.array([[-1], [0]]),
                x=np.zeros((2, 2), dtype=np.float32),
                y=np.zeros((1, 1), dtype=np.float32),
            )

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError):
            EventGraph(
                edge_index=np.array([[0], [1]]),
                x=np.zeros((2, 2), dtype=np.float32),
                y=np.zeros((1, 1), dtype=np.float32),
                edge_labels=np.array([1, 0], dtype=np.int8),
            )


class TestViews:
    def test_rows_cols_match_algorithm1_convention(self):
        g = tiny_graph()
        assert np.array_equal(g.rows, [0, 1, 2])
        assert np.array_equal(g.cols, [1, 2, 3])

    def test_csr_is_cached(self):
        g = tiny_graph()
        assert g.to_csr() is g.to_csr()
        assert g.to_csr(symmetric=True) is not g.to_csr(symmetric=False)

    def test_symmetric_csr_doubles_nnz(self):
        g = tiny_graph()
        assert g.to_csr(symmetric=True).nnz == 2 * g.to_csr(symmetric=False).nnz

    def test_csr_binary_after_dedup(self):
        g = random_graph(50, 200, rng=np.random.default_rng(0))
        csr = g.to_csr(symmetric=True)
        assert np.all(csr.data == 1.0)

    def test_degrees(self):
        g = tiny_graph()
        assert np.array_equal(g.degrees(symmetric=True), [1, 2, 2, 1])
        assert np.array_equal(g.degrees(symmetric=False), [1, 1, 1, 0])

    def test_degrees_match_dedup_csr_with_duplicates_and_self_loops(self):
        """Regression: degrees() must agree with the deduplicated binary
        adjacency the samplers walk (duplicate edges count once, a
        self-loop counts once), not with the raw edge list."""
        ei = np.array([[0, 0, 1, 1, 2], [1, 1, 1, 2, 0]])  # dup 0→1, loop 1→1
        g = EventGraph(
            edge_index=ei,
            x=np.zeros((3, 2), dtype=np.float32),
            y=np.zeros((5, 1), dtype=np.float32),
        )
        for symmetric in (True, False):
            expected = np.diff(g.to_csr(symmetric=symmetric).indptr)
            assert np.array_equal(g.degrees(symmetric=symmetric), expected)
        # undirected: 0–{1,2}, 1–{0,1,2}, 2–{0,1}
        assert g.degrees(symmetric=True).tolist() == [2, 3, 2]

    def test_true_edge_fraction(self):
        assert tiny_graph().true_edge_fraction() == pytest.approx(2 / 3)

    def test_true_edge_fraction_requires_labels(self):
        g = tiny_graph()
        g.edge_labels = None
        with pytest.raises(ValueError):
            g.true_edge_fraction()


class TestEdgeMaskSubgraph:
    def test_keeps_vertices_in_place(self):
        g = tiny_graph()
        sub = g.edge_mask_subgraph(np.array([True, False, True]))
        assert sub.num_nodes == g.num_nodes
        assert sub.num_edges == 2
        assert np.array_equal(sub.rows, [0, 2])

    def test_labels_follow_mask(self):
        g = tiny_graph()
        sub = g.edge_mask_subgraph(np.array([False, True, True]))
        assert np.array_equal(sub.edge_labels, [0, 1])

    def test_mask_length_checked(self):
        with pytest.raises(ValueError):
            tiny_graph().edge_mask_subgraph(np.array([True]))
