"""Graph descriptive statistics."""

import numpy as np
import pytest

from repro.graph import (
    chain_graph,
    describe,
    describe_many,
    disjoint_chains,
    random_graph,
    star_graph,
)


class TestDescribe:
    def test_chain(self):
        s = describe(chain_graph(10))
        assert s.num_nodes == 10
        assert s.num_edges == 9
        assert s.num_components == 1
        assert s.largest_component == 10
        assert s.max_degree == 2
        assert s.isolated_vertices == 0
        assert s.true_edge_fraction == 1.0

    def test_star(self):
        s = describe(star_graph(7))
        assert s.max_degree == 7
        assert s.mean_degree == pytest.approx(2 * 7 / 8)

    def test_disjoint_chains_components(self):
        s = describe(disjoint_chains(4, 5))
        assert s.num_components == 4
        assert s.largest_component == 5

    def test_mean_degree_handshake(self):
        g = random_graph(50, 200, rng=np.random.default_rng(0))
        s = describe(g)
        assert s.mean_degree == pytest.approx(2 * g.num_edges / g.num_nodes)

    def test_render_contains_key_numbers(self):
        s = describe(chain_graph(5))
        out = s.render()
        assert "n=5" in out and "m=4" in out


class TestDescribeMany:
    def test_aggregates_means(self):
        graphs = [chain_graph(10), chain_graph(20)]
        agg = describe_many(graphs)
        assert agg["graphs"] == 2
        assert agg["avg_nodes"] == pytest.approx(15.0)
        assert agg["avg_edges"] == pytest.approx((9 + 19) / 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            describe_many([])
