"""Random-graph generators and DDP partition helpers."""

import numpy as np
import pytest

from repro.graph import (
    block_partition,
    chain_graph,
    disjoint_chains,
    random_graph,
    round_robin_partition,
    shard_batch,
    star_graph,
    connected_components,
)


class TestGenerators:
    def test_random_graph_no_self_loops_or_duplicates(self):
        g = random_graph(30, 200, rng=np.random.default_rng(0))
        assert np.all(g.rows != g.cols)
        pairs = {tuple(e) for e in g.edge_index.T.tolist()}
        assert len(pairs) == g.num_edges

    def test_random_graph_true_fraction_respected(self):
        g = random_graph(100, 2000, rng=np.random.default_rng(0), true_fraction=0.25)
        assert abs(g.true_edge_fraction() - 0.25) < 0.1

    def test_random_graph_min_nodes(self):
        with pytest.raises(ValueError):
            random_graph(1, 5)

    def test_chain_is_one_component(self):
        g = chain_graph(12)
        labels = connected_components(g.rows, g.cols, g.num_nodes)
        assert len(set(labels.tolist())) == 1
        assert g.num_edges == 11

    def test_disjoint_chains_components(self):
        g = disjoint_chains(5, 6)
        labels = connected_components(g.rows, g.cols, g.num_nodes)
        assert len(set(labels.tolist())) == 5
        assert g.particle_ids.min() == 1
        assert g.particle_ids.max() == 5

    def test_star_hub_degree(self):
        g = star_graph(9)
        assert g.degrees(symmetric=True)[0] == 9


class TestPartition:
    def test_block_partition_covers_all(self):
        items = np.arange(10)
        parts = block_partition(items, 3)
        assert np.array_equal(np.concatenate(parts), items)
        assert [len(p) for p in parts] == [4, 3, 3]

    def test_round_robin_covers_all(self):
        items = np.arange(10)
        parts = round_robin_partition(items, 4)
        assert sorted(np.concatenate(parts).tolist()) == list(range(10))

    def test_shard_batch_equal_shards(self):
        """The paper's 256/P local batch: equal shards when divisible."""
        batch = np.arange(256)
        for p in (1, 2, 4, 8):
            shards = [shard_batch(batch, r, p) for r in range(p)]
            assert all(len(s) == 256 // p for s in shards)
            assert np.array_equal(np.concatenate(shards), batch)

    def test_shard_batch_rank_bounds(self):
        with pytest.raises(ValueError):
            shard_batch(np.arange(8), 4, 4)

    def test_invalid_num_parts(self):
        with pytest.raises(ValueError):
            block_partition(np.arange(4), 0)
        with pytest.raises(ValueError):
            round_robin_partition(np.arange(4), 0)
