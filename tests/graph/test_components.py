"""Connected components: UnionFind vs scipy vs networkx (property-based)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    UnionFind,
    components_as_lists,
    connected_components,
    connected_components_scipy,
)


@st.composite
def edge_lists(draw):
    n = draw(st.integers(2, 40))
    m = draw(st.integers(0, 80))
    rows = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    cols = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return n, np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64)


def nx_labels(n, rows, cols):
    G = nx.Graph()
    G.add_nodes_from(range(n))
    G.add_edges_from(zip(rows.tolist(), cols.tolist()))
    return list(nx.connected_components(G))


class TestAgainstNetworkx:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_scipy_component_count_matches(self, data):
        n, rows, cols = data
        labels = connected_components_scipy(rows, cols, n)
        assert len(set(labels.tolist())) == len(nx_labels(n, rows, cols))

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_unionfind_matches_networkx_partition(self, data):
        n, rows, cols = data
        uf = UnionFind(n)
        uf.union_edges(rows, cols)
        labels = uf.labels()
        ours = {frozenset(np.flatnonzero(labels == l).tolist()) for l in set(labels.tolist())}
        theirs = {frozenset(c) for c in nx_labels(n, rows, cols)}
        assert ours == theirs

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_unionfind_and_scipy_agree(self, data):
        n, rows, cols = data
        uf = UnionFind(n)
        uf.union_edges(rows, cols)
        assert uf.num_components() == len(
            set(connected_components(rows, cols, n).tolist())
        )


class TestUnionFind:
    def test_singletons_initially(self):
        assert UnionFind(5).num_components() == 5

    def test_union_returns_whether_merged(self):
        uf = UnionFind(3)
        assert uf.union(0, 1) is True
        assert uf.union(0, 1) is False

    def test_find_idempotent(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(0) == uf.find(2)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_labels_canonical(self):
        uf = UnionFind(4)
        uf.union(2, 3)
        labels = uf.labels()
        assert labels[2] == labels[3]
        assert len(set(labels.tolist())) == 3


class TestComponentsAsLists:
    def test_groups_all_vertices(self):
        labels = np.array([0, 1, 0, 2, 1])
        groups = components_as_lists(labels)
        assert sorted(np.concatenate(groups).tolist()) == [0, 1, 2, 3, 4]

    def test_min_size_filters(self):
        labels = np.array([0, 0, 0, 1, 2, 2])
        groups = components_as_lists(labels, min_size=2)
        sizes = sorted(len(g) for g in groups)
        assert sizes == [2, 3]

    def test_mismatched_rows_cols(self):
        with pytest.raises(ValueError):
            connected_components_scipy(np.array([0]), np.array([0, 1]), 2)
