"""Top-k gradient compression with error feedback."""

import numpy as np
import pytest

from repro.distributed import (
    NVLINK_A100,
    CompressedSynchronizer,
    TopKCompressor,
    compressed_bytes,
    compression_speedup,
    replicate_model,
)
from repro.nn import MLP, SGD, BCEWithLogitsLoss
from repro.tensor import Tensor


class TestTopKCompressor:
    def test_keeps_largest_magnitudes(self):
        comp = TopKCompressor(ratio=0.25)
        grad = np.array([0.1, -5.0, 0.2, 3.0, -0.05, 0.0, 1.0, -2.0], dtype=np.float32)
        idx, values = comp.compress(grad)
        assert len(idx) == 2
        assert set(idx.tolist()) == {1, 3}

    def test_error_feedback_accumulates(self):
        """Mass dropped in step 1 must reappear (and eventually transmit)."""
        comp = TopKCompressor(ratio=0.25)
        grad = np.array([1.0, 0.6, 0.5, 0.4], dtype=np.float32)
        idx1, _ = comp.compress(grad)
        assert idx1.tolist() == [0]
        # second step: zero new gradient; the residual alone should now
        # surface the next-largest entry
        idx2, values2 = comp.compress(np.zeros(4, dtype=np.float32))
        assert idx2.tolist() == [1]
        assert values2[0] == pytest.approx(0.6)

    def test_no_mass_lost(self):
        """Σ(transmitted) + residual == Σ(gradients) at all times."""
        rng = np.random.default_rng(0)
        comp = TopKCompressor(ratio=0.1)
        total_in = np.zeros(50)
        total_out = np.zeros(50)
        for _ in range(10):
            g = rng.normal(size=50).astype(np.float32)
            total_in += g
            idx, values = comp.compress(g)
            np.add.at(total_out, idx, values)
        assert np.allclose(total_out + comp._residual, total_in, atol=1e-4)

    def test_ratio_one_transmits_everything(self):
        comp = TopKCompressor(ratio=1.0)
        g = np.arange(5, dtype=np.float32)
        idx, values = comp.compress(g)
        assert len(idx) == 5
        assert np.all(comp._residual == 0)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            TopKCompressor(ratio=0.0)


class TestCompressedSynchronizer:
    def _setup(self, ratio):
        def factory():
            return MLP(8, 16, out_features=1, num_layers=2, rng=np.random.default_rng(42))

        models = replicate_model(factory, 4)
        return models, CompressedSynchronizer(models, ratio)

    def test_replicas_stay_identical(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(16, 8)).astype(np.float32)
        Y = (rng.random(16) > 0.5).astype(np.float32)
        models, sync = self._setup(0.2)
        opts = [SGD(m.parameters(), lr=0.05) for m in models]
        loss_fn = BCEWithLogitsLoss()
        shards = np.array_split(np.arange(16), 4)
        for _ in range(4):
            for m, sh in zip(models, shards):
                m.zero_grad()
                loss_fn(m(Tensor(X[sh])).reshape(-1), Y[sh]).backward()
            sync.synchronize_gradients()
            for opt in opts:
                opt.step()
        ref = models[0].state_dict()
        for m in models[1:]:
            for name, arr in m.state_dict().items():
                assert np.array_equal(arr, ref[name]), name

    def test_training_still_converges(self):
        """Error feedback keeps compressed SGD convergent."""
        rng = np.random.default_rng(1)
        X = rng.normal(size=(32, 8)).astype(np.float32)
        Y = (rng.random(32) > 0.5).astype(np.float32)
        def train(sync_obj, models):
            opts = [SGD(m.parameters(), lr=0.1) for m in models]
            loss_fn = BCEWithLogitsLoss()
            shards = np.array_split(np.arange(32), 4)
            losses = []
            for _ in range(60):
                step_losses = []
                for m, sh in zip(models, shards):
                    m.zero_grad()
                    loss = loss_fn(m(Tensor(X[sh])).reshape(-1), Y[sh])
                    loss.backward()
                    step_losses.append(loss.item())
                losses.append(np.mean(step_losses))
                sync_obj.synchronize_gradients()
                for opt in opts:
                    opt.step()
            return losses

        from repro.distributed import DistributedDataParallel, SimCommunicator

        models_c, sync_c = self._setup(0.25)
        losses_c = train(sync_c, models_c)

        def factory():
            return MLP(8, 16, out_features=1, num_layers=2, rng=np.random.default_rng(42))

        models_d = replicate_model(factory, 4)
        sync_d = DistributedDataParallel(models_d, SimCommunicator(4), "coalesced")
        losses_d = train(sync_d, models_d)

        # top-k SGD converges more slowly than dense (only k coordinates
        # move per step) but error feedback keeps it descending and within
        # striking distance of the dense run
        assert losses_c[-1] < losses_c[0]
        assert losses_c[-1] < 1.6 * losses_d[-1]

    def test_bytes_accounting(self):
        models, sync = self._setup(0.1)
        n = sum(p.size for p in models[0].parameters())
        for m in models:
            m.zero_grad()
        # populate zero grads so flatten works
        rng = np.random.default_rng(0)
        X = rng.normal(size=(8, 8)).astype(np.float32)
        Y = np.zeros(8, dtype=np.float32)
        loss_fn = BCEWithLogitsLoss()
        for m in models:
            loss_fn(m(Tensor(X)).reshape(-1), Y).backward()
        sync.synchronize_gradients()
        expected = 4 * compressed_bytes(n, 0.1)  # 4 ranks
        assert sync.bytes_exchanged == expected
        assert sync.bytes_exchanged < 4 * n * 4  # far below dense


class TestCostModel:
    def test_compressed_bytes(self):
        assert compressed_bytes(1000, 0.1) == 100 * 8
        assert compressed_bytes(10, 0.001) == 8  # at least one entry

    def test_speedup_grows_as_ratio_shrinks(self):
        n = 10**6
        s_small = compression_speedup(n, 0.01, 4, NVLINK_A100)
        s_big = compression_speedup(n, 0.5, 4, NVLINK_A100)
        assert s_small > s_big > 0.4
