"""CommBackend interface, factory selection, and backend-agnostic DDP
behaviour (stale-eviction handling, barrier accounting, strategy parity)."""

import numpy as np
import pytest

from repro.distributed import (
    COMM_BACKENDS,
    CommBackend,
    DistributedDataParallel,
    NVLINK_A100,
    ProcCommunicator,
    SimCommunicator,
    create_communicator,
    replicate_model,
)
from repro.faults import CommError, CommFault, FaultPlan, ProcessFault, RetryPolicy
from repro.nn import MLP
from repro.tensor import Tensor


def _make_models(world=4, seed=3):
    factory = lambda: MLP(
        4, 8, out_features=1, num_layers=2, rng=np.random.default_rng(seed)
    )
    return replicate_model(factory, world)


def _backward_all(models, rng):
    for model in models:
        x = Tensor(rng.standard_normal((6, 4)).astype(np.float32))
        out = model(x)
        out.backward(np.ones_like(out.data))


class TestFactory:
    def test_backends_tuple(self):
        assert COMM_BACKENDS == ("sim", "proc")

    def test_sim_selection(self):
        comm = create_communicator("sim", 3)
        assert isinstance(comm, SimCommunicator)
        assert isinstance(comm, CommBackend)
        assert comm.world_size == 3
        comm.close()  # no-op on the simulator

    def test_proc_selection(self):
        comm = create_communicator("proc", 2, collective_timeout=10.0)
        try:
            assert isinstance(comm, ProcCommunicator)
            assert isinstance(comm, CommBackend)
            assert comm.world_size == 2
        finally:
            comm.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown comm backend"):
            create_communicator("nccl", 2)

    def test_factory_forwards_cost_model_and_algorithm(self):
        comm = create_communicator("sim", 2, algorithm="tree")
        assert comm.algorithm == "tree"
        assert comm.cost_model is NVLINK_A100

    def test_context_manager_closes(self):
        with create_communicator("proc", 2, collective_timeout=10.0) as comm:
            out = comm.allreduce([np.ones(4)] * 2)
            assert np.array_equal(out[0], np.ones(4))
        with pytest.raises(RuntimeError, match="closed"):
            comm.allreduce([np.ones(4)] * 2)


class TestSimBarrier:
    def test_barrier_charges_cost_model_and_counts(self):
        comm = SimCommunicator(4)
        before = comm.stats.modeled_seconds
        comm.barrier()
        assert comm.stats.num_barrier_calls == 1
        # dissemination barrier: ceil(log2 4) = 2 rounds of alpha
        assert comm.stats.modeled_seconds - before == pytest.approx(
            2 * comm.cost_model.alpha
        )

    def test_barrier_free_for_single_rank(self):
        comm = SimCommunicator(1)
        comm.barrier()
        assert comm.stats.num_barrier_calls == 1
        assert comm.stats.modeled_seconds == 0.0

    def test_barrier_consults_fault_plan(self):
        plan = FaultPlan(comm_faults=[CommFault(at_call=0, rank=1, transient=True)])
        comm = SimCommunicator(2, fault_plan=plan)
        with pytest.raises(CommError):
            comm.barrier()
        comm.barrier()  # attempt counter advanced; next call is clean
        assert comm.stats.num_barrier_calls == 1

    def test_barrier_time_values(self):
        model = NVLINK_A100
        assert model.barrier_time(1) == 0.0
        assert model.barrier_time(2) == pytest.approx(model.alpha)
        assert model.barrier_time(5) == pytest.approx(3 * model.alpha)
        with pytest.raises(ValueError):
            model.barrier_time(0)

    def test_sim_rejects_process_faults(self):
        plan = FaultPlan(process_faults=[ProcessFault(at_call=0, rank=1)])
        with pytest.raises(ValueError, match="proc"):
            SimCommunicator(2, fault_plan=plan)


class TestRetryPolicyMaxDelay:
    def test_uncapped_backoff_is_exponential(self):
        policy = RetryPolicy(max_retries=8, base_delay=0.1, multiplier=2.0)
        assert policy.delay(7) == pytest.approx(0.1 * 2**7)

    def test_max_delay_caps_the_exponential(self):
        policy = RetryPolicy(
            max_retries=8, base_delay=0.1, multiplier=2.0, max_delay=0.75
        )
        assert [policy.delay(i) for i in range(5)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.75, 0.75]
        )

    def test_negative_max_delay_rejected(self):
        with pytest.raises(ValueError, match="max_delay"):
            RetryPolicy(max_delay=-1.0)


class _StaleReportingComm(SimCommunicator):
    """Raises one permanent failure naming an already-evicted rank."""

    def __init__(self, world_size, stale_rank):
        super().__init__(world_size)
        self._stale_rank = stale_rank
        self._fired = False

    def allreduce(self, buffers, average=True):
        if not self._fired:
            self._fired = True
            raise CommError(
                f"late failure report for rank {self._stale_rank}",
                rank=self._stale_rank,
                transient=False,
            )
        return super().allreduce(buffers, average)


class TestStaleEvictionReport:
    """Regression: a permanent CommError naming an already-evicted rank
    used to crash synchronize_gradients (remove_rank ValueError)."""

    def test_stale_report_is_treated_as_handled(self, rng):
        comm = _StaleReportingComm(4, stale_rank=2)
        models = _make_models(4)
        ddp = DistributedDataParallel(models, comm)
        ddp.drop_rank(2)  # the rank is already gone when the report lands
        _backward_all(ddp.models, rng)
        ddp.synchronize_gradients()  # must not raise
        assert ddp.global_ranks == [0, 1, 3]
        assert any("stale" in e for e in comm.stats.events)
        # gradients really did synchronise on the retry
        grads = [list(m.parameters())[0].grad for m in ddp.models]
        for g in grads[1:]:
            assert np.array_equal(g, grads[0])

    def test_stale_report_budget_guards_against_livelock(self, rng):
        class _AlwaysStale(SimCommunicator):
            def allreduce(self, buffers, average=True):
                raise CommError("stuck reporter", rank=9, transient=False)

        comm = _AlwaysStale(4)
        models = _make_models(4)
        ddp = DistributedDataParallel(models, comm)
        _backward_all(ddp.models, rng)
        with pytest.raises(CommError):
            ddp.synchronize_gradients()


class TestMixedNoneGradientParity:
    """Satellite: parameters with grad=None on some ranks must reduce
    identically under per_parameter and coalesced synchronisation."""

    @staticmethod
    def _apply_mixed_grads(models, rng):
        # deterministic mixed pattern: parameter i on rank r carries a
        # gradient only when (i + r) is even; the rest stay None
        for r, model in enumerate(models):
            for i, (_, p) in enumerate(model.named_parameters()):
                if (i + r) % 2 == 0:
                    p.grad = rng.standard_normal(p.data.shape).astype(
                        p.data.dtype
                    )
                else:
                    p.grad = None

    def test_strategies_agree_with_mixed_none_grads(self):
        world = 4
        ddps = {}
        for strategy in ("per_parameter", "coalesced"):
            models = _make_models(world)
            ddps[strategy] = DistributedDataParallel(
                models, SimCommunicator(world), strategy=strategy
            )
            # identical grads in both setups: same seed, same pattern
            self._apply_mixed_grads(models, np.random.default_rng(7))
            ddps[strategy].synchronize_gradients()
        per_p, coal = ddps["per_parameter"], ddps["coalesced"]
        for m_p, m_c in zip(per_p.models, coal.models):
            for (name, p_p), (_, p_c) in zip(
                m_p.named_parameters(), m_c.named_parameters()
            ):
                assert p_p.grad is not None and p_c.grad is not None
                np.testing.assert_allclose(
                    p_p.grad, p_c.grad, rtol=0, atol=1e-6, err_msg=name
                )

    def test_all_none_on_one_rank_contributes_zeros(self):
        world = 2
        models = _make_models(world)
        ddp = DistributedDataParallel(models, SimCommunicator(world))
        rng = np.random.default_rng(11)
        reference = {}
        for i, (name, p) in enumerate(models[0].named_parameters()):
            p.grad = rng.standard_normal(p.data.shape).astype(p.data.dtype)
            reference[name] = p.grad
        for _, p in models[1].named_parameters():
            p.grad = None  # rank 1 sat this step out entirely
        ddp.synchronize_gradients()
        for name, p in models[0].named_parameters():
            np.testing.assert_allclose(
                p.grad, reference[name] / 2, rtol=0, atol=1e-6, err_msg=name
            )
