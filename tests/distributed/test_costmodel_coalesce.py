"""α–β cost model and gradient coalescing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import (
    NVLINK_A100,
    CommCostModel,
    flatten_arrays,
    gradient_arrays,
    unflatten_array,
)
from repro.nn import MLP
from repro.tensor import Tensor, ops


class TestCostModel:
    def test_single_rank_free(self):
        assert NVLINK_A100.allreduce_time(10**6, 1) == 0.0

    def test_latency_term_dominates_small_messages(self):
        m = CommCostModel(alpha=10e-6, beta=1e-11)
        t = m.allreduce_time(64, 4)
        assert t == pytest.approx(2 * 3 * 10e-6, rel=0.01)

    def test_bandwidth_term_dominates_large_messages(self):
        m = CommCostModel(alpha=10e-6, beta=1e-11)
        nbytes = 10**9
        t = m.allreduce_time(nbytes, 4)
        assert t == pytest.approx(2 * 0.75 * nbytes * 1e-11, rel=0.01)

    def test_coalescing_speedup_many_small_buffers(self):
        """The Section III-D effect: many f×f matrices → big speedup."""
        sizes = [64 * 64 * 4] * 50  # 50 small parameter matrices
        speedup = NVLINK_A100.coalescing_speedup(sizes, 4)
        assert speedup > 5.0

    def test_coalescing_neutral_single_buffer(self):
        assert NVLINK_A100.coalescing_speedup([1024], 4) == pytest.approx(1.0)

    @given(
        st.lists(st.integers(4, 10_000), min_size=1, max_size=30),
        st.integers(2, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_coalesced_never_slower(self, sizes, world):
        assert NVLINK_A100.coalescing_speedup(sizes, world) >= 1.0 - 1e-9

    def test_monotone_in_world_size_latency(self):
        m = CommCostModel(alpha=1e-5, beta=0.0)
        times = [m.allreduce_time(100, p) for p in (2, 4, 8)]
        assert times == sorted(times)

    def test_validations(self):
        with pytest.raises(ValueError):
            NVLINK_A100.allreduce_time(100, 0)
        with pytest.raises(ValueError):
            NVLINK_A100.allreduce_time(-1, 2)

    def test_broadcast_single_rank_free(self):
        assert NVLINK_A100.broadcast_time(10**6, 1) == 0.0

    def test_broadcast_binomial_tree_rounds(self):
        """ceil(log2 P) rounds of (α + nβ): P=4 → 2 rounds, P=5 → 3."""
        m = CommCostModel(alpha=10e-6, beta=1e-11)
        nbytes = 1024
        per_round = 10e-6 + nbytes * 1e-11
        assert m.broadcast_time(nbytes, 4) == pytest.approx(2 * per_round)
        assert m.broadcast_time(nbytes, 5) == pytest.approx(3 * per_round)

    def test_broadcast_monotone_in_world_size(self):
        times = [NVLINK_A100.broadcast_time(4096, p) for p in (2, 4, 16)]
        assert times == sorted(times)
        assert times[0] > 0.0

    def test_broadcast_validations(self):
        with pytest.raises(ValueError):
            NVLINK_A100.broadcast_time(100, 0)
        with pytest.raises(ValueError):
            NVLINK_A100.broadcast_time(-1, 2)


class TestCoalesce:
    def test_round_trip_preserves_values_and_shapes(self):
        rng = np.random.default_rng(0)
        arrays = [rng.normal(size=s).astype(np.float32) for s in [(3, 4), (7,), (2, 5, 2)]]
        flat, specs = flatten_arrays(arrays)
        assert flat.size == sum(a.size for a in arrays)
        back = unflatten_array(flat, specs)
        for a, b in zip(arrays, back):
            assert a.shape == b.shape
            assert np.array_equal(a, b)

    def test_unflatten_validates_size(self):
        flat, specs = flatten_arrays([np.ones(4, dtype=np.float32)])
        with pytest.raises(ValueError):
            unflatten_array(np.ones(5, dtype=np.float32), specs)

    def test_gradient_arrays_order_matches_named_parameters(self):
        m = MLP(4, 8, num_layers=2, rng=np.random.default_rng(0))
        x = Tensor(np.ones((2, 4), dtype=np.float32))
        ops.sum(m(x)).backward()
        grads = gradient_arrays(m)
        for (name, p), g in zip(m.named_parameters(), grads):
            assert g.shape == p.data.shape

    def test_gradient_arrays_zero_fills_missing(self):
        m = MLP(4, 8, num_layers=2, rng=np.random.default_rng(0))
        # no backward at all: every gradient should be a zero array
        grads = gradient_arrays(m)
        assert all(np.all(g == 0) for g in grads)

    def test_flat_layout_deterministic_across_replicas(self):
        """Coalescing relies on identical layout across ranks."""
        def build():
            return MLP(6, 12, num_layers=3, rng=np.random.default_rng(1))

        m1, m2 = build(), build()
        _, specs1 = flatten_arrays(gradient_arrays(m1))
        _, specs2 = flatten_arrays(gradient_arrays(m2))
        assert specs1 == specs2
