"""Comm fault injection, retry/backoff, and elastic rank recovery."""

import numpy as np
import pytest

from repro.distributed import DistributedDataParallel, SimCommunicator, replicate_model
from repro.faults import (
    CommError,
    CommFault,
    FaultPlan,
    RetryPolicy,
    SimClock,
    call_with_retries,
)
from repro.nn import MLP
from repro.pipeline import GNNTrainConfig, train_gnn
from repro.tensor import Tensor

SMALL = dict(
    epochs=2,
    batch_size=32,
    hidden=8,
    num_layers=2,
    mlp_layers=2,
    depth=2,
    fanout=3,
    seed=0,
    world_size=4,
)


def _make_ddp(world=4, fault_plan=None, retry_policy=None, strategy="coalesced"):
    factory = lambda: MLP(
        4, 8, out_features=1, num_layers=2, rng=np.random.default_rng(3)
    )
    models = replicate_model(factory, world)
    comm = SimCommunicator(world, fault_plan=fault_plan)
    clock = SimClock()
    ddp = DistributedDataParallel(
        models, comm, strategy=strategy, retry_policy=retry_policy, clock=clock
    )
    return ddp, comm, clock


def _backward_all(models, rng):
    for rank, model in enumerate(models):
        x = Tensor(rng.standard_normal((6, 4)).astype(np.float32))
        out = model(x)
        out.backward(np.ones_like(out.data))


class TestSimClockAndRetryPolicy:
    def test_clock_accumulates_without_sleeping(self):
        clock = SimClock()
        clock.sleep(0.5)
        clock.sleep(1.25)
        assert clock.now == 1.75

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(max_retries=3, base_delay=0.1, multiplier=2.0)
        assert [policy.delay(i) for i in range(3)] == [0.1, 0.2, 0.4]

    def test_exhaustion_reraises_original_error(self):
        clock = SimClock()
        original = CommError("boom", rank=1, transient=True)

        def always_fails():
            raise original

        with pytest.raises(CommError) as excinfo:
            call_with_retries(always_fails, RetryPolicy(max_retries=2), clock)
        assert excinfo.value is original
        # two retries of backoff were charged to the simulated clock
        assert clock.now == pytest.approx(0.05 + 0.10)

    def test_permanent_fault_is_never_retried(self):
        clock = SimClock()
        calls = []

        def permanent_failure():
            calls.append(1)
            raise CommError("dead rank", rank=0, transient=False)

        with pytest.raises(CommError):
            call_with_retries(permanent_failure, RetryPolicy(max_retries=5), clock)
        assert len(calls) == 1
        assert clock.now == 0.0


@pytest.mark.faults
class TestTransientCommFaults:
    @pytest.mark.parametrize("strategy", ["coalesced", "per_parameter"])
    def test_transient_fault_retried_and_converges(self, rng, strategy):
        plan = FaultPlan(comm_faults=[CommFault(at_call=0, rank=2, transient=True)])
        ddp, comm, clock = _make_ddp(fault_plan=plan, strategy=strategy)
        _backward_all(ddp.models, rng)
        ddp.synchronize_gradients()
        assert comm.stats.num_retries == 1
        assert comm.stats.retry_backoff_seconds > 0
        assert clock.now == comm.stats.retry_backoff_seconds
        # gradients are in sync across all ranks after the retry
        grads = [next(m.parameters()).grad for m in ddp.models]
        for g in grads[1:]:
            np.testing.assert_array_equal(g, grads[0])

    def test_retry_exhaustion_raises_original_commerror(self, rng):
        plan = FaultPlan(
            comm_faults=[CommFault(at_call=0, rank=1, transient=True, times=50)]
        )
        ddp, comm, _ = _make_ddp(
            fault_plan=plan, retry_policy=RetryPolicy(max_retries=3)
        )
        _backward_all(ddp.models, rng)
        with pytest.raises(CommError, match="injected transient collective failure"):
            ddp.synchronize_gradients()
        assert comm.stats.num_retries == 3

    def test_training_survives_transient_fault(self, tiny_dataset):
        plan = FaultPlan(comm_faults=[CommFault(at_call=3, rank=1, transient=True)])
        result = train_gnn(
            tiny_dataset.train,
            tiny_dataset.val,
            GNNTrainConfig(mode="shadow", **SMALL),
            fault_plan=plan,
        )
        assert result.comm_stats.num_retries == 1
        assert np.isfinite(result.history.final.train_loss)


@pytest.mark.faults
class TestElasticRecovery:
    def test_permanent_failure_shrinks_world(self, rng):
        plan = FaultPlan(comm_faults=[CommFault(at_call=0, rank=2, transient=False)])
        ddp, comm, _ = _make_ddp(fault_plan=plan)
        _backward_all(ddp.models, rng)
        ddp.synchronize_gradients()
        assert ddp.global_ranks == [0, 1, 3]
        assert comm.world_size == 3
        assert comm.stats.rank_failures == [2]
        assert any("rank 2" in e for e in comm.stats.events)

    def test_survivor_gradients_average_over_new_world(self, rng):
        """After eviction the mean is over the survivors, not the old P."""
        plan = FaultPlan(comm_faults=[CommFault(at_call=0, rank=3, transient=False)])
        ddp, comm, _ = _make_ddp(fault_plan=plan)
        _backward_all(ddp.models, rng)
        raw = [
            next(m.parameters()).grad.copy()
            for m in ddp.models
            if True
        ]
        ddp.synchronize_gradients()
        expected = np.mean(raw[:3], axis=0)  # survivors 0, 1, 2
        synced = next(ddp.models[0].parameters()).grad
        np.testing.assert_allclose(synced, expected, rtol=1e-6, atol=1e-7)

    def test_cannot_remove_last_rank(self):
        comm = SimCommunicator(1)
        with pytest.raises(RuntimeError, match="last surviving rank"):
            comm.remove_rank(0)

    def test_training_completes_after_permanent_rank_failure(self, tiny_dataset):
        """The acceptance scenario: a DDP run loses one rank mid-training
        and still finishes with a finite loss on the survivors."""
        plan = FaultPlan(comm_faults=[CommFault(at_call=5, rank=2, transient=False)])
        result = train_gnn(
            tiny_dataset.train,
            tiny_dataset.val,
            GNNTrainConfig(mode="shadow", **SMALL),
            fault_plan=plan,
        )
        assert result.comm_stats.rank_failures == [2]
        assert any("permanently failed" in e for e in result.comm_stats.events)
        assert np.isfinite(result.history.final.train_loss)
        assert len(result.history) == SMALL["epochs"]

    def test_rank_zero_failure_tolerated(self, tiny_dataset):
        """Even the lead rank (loss reporting, eval, checkpoints) may die."""
        plan = FaultPlan(comm_faults=[CommFault(at_call=2, rank=0, transient=False)])
        result = train_gnn(
            tiny_dataset.train,
            tiny_dataset.val,
            GNNTrainConfig(mode="bulk", **SMALL),
            fault_plan=plan,
        )
        assert result.comm_stats.rank_failures == [0]
        assert np.isfinite(result.history.final.train_loss)

    def test_double_failure_leaves_two_survivors(self, tiny_dataset):
        plan = FaultPlan(
            comm_faults=[
                CommFault(at_call=2, rank=1, transient=False),
                CommFault(at_call=6, rank=3, transient=False),
            ]
        )
        result = train_gnn(
            tiny_dataset.train,
            tiny_dataset.val,
            GNNTrainConfig(mode="shadow", **SMALL),
            fault_plan=plan,
        )
        assert sorted(result.comm_stats.rank_failures) == [1, 3]
        assert np.isfinite(result.history.final.train_loss)
