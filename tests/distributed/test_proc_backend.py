"""Multi-process comm backend: bit-parity with the simulator, crash
tolerance (SIGKILL / hang / straggler chaos), and elastic recovery.

Everything here runs real worker processes; the per-test timeout cap
(pytest-timeout or the bundled fallback) turns a supervision bug into a
test failure instead of a wedged suite.
"""

import numpy as np
import pytest

from repro.distributed import (
    DistributedDataParallel,
    ProcCommunicator,
    replicate_model,
)
from repro.distributed.ring import ring_allreduce
from repro.distributed.supervisor import ControlBlock, HeartbeatMonitor
from repro.faults import (
    CommError,
    CommFault,
    CommTimeoutError,
    FaultPlan,
    ProcessFault,
    RankDeadError,
)
from repro.nn import MLP
from repro.tensor import Tensor

pytestmark = pytest.mark.timeout(90)


@pytest.fixture
def comm2():
    comm = ProcCommunicator(2, collective_timeout=15.0)
    yield comm
    comm.close()


@pytest.fixture
def comm4():
    comm = ProcCommunicator(4, collective_timeout=15.0)
    yield comm
    comm.close()


class TestAllreduceParity:
    @pytest.mark.parametrize("world", [1, 2, 3, 4])
    @pytest.mark.parametrize("average", [True, False])
    def test_bit_exact_with_sequential_ring(self, world, average, rng):
        comm = ProcCommunicator(world, collective_timeout=15.0)
        try:
            bufs = [
                rng.standard_normal(33).astype(np.float64) for _ in range(world)
            ]
            got = comm.allreduce([b.copy() for b in bufs], average=average)
            ref = ring_allreduce([b.copy() for b in bufs], average=average)
            for g, r in zip(got, ref):
                assert np.array_equal(g, r)
        finally:
            comm.close()

    def test_float32_and_2d_shapes(self, comm4, rng):
        m = rng.standard_normal((5, 3)).astype(np.float32)
        bufs = [m + i for i in range(4)]
        got = comm4.allreduce([b.copy() for b in bufs], average=True)
        ref = ring_allreduce([b.copy() for b in bufs], average=True)
        for g, r in zip(got, ref):
            assert g.shape == (5, 3) and g.dtype == np.float32
            assert np.array_equal(g, r)

    def test_repeated_collectives_reuse_segments(self, comm2, rng):
        for n in (8, 64, 8, 256):  # grow, shrink, grow: segment reuse paths
            bufs = [rng.standard_normal(n) for _ in range(2)]
            got = comm2.allreduce([b.copy() for b in bufs], average=False)
            ref = ring_allreduce([b.copy() for b in bufs], average=False)
            assert all(np.array_equal(g, r) for g, r in zip(got, ref))
        assert comm2.stats.num_allreduce_calls == 4
        assert comm2.stats.measured_seconds > 0.0

    def test_world_size_mismatch_rejected(self, comm2):
        with pytest.raises(ValueError, match="rank buffers"):
            comm2.allreduce([np.ones(3)])

    def test_modeled_time_matches_alpha_beta_form(self, comm2):
        comm2.allreduce([np.ones(16)] * 2)
        expected = comm2.cost_model.allreduce_time(16 * 8, 2)
        assert comm2.stats.modeled_seconds == pytest.approx(expected)


class TestBroadcastAndBarrier:
    def test_broadcast_bit_exact(self, comm4, rng):
        x = rng.standard_normal((3, 4))
        out = comm4.broadcast(x)
        assert len(out) == 4
        for o in out:
            assert np.array_equal(o, x) and o.dtype == x.dtype

    def test_barrier_counts_and_measures(self, comm4):
        comm4.barrier()
        comm4.barrier()
        assert comm4.stats.num_barrier_calls == 2
        assert comm4.stats.measured_seconds > 0.0

    def test_single_rank_shortcuts(self):
        comm = ProcCommunicator(1, collective_timeout=15.0)
        try:
            out = comm.allreduce([np.full(4, 7.0)])
            assert np.array_equal(out[0], np.full(4, 7.0))
            bout = comm.broadcast(np.arange(3.0))
            assert np.array_equal(bout[0], np.arange(3.0))
            comm.barrier()
        finally:
            comm.close()


class TestLifecycle:
    def test_non_ring_algorithm_rejected(self):
        with pytest.raises(ValueError, match="ring"):
            ProcCommunicator(2, algorithm="tree")

    def test_close_is_idempotent_and_final(self, rng):
        comm = ProcCommunicator(2, collective_timeout=15.0)
        comm.allreduce([rng.standard_normal(4) for _ in range(2)])
        comm.close()
        comm.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            comm.barrier()

    def test_remove_rank_validates(self, comm4):
        with pytest.raises(ValueError, match="not live"):
            comm4.remove_rank(9)
        comm4.remove_rank(1)
        with pytest.raises(ValueError, match="not live"):
            comm4.remove_rank(1)  # double eviction

    def test_last_rank_cannot_be_removed(self, comm2):
        comm2.remove_rank(0)
        with pytest.raises(RuntimeError, match="last surviving"):
            comm2.remove_rank(1)

    def test_collectives_shrink_after_eviction(self, comm4, rng):
        comm4.remove_rank(2)
        assert comm4.ranks == [0, 1, 3]
        bufs = [rng.standard_normal(10) for _ in range(3)]
        got = comm4.allreduce([b.copy() for b in bufs], average=True)
        ref = ring_allreduce([b.copy() for b in bufs], average=True)
        assert all(np.array_equal(g, r) for g, r in zip(got, ref))
        assert comm4.stats.rank_failures == [2]


@pytest.mark.faults
class TestChaos:
    def test_sigkill_surfaces_as_permanent_rank_death(self):
        plan = FaultPlan(
            process_faults=[ProcessFault(at_call=1, rank=1, kind="sigkill")]
        )
        comm = ProcCommunicator(
            4, fault_plan=plan, collective_timeout=10.0, heartbeat_deadline=1.0
        )
        try:
            comm.allreduce([np.ones(8)] * 4)  # attempt 0: clean
            with pytest.raises(RankDeadError) as excinfo:
                comm.allreduce([np.ones(8)] * 4)  # attempt 1: rank 1 dies
            assert excinfo.value.rank == 1
            assert not excinfo.value.transient
            comm.remove_rank(1)
            out = comm.allreduce([np.full(8, 3.0)] * 3)
            assert np.array_equal(out[0], np.full(8, 3.0))
        finally:
            comm.close()

    def test_hang_detected_by_heartbeat_deadline(self):
        plan = FaultPlan(
            process_faults=[ProcessFault(at_call=0, rank=2, kind="hang")]
        )
        comm = ProcCommunicator(
            3, fault_plan=plan, collective_timeout=20.0, heartbeat_deadline=0.5
        )
        try:
            with pytest.raises(RankDeadError) as excinfo:
                comm.allreduce([np.ones(4)] * 3)
            assert excinfo.value.rank == 2
            comm.remove_rank(2)  # SIGKILLs the stopped process too
            out = comm.allreduce([np.ones(4)] * 2)
            assert np.array_equal(out[0], np.ones(4))
        finally:
            comm.close()

    def test_straggler_times_out_transiently_then_recovers(self):
        plan = FaultPlan(
            process_faults=[
                ProcessFault(at_call=0, rank=0, kind="slow", duration=1.2)
            ]
        )
        comm = ProcCommunicator(
            2, fault_plan=plan, collective_timeout=0.3, heartbeat_deadline=30.0
        )
        try:
            with pytest.raises(CommTimeoutError) as excinfo:
                comm.allreduce([np.ones(4)] * 2)
            assert excinfo.value.transient
            import time

            time.sleep(1.5)  # straggler wakes, sees the abort, drains
            out = comm.allreduce([np.full(4, 5.0)] * 2)
            assert np.array_equal(out[0], np.full(4, 5.0))
        finally:
            comm.close()

    def test_exception_style_comm_faults_fire_like_sim(self):
        plan = FaultPlan(
            comm_faults=[CommFault(at_call=0, rank=1, transient=True)]
        )
        comm = ProcCommunicator(2, fault_plan=plan, collective_timeout=10.0)
        try:
            with pytest.raises(CommError) as excinfo:
                comm.allreduce([np.ones(4)] * 2)
            assert excinfo.value.transient
            out = comm.allreduce([np.ones(4)] * 2)  # next attempt clean
            assert np.array_equal(out[0], np.ones(4))
        finally:
            comm.close()


@pytest.mark.faults
class TestElasticDDP:
    @staticmethod
    def _make_ddp(comm, world):
        factory = lambda: MLP(
            4, 8, out_features=1, num_layers=2, rng=np.random.default_rng(3)
        )
        models = replicate_model(factory, world)
        return DistributedDataParallel(models, comm)

    @staticmethod
    def _backward_all(models, rng):
        for model in models:
            x = Tensor(rng.standard_normal((6, 4)).astype(np.float32))
            out = model(x)
            out.backward(np.ones_like(out.data))

    def test_sigkill_evicts_and_resyncs_survivors(self, rng):
        plan = FaultPlan(
            process_faults=[ProcessFault(at_call=0, rank=2, kind="sigkill")]
        )
        comm = ProcCommunicator(
            4, fault_plan=plan, collective_timeout=10.0, heartbeat_deadline=1.0
        )
        try:
            ddp = self._make_ddp(comm, 4)
            self._backward_all(ddp.models, rng)
            ddp.synchronize_gradients()  # evicts rank 2, resyncs, retries
            assert ddp.global_ranks == [0, 1, 3]
            assert comm.stats.rank_failures == [2]
            grads = [list(m.parameters())[0].grad for m in ddp.models]
            for g in grads[1:]:
                assert np.array_equal(g, grads[0])
            ddp.assert_in_sync()
        finally:
            comm.close()

    def test_proc_matches_sim_gradients_bit_exactly(self, rng):
        from repro.distributed import SimCommunicator

        state = rng.bit_generator.state
        comms = {
            "sim": SimCommunicator(3),
            "proc": ProcCommunicator(3, collective_timeout=15.0),
        }
        grads = {}
        try:
            for name, comm in comms.items():
                local = np.random.default_rng()
                local.bit_generator.state = state
                ddp = self._make_ddp(comm, 3)
                self._backward_all(ddp.models, local)
                ddp.synchronize_gradients()
                grads[name] = [
                    p.grad.copy()
                    for _, p in ddp.models[0].named_parameters()
                ]
        finally:
            comms["proc"].close()
        for gs, gp in zip(grads["sim"], grads["proc"]):
            assert np.array_equal(gs, gp)


class TestWorkerTelemetry:
    """Per-rank worker tracing: spans/metrics drained over the command
    pipe and merged into the driver trace as one lane per rank."""

    def test_collect_returns_zero_when_telemetry_disabled(self, comm2, rng):
        comm2.allreduce([rng.standard_normal(4) for _ in range(2)])
        assert comm2.collect_worker_telemetry() == 0

    def test_worker_lanes_merge_into_driver_trace(self, rng):
        from repro.obs import RunTelemetry, use_telemetry

        telemetry = RunTelemetry.for_run(world_size=3)
        with use_telemetry(telemetry):
            comm = ProcCommunicator(3, collective_timeout=15.0)
            try:
                comm.allreduce([rng.standard_normal(16) for _ in range(3)])
                comm.broadcast(rng.standard_normal(4))
                comm.barrier()
                assert comm.collect_worker_telemetry() == 3
            finally:
                comm.close()
        payload = telemetry.tracer.to_chrome_trace()
        events = payload["traceEvents"]
        lane_names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert lane_names[0] == "repro"
        assert {lane_names[pid] for pid in (1, 2, 3)} == {
            "rank 0", "rank 1", "rank 2"
        }
        by_pid = {}
        for e in events:
            if e["ph"] == "X":
                by_pid.setdefault(e["pid"], set()).add(e["name"])
        for pid in (1, 2, 3):
            assert {
                "comm.worker.allreduce", "comm.worker.broadcast",
                "comm.worker.barrier", "comm.worker.barrier_wait",
            } <= by_pid[pid], pid
        # the driver lane keeps its own collective + shm spans
        assert "comm.allreduce" in by_pid[0]
        assert "comm.shm_write" in by_pid[0]
        # worker metrics merged: counters sum, histograms pool
        snap = telemetry.metrics.to_dict()
        assert snap["counters"]["comm.worker.collectives"] == 9.0
        assert snap["counters"]["comm.worker.heartbeats"] >= 3.0
        assert snap["histograms"]["comm.worker.barrier_wait_ms"]["count"] > 0

    def test_repeated_collection_ships_deltas_not_duplicates(self, rng):
        from repro.obs import RunTelemetry, use_telemetry

        telemetry = RunTelemetry.for_run(world_size=2)
        with use_telemetry(telemetry):
            comm = ProcCommunicator(2, collective_timeout=15.0)
            try:
                comm.barrier()
                assert comm.collect_worker_telemetry() == 2
                first = telemetry.metrics.to_dict()["counters"][
                    "comm.worker.collectives"
                ]
                assert first == 2.0
                comm.barrier()
                assert comm.collect_worker_telemetry() == 2
                second = telemetry.metrics.to_dict()["counters"][
                    "comm.worker.collectives"
                ]
                assert second == 4.0  # delta shipping: no double counting
                barriers = [
                    s
                    for s in telemetry.tracer.remote_spans
                    if s["name"] == "comm.worker.barrier"
                ]
                assert len(barriers) == 4  # 2 ranks x 2 barriers, once each
            finally:
                comm.close()

    @pytest.mark.faults
    def test_eviction_emits_supervisor_events(self, rng):
        from repro.obs import RunTelemetry, use_telemetry

        telemetry = RunTelemetry.for_run(world_size=4)
        plan = FaultPlan(
            process_faults=[ProcessFault(at_call=1, rank=1, kind="sigkill")]
        )
        with use_telemetry(telemetry):
            comm = ProcCommunicator(
                4, fault_plan=plan, collective_timeout=10.0,
                heartbeat_deadline=1.0,
            )
            try:
                comm.allreduce([np.ones(8)] * 4)
                with pytest.raises(RankDeadError):
                    comm.allreduce([np.ones(8)] * 4)
                comm.remove_rank(1)
                comm.allreduce([np.ones(8)] * 3)
            finally:
                comm.close()
        event_names = {e["name"] for e in telemetry.tracer.events}
        assert "comm.supervisor.rank_death" in event_names
        assert "comm.supervisor.rank_evicted" in event_names
        counters = telemetry.metrics.to_dict()["counters"]
        assert counters["comm.supervisor.rank_death"] >= 1
        assert counters["comm.supervisor.rank_evicted"] == 1.0
        # dead rank 1 (pid 2) ships nothing; the survivors still merge
        lanes = {s["pid"] for s in telemetry.tracer.remote_spans}
        assert lanes == {1, 3, 4}


class TestSupervisorPieces:
    def test_control_block_roundtrip(self):
        ctrl = ControlBlock.create(3)
        try:
            other = ControlBlock.attach(ctrl.name, 3)
            ctrl.bump_abort()
            assert other.abort_generation == 1
            ctrl.bump_epoch()
            assert other.epoch == 1
            other.beat(1)
            assert ctrl.heartbeats[1] > 0
            other.close()
        finally:
            ctrl.close()

    def test_heartbeat_monitor_staleness(self):
        ctrl = ControlBlock.create(2)
        try:
            monitor = HeartbeatMonitor(ctrl, deadline=0.05)
            ctrl.beat(0)
            ctrl.heartbeats[1] = 0.0  # beat from the distant past
            assert not monitor.is_stale(0)
            assert monitor.stale_ranks([0, 1]) == [1]
        finally:
            ctrl.close()
