"""DDP gradient synchronisation: equivalence with single-rank training."""

import numpy as np
import pytest

from repro.distributed import DistributedDataParallel, SimCommunicator, replicate_model
from repro.nn import MLP, SGD, BCEWithLogitsLoss
from repro.tensor import Tensor


def factory():
    return MLP(8, 16, out_features=1, num_layers=2, rng=np.random.default_rng(42))


@pytest.fixture
def data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(32, 8)).astype(np.float32)
    Y = (rng.random(32) > 0.5).astype(np.float32)
    return X, Y


def train_single(X, Y, steps=4, lr=0.1):
    m = factory()
    opt = SGD(m.parameters(), lr=lr)
    loss_fn = BCEWithLogitsLoss()
    for _ in range(steps):
        opt.zero_grad()
        loss_fn(m(Tensor(X)).reshape(-1), Y).backward()
        opt.step()
    return m


def train_ddp(X, Y, world, strategy, steps=4, lr=0.1):
    models = replicate_model(factory, world)
    comm = SimCommunicator(world)
    ddp = DistributedDataParallel(models, comm, strategy=strategy)
    opts = [SGD(m.parameters(), lr=lr) for m in models]
    loss_fn = BCEWithLogitsLoss()
    shards = np.array_split(np.arange(len(X)), world)
    for _ in range(steps):
        for m, opt, sh in zip(models, opts, shards):
            opt.zero_grad()
            loss_fn(m(Tensor(X[sh])).reshape(-1), Y[sh]).backward()
        ddp.synchronize_gradients()
        for opt in opts:
            opt.step()
    return models, comm, ddp


class TestReplication:
    def test_replicas_start_identical(self):
        models = replicate_model(factory, 4)
        ref = models[0].state_dict()
        for m in models[1:]:
            for name, arr in m.state_dict().items():
                assert np.array_equal(arr, ref[name])

    def test_world_size_must_match(self):
        models = replicate_model(factory, 2)
        with pytest.raises(ValueError):
            DistributedDataParallel(models, SimCommunicator(3))

    def test_unknown_strategy(self):
        models = replicate_model(factory, 2)
        with pytest.raises(ValueError):
            DistributedDataParallel(models, SimCommunicator(2), strategy="tree")


class TestEquivalence:
    @pytest.mark.parametrize("strategy", ["per_parameter", "coalesced"])
    @pytest.mark.parametrize("world", [2, 4])
    def test_ddp_equals_single_rank(self, data, strategy, world):
        """Equal shards + mean loss per shard → mean of rank gradients
        equals the single-rank gradient on the union batch."""
        X, Y = data
        single = train_single(X, Y)
        models, _, ddp = train_ddp(X, Y, world, strategy)
        ddp.assert_in_sync(atol=1e-6)
        for name, arr in models[0].state_dict().items():
            assert np.allclose(arr, single.state_dict()[name], atol=1e-4), name

    def test_strategies_agree_with_each_other(self, data):
        X, Y = data
        m_per, _, _ = train_ddp(X, Y, 4, "per_parameter")
        m_coal, _, _ = train_ddp(X, Y, 4, "coalesced")
        for name, arr in m_per[0].state_dict().items():
            assert np.allclose(arr, m_coal[0].state_dict()[name], atol=1e-5)


class TestAccounting:
    def test_coalesced_makes_one_call_per_step(self, data):
        X, Y = data
        _, comm, _ = train_ddp(X, Y, 4, "coalesced", steps=5)
        assert comm.stats.num_allreduce_calls == 5

    def test_per_parameter_makes_one_call_per_tensor(self, data):
        X, Y = data
        n_params = len(list(factory().parameters()))
        _, comm, _ = train_ddp(X, Y, 4, "per_parameter", steps=5)
        assert comm.stats.num_allreduce_calls == 5 * n_params

    def test_coalesced_models_less_time(self, data):
        """The Section III-D claim: coalescing lowers modeled latency."""
        X, Y = data
        _, comm_pp, _ = train_ddp(X, Y, 4, "per_parameter", steps=3)
        _, comm_co, _ = train_ddp(X, Y, 4, "coalesced", steps=3)
        assert comm_co.stats.modeled_seconds < comm_pp.stats.modeled_seconds

    def test_bytes_equal_between_strategies(self, data):
        X, Y = data
        _, comm_pp, _ = train_ddp(X, Y, 4, "per_parameter", steps=3)
        _, comm_co, _ = train_ddp(X, Y, 4, "coalesced", steps=3)
        assert comm_pp.stats.bytes_reduced == comm_co.stats.bytes_reduced

    def test_assert_in_sync_detects_divergence(self, data):
        X, Y = data
        models, comm, ddp = train_ddp(X, Y, 2, "coalesced", steps=1)
        list(models[1].parameters())[0].data += 1.0
        with pytest.raises(AssertionError):
            ddp.assert_in_sync()


class TestBroadcast:
    def test_broadcast_copies(self):
        comm = SimCommunicator(3)
        buf = np.arange(4, dtype=np.float32)
        out = comm.broadcast(buf)
        assert len(out) == 3
        out[0][0] = 99
        assert buf[0] == 0  # copies, not views

    def test_broadcast_charges_cost_and_counters(self):
        """State syncs must show up in comm accounting like all-reduces do."""
        comm = SimCommunicator(4)
        buf = np.arange(8, dtype=np.float32)
        comm.broadcast(buf)
        assert comm.stats.num_broadcast_calls == 1
        assert comm.stats.bytes_broadcast == buf.nbytes
        assert comm.stats.modeled_seconds == pytest.approx(
            comm.cost_model.broadcast_time(buf.nbytes, 4)
        )
        assert comm.stats.modeled_seconds > 0.0

    def test_broadcast_consults_fault_plan(self):
        from repro.faults import CommError, CommFault, FaultPlan

        plan = FaultPlan(comm_faults=[CommFault(at_call=0, rank=1, transient=True)])
        comm = SimCommunicator(2, fault_plan=plan)
        with pytest.raises(CommError):
            comm.broadcast(np.ones(4, dtype=np.float32))

    def test_allreduce_world_size_checked(self):
        comm = SimCommunicator(2)
        with pytest.raises(ValueError):
            comm.allreduce([np.ones(3)])


class TestCommStatsDict:
    def test_to_dict_snapshot(self):
        comm = SimCommunicator(2)
        comm.allreduce([np.ones(4, dtype=np.float32)] * 2)
        comm.broadcast(np.ones(2, dtype=np.float32))
        snap = comm.stats.to_dict()
        assert snap["num_allreduce_calls"] == 1
        assert snap["num_broadcast_calls"] == 1
        assert snap["bytes_reduced"] == 16
        assert snap["bytes_broadcast"] == 8
        assert snap["modeled_seconds"] > 0.0
        assert snap["rank_failures"] == []
        assert snap["num_barrier_calls"] == 0
        assert snap["measured_seconds"] == 0.0  # sim charges modeled only
        assert set(snap) == {
            "num_allreduce_calls", "bytes_reduced", "num_broadcast_calls",
            "bytes_broadcast", "num_barrier_calls", "modeled_seconds",
            "measured_seconds", "num_retries", "retry_backoff_seconds",
            "rank_failures", "num_events",
        }

    def test_to_dict_is_json_serialisable(self):
        import json

        comm = SimCommunicator(3)
        comm.remove_rank(2)
        snap = comm.stats.to_dict()
        assert json.loads(json.dumps(snap))["rank_failures"] == [2]
        assert snap["num_events"] == 1

    def test_reset_clears_broadcast_counters(self):
        comm = SimCommunicator(2)
        comm.broadcast(np.ones(2, dtype=np.float32))
        comm.stats.reset()
        assert comm.stats.num_broadcast_calls == 0
        assert comm.stats.bytes_broadcast == 0
