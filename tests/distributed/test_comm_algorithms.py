"""SimCommunicator with pluggable all-reduce algorithms."""

import numpy as np
import pytest

from repro.distributed import (
    DistributedDataParallel,
    SimCommunicator,
    replicate_model,
)
from repro.nn import MLP, SGD, BCEWithLogitsLoss
from repro.tensor import Tensor


def factory():
    return MLP(8, 16, out_features=1, num_layers=2, rng=np.random.default_rng(42))


class TestCommunicatorAlgorithms:
    @pytest.mark.parametrize("algorithm", ["ring", "halving_doubling", "tree"])
    def test_allreduce_equals_sum(self, algorithm):
        comm = SimCommunicator(4, algorithm=algorithm)
        rng = np.random.default_rng(0)
        bufs = [rng.normal(size=23).astype(np.float32) for _ in range(4)]
        direct = np.sum([b.astype(np.float64) for b in bufs], axis=0).astype(np.float32)
        for out in comm.allreduce(bufs, average=False):
            assert np.allclose(out, direct, atol=1e-3)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            SimCommunicator(2, algorithm="butterfly")

    def test_hd_requires_power_of_two(self):
        comm = SimCommunicator(3, algorithm="halving_doubling")
        with pytest.raises(ValueError):
            comm.allreduce([np.ones(4)] * 3)

    @pytest.mark.parametrize("algorithm", ["ring", "halving_doubling", "tree"])
    def test_ddp_training_identical_across_algorithms(self, algorithm):
        """The algorithm changes the schedule, never the result: DDP
        weights after training are algorithm-independent."""
        rng = np.random.default_rng(1)
        X = rng.normal(size=(16, 8)).astype(np.float32)
        Y = (rng.random(16) > 0.5).astype(np.float32)

        def train(algorithm):
            models = replicate_model(factory, 4)
            ddp = DistributedDataParallel(
                models, SimCommunicator(4, algorithm=algorithm), "coalesced"
            )
            opts = [SGD(m.parameters(), lr=0.1) for m in models]
            loss_fn = BCEWithLogitsLoss()
            shards = np.array_split(np.arange(16), 4)
            for _ in range(3):
                for m, sh in zip(models, shards):
                    m.zero_grad()
                    loss_fn(m(Tensor(X[sh])).reshape(-1), Y[sh]).backward()
                ddp.synchronize_gradients()
                for opt in opts:
                    opt.step()
            return models[0].state_dict()

        ref = train("ring")
        got = train(algorithm)
        for name, arr in got.items():
            assert np.allclose(arr, ref[name], atol=1e-5), name

    def test_modeled_time_uses_algorithm_form(self):
        """At small messages and P=8, the log-depth algorithms must charge
        less modeled latency than the ring."""
        times = {}
        for algorithm in ("ring", "halving_doubling", "tree"):
            comm = SimCommunicator(8, algorithm=algorithm)
            comm.allreduce([np.ones(2, dtype=np.float32)] * 8)
            times[algorithm] = comm.stats.modeled_seconds
        assert times["halving_doubling"] < times["ring"]
        assert times["tree"] < times["ring"]
