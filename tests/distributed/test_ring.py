"""Ring all-reduce correctness (property-based) and accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.distributed import RingAllReduceStats, ring_allreduce

finite = st.floats(-100, 100, allow_nan=False, width=32)


@st.composite
def rank_buffers(draw):
    p = draw(st.integers(1, 8))
    shape = draw(hnp.array_shapes(min_dims=1, max_dims=2, max_side=17))
    bufs = [
        draw(hnp.arrays(np.float32, shape, elements=finite)) for _ in range(p)
    ]
    return bufs


class TestRingCorrectness:
    @given(rank_buffers())
    @settings(max_examples=50, deadline=None)
    def test_equals_direct_sum(self, bufs):
        out = ring_allreduce(bufs, average=False)
        direct = np.sum([b.astype(np.float64) for b in bufs], axis=0)
        for o in out:
            assert np.allclose(o, direct.astype(np.float32), atol=1e-3)

    @given(rank_buffers())
    @settings(max_examples=50, deadline=None)
    def test_all_ranks_identical(self, bufs):
        out = ring_allreduce(bufs, average=False)
        for o in out[1:]:
            assert np.array_equal(o, out[0])

    @given(rank_buffers())
    @settings(max_examples=30, deadline=None)
    def test_average_divides_by_world(self, bufs):
        summed = ring_allreduce(bufs, average=False)[0].astype(np.float64)
        averaged = ring_allreduce(bufs, average=True)[0].astype(np.float64)
        assert np.allclose(averaged, summed / len(bufs), atol=1e-3)

    @given(rank_buffers())
    @settings(max_examples=30, deadline=None)
    def test_inputs_not_mutated(self, bufs):
        copies = [b.copy() for b in bufs]
        ring_allreduce(bufs)
        for b, c in zip(bufs, copies):
            assert np.array_equal(b, c)


class TestRingAccounting:
    def test_step_count_is_2p_minus_2(self):
        for p in (2, 3, 4, 8):
            bufs = [np.ones(p * 4, dtype=np.float32) for _ in range(p)]
            stats = RingAllReduceStats()
            ring_allreduce(bufs, stats=stats)
            assert stats.steps == 2 * (p - 1)

    def test_bytes_scale_with_buffer(self):
        p = 4
        small = RingAllReduceStats()
        large = RingAllReduceStats()
        ring_allreduce([np.ones(16, dtype=np.float32)] * p, stats=small)
        ring_allreduce([np.ones(160, dtype=np.float32)] * p, stats=large)
        assert large.bytes_sent_per_rank > 8 * small.bytes_sent_per_rank

    def test_single_rank_is_identity(self):
        buf = np.arange(5, dtype=np.float32)
        out = ring_allreduce([buf])
        assert np.array_equal(out[0], buf)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce([np.ones(3), np.ones(4)])

    def test_empty_rank_list_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce([])

    def test_uneven_chunking_works(self):
        # buffer size not divisible by world size
        p = 3
        bufs = [np.full(7, float(r), dtype=np.float32) for r in range(p)]
        out = ring_allreduce(bufs)
        assert np.allclose(out[0], 0.0 + 1.0 + 2.0)

    def test_buffer_smaller_than_world(self):
        p = 4
        bufs = [np.full(2, 1.0, dtype=np.float32) for _ in range(p)]
        out = ring_allreduce(bufs)
        assert np.allclose(out[0], 4.0)
