"""1-D vertex-partitioned IGNN forward: exactness and halo accounting."""

import numpy as np
import pytest

from repro.distributed import PartitionedIGNNForward, VertexPartition
from repro.graph import chain_graph, random_graph
from repro.models import IGNNConfig, InteractionGNN
from repro.tensor import Tensor, no_grad


@pytest.fixture(scope="module")
def setup():
    g = random_graph(120, 500, rng=np.random.default_rng(0))
    model = InteractionGNN(
        IGNNConfig(node_features=6, edge_features=2, hidden=8, num_layers=2, seed=1)
    )
    with no_grad():
        ref = model(Tensor(g.x), Tensor(g.y), g.rows, g.cols).numpy()
    return g, model, ref


class TestPartition:
    def test_balanced_cuts(self):
        part = VertexPartition.balanced(10, 3)
        assert part.cuts[0] == 0 and part.cuts[-1] == 10
        assert part.world_size == 3

    def test_owner_of(self):
        part = VertexPartition.balanced(10, 2)
        owners = part.owner_of(np.array([0, 4, 5, 9]))
        assert owners.tolist() == [0, 0, 1, 1]

    def test_invalid_world(self):
        with pytest.raises(ValueError):
            VertexPartition.balanced(10, 0)


class TestPartitionedForward:
    @pytest.mark.parametrize("world", [1, 2, 3, 4])
    def test_matches_single_rank_forward(self, setup, world):
        g, model, ref = setup
        dist = PartitionedIGNNForward(model, VertexPartition.balanced(g.num_nodes, world))
        out = dist.forward(g)
        assert np.allclose(out, ref, atol=1e-4)

    def test_single_rank_no_communication(self, setup):
        g, model, _ = setup
        dist = PartitionedIGNNForward(model, VertexPartition.balanced(g.num_nodes, 1))
        dist.forward(g)
        assert dist.stats.halo_rows_pulled == 0
        assert dist.stats.bytes_total == 0

    def test_halo_grows_with_rank_count(self, setup):
        g, model, _ = setup
        volumes = []
        for world in (2, 4, 8):
            dist = PartitionedIGNNForward(model, VertexPartition.balanced(g.num_nodes, world))
            dist.forward(g)
            volumes.append(dist.stats.bytes_total)
        assert volumes[0] < volumes[-1]

    def test_chain_graph_minimal_halo(self):
        """A chain partitioned into blocks has exactly one cut edge per
        boundary — the halo must be correspondingly tiny."""
        g = chain_graph(100)
        model = InteractionGNN(
            IGNNConfig(node_features=6, edge_features=2, hidden=4, num_layers=1, seed=0)
        )
        dist = PartitionedIGNNForward(model, VertexPartition.balanced(100, 2))
        dist.forward(g)
        # one boundary vertex pulled and one partial pushed per layer
        assert dist.stats.halo_rows_pulled <= 2

    def test_modeled_seconds_positive_for_multirank(self, setup):
        g, model, _ = setup
        dist = PartitionedIGNNForward(model, VertexPartition.balanced(g.num_nodes, 4))
        dist.forward(g)
        assert dist.stats.modeled_seconds(4) > 0.0
        assert dist.stats.modeled_seconds(1) == 0.0
