"""Alternative all-reduce algorithms and bucketed gradient sync."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.distributed import (
    NVLINK_A100,
    BucketedSynchronizer,
    DistributedDataParallel,
    SimCommunicator,
    halving_doubling_allreduce,
    halving_doubling_time,
    overlapped_sync_time,
    partition_buckets,
    replicate_model,
    tree_allreduce,
    tree_time,
)
from repro.nn import MLP, BCEWithLogitsLoss
from repro.tensor import Tensor

finite = st.floats(-100, 100, allow_nan=False, width=32)


class TestHalvingDoubling:
    @given(st.sampled_from([1, 2, 4, 8]), hnp.array_shapes(min_dims=1, max_dims=2, max_side=9))
    @settings(max_examples=40, deadline=None)
    def test_equals_direct_sum(self, p, shape):
        rng = np.random.default_rng(0)
        bufs = [rng.normal(size=shape).astype(np.float32) for _ in range(p)]
        direct = np.sum([b.astype(np.float64) for b in bufs], axis=0).astype(np.float32)
        for out in halving_doubling_allreduce(bufs):
            assert np.allclose(out, direct, atol=1e-3)

    def test_average(self):
        bufs = [np.full(6, float(r), dtype=np.float32) for r in range(4)]
        out = halving_doubling_allreduce(bufs, average=True)
        assert np.allclose(out[0], 1.5)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            halving_doubling_allreduce([np.ones(3)] * 3)

    def test_all_ranks_identical(self):
        rng = np.random.default_rng(1)
        bufs = [rng.normal(size=11).astype(np.float32) for _ in range(8)]
        out = halving_doubling_allreduce(bufs)
        for o in out[1:]:
            assert np.allclose(o, out[0], atol=1e-5)


class TestTree:
    @given(st.integers(1, 9), hnp.array_shapes(min_dims=1, max_dims=2, max_side=9))
    @settings(max_examples=40, deadline=None)
    def test_equals_direct_sum_any_rank_count(self, p, shape):
        rng = np.random.default_rng(0)
        bufs = [rng.normal(size=shape).astype(np.float32) for _ in range(p)]
        direct = np.sum([b.astype(np.float64) for b in bufs], axis=0).astype(np.float32)
        for out in tree_allreduce(bufs):
            assert np.allclose(out, direct, atol=1e-3)

    def test_inputs_not_mutated(self):
        bufs = [np.ones(4, dtype=np.float32) for _ in range(3)]
        copies = [b.copy() for b in bufs]
        tree_allreduce(bufs)
        for b, c in zip(bufs, copies):
            assert np.array_equal(b, c)


class TestAlgorithmCostModels:
    def test_latency_scaling(self):
        """Ring latency is linear in P, halving-doubling logarithmic."""
        alpha, beta = 10e-6, 0.0
        ring16 = NVLINK_A100.__class__(alpha=alpha, beta=beta).allreduce_time(0, 16)
        hd16 = halving_doubling_time(0, 16, alpha, beta)
        assert ring16 == pytest.approx(2 * 15 * alpha)
        assert hd16 == pytest.approx(2 * 4 * alpha)

    def test_tree_pays_bandwidth_per_level(self):
        alpha, beta = 0.0, 1e-9
        n = 10**6
        assert tree_time(n, 8, alpha, beta) == pytest.approx(2 * 3 * n * beta)

    def test_single_rank_free(self):
        assert halving_doubling_time(100, 1, 1e-5, 1e-9) == 0.0
        assert tree_time(100, 1, 1e-5, 1e-9) == 0.0


class TestPartitionBuckets:
    def test_greedy_packing(self):
        buckets = partition_buckets([10, 10, 10, 10], bucket_bytes=25)
        assert [b.param_indices for b in buckets] == [(0, 1), (2, 3)]

    def test_oversized_tensor_gets_own_bucket(self):
        buckets = partition_buckets([100, 5, 5], bucket_bytes=10)
        assert buckets[0].param_indices == (0,)

    def test_every_param_exactly_once(self):
        sizes = [7, 3, 12, 1, 9, 30, 2]
        buckets = partition_buckets(sizes, 16)
        flat = [i for b in buckets for i in b.param_indices]
        assert flat == list(range(len(sizes)))

    def test_bytes_accounting(self):
        buckets = partition_buckets([4, 4, 4], 8)
        assert [b.nbytes for b in buckets] == [8, 4]

    def test_invalid_bucket_size(self):
        with pytest.raises(ValueError):
            partition_buckets([4], 0)


class TestBucketedSynchronizer:
    def _train_pair(self, bucket_bytes):
        def factory():
            return MLP(8, 16, out_features=1, num_layers=2, rng=np.random.default_rng(42))

        rng = np.random.default_rng(0)
        X = rng.normal(size=(16, 8)).astype(np.float32)
        Y = (rng.random(16) > 0.5).astype(np.float32)
        loss_fn = BCEWithLogitsLoss()

        world = 4
        models_a = replicate_model(factory, world)
        models_b = replicate_model(factory, world)
        comm_a, comm_b = SimCommunicator(world), SimCommunicator(world)
        coal = DistributedDataParallel(models_a, comm_a, strategy="coalesced")
        buck = BucketedSynchronizer(models_b, comm_b, bucket_bytes=bucket_bytes)
        shards = np.array_split(np.arange(16), world)
        for models in (models_a, models_b):
            for m, sh in zip(models, shards):
                m.zero_grad()
                loss_fn(m(Tensor(X[sh])).reshape(-1), Y[sh]).backward()
        coal.synchronize_gradients()
        buck.synchronize_gradients()
        return models_a, models_b, comm_a, comm_b

    @pytest.mark.parametrize("bucket_bytes", [64, 1024, 10**9])
    def test_gradients_match_coalesced(self, bucket_bytes):
        models_a, models_b, _, _ = self._train_pair(bucket_bytes)
        for (n1, p1), (n2, p2) in zip(
            models_a[0].named_parameters(), models_b[0].named_parameters()
        ):
            assert np.allclose(p1.grad, p2.grad, atol=1e-6), n1

    def test_call_count_between_extremes(self):
        _, _, comm_coal, comm_buck = self._train_pair(bucket_bytes=300)
        assert comm_coal.stats.num_allreduce_calls == 1
        assert comm_buck.stats.num_allreduce_calls > 1

    def test_world_size_checked(self):
        def factory():
            return MLP(4, 4, rng=np.random.default_rng(0))

        with pytest.raises(ValueError):
            BucketedSynchronizer(replicate_model(factory, 2), SimCommunicator(3))


class TestOverlapModel:
    SIZES = [64 * 64 * 4] * 40

    def test_giant_bucket_exposes_everything(self):
        """One bucket cannot overlap: exposed time = full all-reduce."""
        exposed = overlapped_sync_time(self.SIZES, 10**12, 4, 1.0, NVLINK_A100)
        assert exposed == pytest.approx(
            NVLINK_A100.allreduce_time(sum(self.SIZES), 4), rel=1e-6
        )

    def test_moderate_buckets_hide_communication(self):
        """With buckets, earlier reduces overlap later backward compute."""
        giant = overlapped_sync_time(self.SIZES, 10**12, 4, 1.0, NVLINK_A100)
        bucketed = overlapped_sync_time(self.SIZES, 64 * 64 * 4 * 8, 4, 1.0, NVLINK_A100)
        assert bucketed < giant

    def test_tiny_buckets_pay_latency(self):
        """Per-parameter buckets can be worse than one moderate bucket when
        backward is short (little to overlap) and α dominates."""
        tiny = overlapped_sync_time(self.SIZES, 1, 8, 0.0, NVLINK_A100)
        moderate = overlapped_sync_time(self.SIZES, 64 * 64 * 4 * 8, 8, 0.0, NVLINK_A100)
        assert moderate < tiny

    def test_zero_backward_equals_unoverlapped_sum(self):
        sizes = [100, 100]
        exposed = overlapped_sync_time(sizes, 100, 4, 0.0, NVLINK_A100)
        expected = sum(NVLINK_A100.allreduce_time(s, 4) for s in sizes)
        assert exposed == pytest.approx(expected, rel=1e-9)
