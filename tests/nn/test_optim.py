"""Optimiser and scheduler unit tests (closed-form single steps)."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, CosineAnnealingLR, Parameter, StepLR, WarmupLR


def make_param(value=1.0, grad=0.5):
    p = Parameter(np.array([value], dtype=np.float32))
    p.grad = np.array([grad], dtype=np.float32)
    return p


class TestSGD:
    def test_vanilla_step(self):
        p = make_param(1.0, 0.5)
        SGD([p], lr=0.1).step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_momentum_accumulates(self):
        p = make_param(0.0, 1.0)
        opt = SGD([p], lr=0.1, momentum=0.9)
        opt.step()  # v=1, x=-0.1
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # v=1.9, x=-0.29
        assert p.data[0] == pytest.approx(-0.29, abs=1e-6)

    def test_weight_decay(self):
        p = make_param(2.0, 0.0)
        SGD([p], lr=0.1, weight_decay=0.5).step()
        assert p.data[0] == pytest.approx(2.0 - 0.1 * 0.5 * 2.0)

    def test_skips_gradless_params(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        SGD([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_zero_grad(self):
        p = make_param()
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_validates_lr(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.0)

    def test_validates_momentum(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.1, momentum=1.0)

    def test_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_first_step_is_lr_sized(self):
        # With bias correction, the first Adam step ≈ lr * sign(grad).
        p = make_param(0.0, 0.5)
        Adam([p], lr=0.01).step()
        assert p.data[0] == pytest.approx(-0.01, rel=1e-3)

    def test_manual_two_steps(self):
        p = make_param(0.0, 1.0)
        opt = Adam([p], lr=0.1, betas=(0.9, 0.999), eps=1e-8)
        opt.step()
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        # replicate manually
        m = v = 0.0
        x = 0.0
        for t in (1, 2):
            g = 1.0
            m = 0.9 * m + 0.1 * g
            v = 0.999 * v + 0.001 * g * g
            x -= 0.1 * (m / (1 - 0.9**t)) / (np.sqrt(v / (1 - 0.999**t)) + 1e-8)
        assert p.data[0] == pytest.approx(x, rel=1e-4)

    def test_decoupled_weight_decay(self):
        p = make_param(1.0, 0.0)
        p.grad = np.array([0.0], dtype=np.float32)
        Adam([p], lr=0.1, weight_decay=0.5, decoupled_weight_decay=True).step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5 * 1.0)

    def test_validates_betas(self):
        with pytest.raises(ValueError):
            Adam([make_param()], lr=0.1, betas=(1.0, 0.999))

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0], dtype=np.float32))
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            p.grad = 2.0 * p.data  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 1e-2


class TestSchedulers:
    def test_step_lr(self):
        opt = SGD([make_param()], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        # step() advances the epoch counter first: after k steps the rate
        # is gamma^(k // step_size).
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_cosine_endpoints(self):
        opt = SGD([make_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10)
        mid = None
        last = None
        for i in range(10):
            last = sched.step()
            if i == 4:
                mid = last
        assert last == pytest.approx(0.0, abs=1e-9)
        assert 0.0 < mid < 1.0

    def test_warmup_reaches_base(self):
        opt = SGD([make_param()], lr=2.0)
        sched = WarmupLR(opt, warmup_epochs=4)
        lrs = [sched.step() for _ in range(6)]
        assert lrs[0] == pytest.approx(0.5)
        assert lrs[3] == pytest.approx(2.0)
        assert lrs[5] == pytest.approx(2.0)

    def test_warmup_then_cosine(self):
        opt = SGD([make_param()], lr=1.0)
        inner = CosineAnnealingLR(opt, t_max=10)
        sched = WarmupLR(opt, warmup_epochs=2, after=inner)
        for _ in range(12):
            lr = sched.step()
        assert lr == pytest.approx(0.0, abs=1e-9)

    def test_validates_args(self):
        opt = SGD([make_param()], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, t_max=0)
        with pytest.raises(ValueError):
            WarmupLR(opt, warmup_epochs=0)


class TestOptimizerStateDict:
    """Round-tripping optimiser state (the resumable-training contract)."""

    def test_adam_state_roundtrip_bit_equal(self):
        """A restored Adam continues bit-identically to the original."""
        rng = np.random.default_rng(11)
        pa = Parameter(rng.standard_normal(5).astype(np.float32))
        pb = Parameter(pa.data.copy())
        a, b = Adam([pa], lr=1e-2), Adam([pb], lr=1e-2)
        for _ in range(3):
            g = rng.standard_normal(5).astype(np.float32)
            pa.grad = g.copy()
            pb.grad = g.copy()
            a.step()
            b.step()
        # checkpoint a -> fresh optimizer over a fresh (copied) parameter
        pc = Parameter(pa.data.copy())
        c = Adam([pc], lr=1e-2)
        c.load_state_dict(a.state_dict())
        g = np.arange(5, dtype=np.float32)
        for opt, p in ((b, pb), (c, pc)):
            p.grad = g.copy()
            opt.step()
        np.testing.assert_array_equal(pb.data, pc.data)

    def test_adam_state_dict_contents(self):
        p = make_param(1.0, 0.5)
        opt = Adam([p], lr=1e-3)
        opt.step()
        state = opt.state_dict()
        assert int(state["t"]) == 1
        assert "m0" in state and "v0" in state
        assert float(state["lr"]) == pytest.approx(1e-3)

    def test_adam_load_rejects_shape_mismatch(self):
        p = make_param(1.0, 0.5)
        opt = Adam([p], lr=1e-3)
        with pytest.raises(ValueError, match="shape"):
            opt.load_state_dict({"t": np.asarray(1), "m0": np.zeros(9), "v0": np.zeros(9)})

    def test_sgd_velocity_roundtrip(self):
        p = make_param(0.0, 1.0)
        opt = SGD([p], lr=0.1, momentum=0.9)
        opt.step()
        q = Parameter(p.data.copy())
        restored = SGD([q], lr=0.1, momentum=0.9)
        restored.load_state_dict(opt.state_dict())
        p.grad = np.array([1.0], dtype=np.float32)
        q.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        restored.step()
        np.testing.assert_array_equal(p.data, q.data)

    def test_restored_lr_overrides_constructor(self):
        p = make_param(1.0, 0.5)
        opt = Adam([p], lr=1e-3)
        opt.lr = 5e-4  # e.g. a scheduler decayed it
        q = Parameter(p.data.copy())
        restored = Adam([q], lr=1e-3)
        restored.load_state_dict(opt.state_dict())
        assert restored.lr == pytest.approx(5e-4)
