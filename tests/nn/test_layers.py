"""Linear / LayerNorm / Dropout / MLP layer behaviour."""

import numpy as np
import pytest

from repro.nn import MLP, Dropout, LayerNorm, Linear
from repro.tensor import Tensor


class TestLinear:
    def test_output_shape(self):
        l = Linear(5, 3, rng=np.random.default_rng(0))
        out = l(Tensor(np.ones((7, 5), dtype=np.float32)))
        assert out.shape == (7, 3)

    def test_matches_manual_affine(self):
        rng = np.random.default_rng(0)
        l = Linear(4, 2, rng=rng)
        x = rng.normal(size=(3, 4)).astype(np.float32)
        expected = x @ l.weight.data + l.bias.data
        assert np.allclose(l(Tensor(x)).numpy(), expected, atol=1e-6)

    def test_no_bias(self):
        l = Linear(4, 2, bias=False, rng=np.random.default_rng(0))
        assert l.bias is None
        assert len(list(l.parameters())) == 1

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_init_within_kaiming_bound(self):
        l = Linear(100, 50, rng=np.random.default_rng(0))
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 100)
        assert np.abs(l.weight.data).max() <= bound + 1e-6

    def test_seeded_init_reproducible(self):
        l1 = Linear(8, 8, rng=np.random.default_rng(9))
        l2 = Linear(8, 8, rng=np.random.default_rng(9))
        assert np.array_equal(l1.weight.data, l2.weight.data)


class TestLayerNorm:
    def test_learnable_params(self):
        ln = LayerNorm(6)
        assert len(list(ln.parameters())) == 2

    def test_identity_scale_shift(self):
        rng = np.random.default_rng(0)
        ln = LayerNorm(8)
        x = rng.normal(5.0, 2.0, size=(4, 8)).astype(np.float32)
        out = ln(Tensor(x)).numpy()
        assert np.allclose(out.mean(axis=1), 0.0, atol=1e-5)


class TestDropout:
    def test_training_mode_drops(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        out = d(Tensor(np.ones(1000, dtype=np.float32))).numpy()
        assert np.any(out == 0)

    def test_eval_mode_keeps_all(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        d.eval()
        out = d(Tensor(np.ones(1000, dtype=np.float32))).numpy()
        assert np.all(out == 1.0)


class TestMLP:
    def test_default_output_width_is_hidden(self):
        m = MLP(4, 16, rng=np.random.default_rng(0))
        out = m(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert out.shape == (2, 16)

    def test_explicit_output_width(self):
        m = MLP(4, 16, out_features=1, num_layers=3, rng=np.random.default_rng(0))
        assert m(Tensor(np.ones((2, 4), dtype=np.float32))).shape == (2, 1)

    def test_num_layers_controls_linear_count(self):
        for n in (1, 2, 4):
            m = MLP(4, 8, num_layers=n, layer_norm=False, rng=np.random.default_rng(0))
            linears = [p for name, p in m.named_parameters() if name.endswith("weight")]
            assert len(linears) == n

    def test_table1_depths(self):
        """Table I: CTD uses 3-layer MLPs, Ex3 uses 2-layer."""
        for depth in (2, 3):
            m = MLP(6, 64, num_layers=depth, rng=np.random.default_rng(0))
            weights = [n for n, _ in m.named_parameters() if "weight" in n and "net" in n]
            # LayerNorm also has 'weight'; count Linear weights by 2-D shape
            linear_weights = [
                p for n, p in m.named_parameters() if p.data.ndim == 2
            ]
            assert len(linear_weights) == depth

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            MLP(4, 8, num_layers=0)

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            MLP(4, 8, activation="swish")

    def test_output_activation_bounds_relu(self):
        m = MLP(4, 8, num_layers=2, output_activation=True, rng=np.random.default_rng(0))
        out = m(Tensor(np.random.default_rng(0).normal(size=(10, 4)).astype(np.float32)))
        assert np.all(out.numpy() >= 0.0)  # ends in ReLU

    def test_no_output_activation_signed(self):
        m = MLP(4, 8, num_layers=2, output_activation=False, rng=np.random.default_rng(0))
        out = m(Tensor(np.random.default_rng(1).normal(size=(50, 4)).astype(np.float32)))
        assert np.any(out.numpy() < 0.0)
