"""GRU cell: gate semantics and gradients."""

import numpy as np
import pytest

from repro.nn import GRUCell
from repro.tensor import Tensor, gradcheck, ops


@pytest.fixture
def cell64():
    """A float64 GRU cell for gradient checks."""
    cell = GRUCell(3, 4, rng=np.random.default_rng(0))
    for _, p in cell.named_parameters():
        p.data = p.data.astype(np.float64)
    return cell


class TestGRUCell:
    def test_output_shape(self):
        cell = GRUCell(5, 7, rng=np.random.default_rng(0))
        x = Tensor(np.zeros((3, 5), dtype=np.float32))
        h = Tensor(np.zeros((3, 7), dtype=np.float32))
        assert cell(x, h).shape == (3, 7)

    def test_parameter_count(self):
        cell = GRUCell(5, 7, rng=np.random.default_rng(0))
        expected = 3 * (5 * 7) + 3 * (7 * 7) + 3 * 7
        assert cell.num_parameters() == expected

    def test_zero_input_zero_state_bounded(self):
        cell = GRUCell(4, 4, rng=np.random.default_rng(0))
        out = cell(Tensor(np.zeros((2, 4), dtype=np.float32)),
                   Tensor(np.zeros((2, 4), dtype=np.float32))).numpy()
        assert np.all(np.abs(out) <= 1.0)  # tanh-bounded candidate

    def test_update_gate_interpolates(self):
        """Output is a convex combination of candidate and previous state,
        so it can never exceed both in magnitude simultaneously."""
        rng = np.random.default_rng(1)
        cell = GRUCell(4, 4, rng=np.random.default_rng(0))
        h = Tensor(rng.normal(size=(10, 4)).astype(np.float32))
        x = Tensor(rng.normal(size=(10, 4)).astype(np.float32))
        out = cell(x, h).numpy()
        upper = np.maximum(np.abs(h.numpy()), 1.0)  # candidate bounded by 1
        assert np.all(np.abs(out) <= upper + 1e-5)

    def test_gradcheck_all_paths(self, cell64):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        h = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        gradcheck(lambda x, h: ops.sum(ops.pow(cell64(x, h), 2.0)), [x, h], atol=1e-5)

    def test_gradients_reach_all_weights(self):
        cell = GRUCell(3, 4, rng=np.random.default_rng(0))
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(4, 3)).astype(np.float32))
        h = Tensor(rng.normal(size=(4, 4)).astype(np.float32))
        ops.sum(cell(x, h)).backward()
        missing = [n for n, p in cell.named_parameters() if p.grad is None]
        assert missing == []

    def test_validation(self):
        with pytest.raises(ValueError):
            GRUCell(0, 4)
