"""Module/Parameter system: registration, traversal, serialisation."""

import numpy as np
import pytest

from repro.nn import MLP, Linear, Module, Parameter, Sequential
from repro.tensor import Tensor, ops


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.fc1 = Linear(4, 8, rng=rng)
        self.fc2 = Linear(8, 2, rng=rng)

    def forward(self, x):
        return self.fc2(ops.relu(self.fc1(x)))


class TestRegistration:
    def test_named_parameters_order_is_deterministic(self):
        m = TwoLayer()
        names = [n for n, _ in m.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_two_instances_agree_on_order(self):
        names1 = [n for n, _ in TwoLayer().named_parameters()]
        names2 = [n for n, _ in TwoLayer().named_parameters()]
        assert names1 == names2

    def test_num_parameters(self):
        m = TwoLayer()
        assert m.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_modules_iterates_tree(self):
        m = TwoLayer()
        kinds = [type(x).__name__ for x in m.modules()]
        assert kinds[0] == "TwoLayer"
        assert kinds.count("Linear") == 2

    def test_register_module_by_name(self):
        m = Module()
        child = Linear(2, 2, rng=np.random.default_rng(0))
        m.register_module("head", child)
        assert dict(m.named_parameters()).keys() == {"head.weight", "head.bias"}


class TestModes:
    def test_train_eval_recursive(self):
        m = TwoLayer()
        m.eval()
        assert not m.training and not m.fc1.training
        m.train()
        assert m.training and m.fc2.training

    def test_zero_grad_clears_all(self):
        m = TwoLayer()
        x = Tensor(np.ones((3, 4), dtype=np.float32))
        ops.sum(m(x)).backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestStateDict:
    def test_round_trip(self):
        m1, m2 = TwoLayer(), TwoLayer()
        # perturb m2 so the load is observable
        for p in m2.parameters():
            p.data += 1.0
        m2.load_state_dict(m1.state_dict())
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            assert np.array_equal(p1.data, p2.data)

    def test_state_dict_is_a_copy(self):
        m = TwoLayer()
        sd = m.state_dict()
        sd["fc1.weight"][:] = 99.0
        assert not np.any(m.fc1.weight.data == 99.0)

    def test_missing_key_raises(self):
        m = TwoLayer()
        sd = m.state_dict()
        del sd["fc2.bias"]
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_shape_mismatch_raises(self):
        m = TwoLayer()
        sd = m.state_dict()
        sd["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            m.load_state_dict(sd)


class TestSequential:
    def test_len_and_getitem(self):
        rng = np.random.default_rng(0)
        s = Sequential(Linear(2, 3, rng=rng), Linear(3, 1, rng=rng))
        assert len(s) == 2
        assert isinstance(s[1], Linear)

    def test_applies_in_order(self):
        rng = np.random.default_rng(0)
        l1, l2 = Linear(2, 3, rng=rng), Linear(3, 1, rng=rng)
        s = Sequential(l1, l2)
        x = Tensor(np.ones((4, 2), dtype=np.float32))
        manual = l2(l1(x)).numpy()
        assert np.allclose(s(x).numpy(), manual)

    def test_parameters_discovered(self):
        rng = np.random.default_rng(0)
        s = Sequential(Linear(2, 3, rng=rng), Linear(3, 1, rng=rng))
        assert len(list(s.parameters())) == 4
