"""Loss wrappers and the loss registry."""

import numpy as np
import pytest

from repro.nn import BCEWithLogitsLoss, HingeEmbeddingLoss, MSELoss, get_loss
from repro.tensor import Tensor


class TestBCEWrapper:
    def test_perfect_predictions_near_zero(self):
        logits = Tensor(np.array([10.0, -10.0, 10.0], dtype=np.float32))
        targets = np.array([1.0, 0.0, 1.0], dtype=np.float32)
        assert BCEWithLogitsLoss()(logits, targets).item() < 1e-3

    def test_pos_weight_raises_positive_miss_cost(self):
        logits = Tensor(np.array([-2.0], dtype=np.float32))
        target = np.array([1.0], dtype=np.float32)
        plain = BCEWithLogitsLoss()(logits, target).item()
        weighted = BCEWithLogitsLoss(pos_weight=5.0)(logits, target).item()
        assert weighted == pytest.approx(5.0 * plain, rel=1e-5)

    def test_pos_weight_leaves_negatives_alone(self):
        logits = Tensor(np.array([2.0], dtype=np.float32))
        target = np.array([0.0], dtype=np.float32)
        plain = BCEWithLogitsLoss()(logits, target).item()
        weighted = BCEWithLogitsLoss(pos_weight=5.0)(logits, target).item()
        assert weighted == pytest.approx(plain, rel=1e-6)


class TestHingeWrapper:
    def test_separated_pairs_zero_loss(self):
        d2 = Tensor(np.array([0.0, 9.0], dtype=np.float32))
        labels = np.array([1.0, 0.0], dtype=np.float32)
        assert HingeEmbeddingLoss(margin=1.0)(d2, labels).item() == pytest.approx(0.0, abs=1e-6)


class TestMSEWrapper:
    def test_zero_on_match(self):
        pred = Tensor(np.arange(4, dtype=np.float32))
        assert MSELoss()(pred, np.arange(4, dtype=np.float32)).item() == pytest.approx(0.0)

    def test_value(self):
        pred = Tensor(np.array([1.0, 3.0], dtype=np.float32))
        assert MSELoss()(pred, np.array([0.0, 0.0])).item() == pytest.approx(5.0)


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_loss("bce"), BCEWithLogitsLoss)
        assert isinstance(get_loss("hinge", margin=0.5), HingeEmbeddingLoss)
        assert isinstance(get_loss("mse"), MSELoss)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown loss"):
            get_loss("focal")
