"""Guarded ingestion: invalid inputs quarantine, valid ones shard."""

import json

import numpy as np
import pytest

from repro.detector import dataset_config, make_dataset
from repro.graph import EventGraph, random_graph
from repro.store import EventStore, ingest_graphs, ingest_simulated


def _nan_graph(event_id):
    g = random_graph(40, 160, rng=np.random.default_rng(event_id), true_fraction=0.3)
    g.event_id = event_id
    g.x[3, 0] = np.nan
    return g


class TestQuarantineRouting:
    def test_invalid_graphs_never_reach_a_shard(self, tmp_path):
        rng = np.random.default_rng(23)
        good = [random_graph(40, 160, rng=rng, true_fraction=0.3) for _ in range(3)]
        for i, g in enumerate(good):
            g.event_id = i
        bad = _nan_graph(77)
        d = str(tmp_path / "s")
        log = str(tmp_path / "quarantine.jsonl")
        report = ingest_graphs(good + [bad], d, quarantine_log=log)
        assert report.seen == 4
        assert report.ingested == 3
        assert report.quarantined == 1
        with EventStore(d) as store:
            assert len(store) == 3
            assert all(h.event_id != 77 for h in store.handles())

    def test_quarantine_log_records_offender(self, tmp_path):
        d = str(tmp_path / "s")
        log = str(tmp_path / "quarantine.jsonl")
        g = random_graph(40, 160, rng=np.random.default_rng(0), true_fraction=0.3)
        ingest_graphs([g, _nan_graph(77)], d, quarantine_log=log)
        records = [json.loads(line) for line in open(log)]
        assert len(records) == 1
        assert records[0]["id"] == 77
        assert records[0]["context"] == "store.ingest"
        assert "finite_features" in records[0]["rules"]

    def test_validation_can_be_disabled(self, tmp_path):
        d = str(tmp_path / "s")
        report = ingest_graphs([_nan_graph(1)], d, validate=False)
        assert report.ingested == 1
        assert report.quarantined == 0

    def test_empty_graph_quarantined(self, tmp_path):
        empty = EventGraph(
            edge_index=np.empty((2, 0), dtype=np.int64),
            x=np.empty((0, 6), dtype=np.float32),
            y=np.empty((0, 2), dtype=np.float32),
            edge_labels=np.empty(0, dtype=np.int8),
            event_id=5,
        )
        d = str(tmp_path / "s")
        report = ingest_graphs([empty], d)
        assert report.quarantined == 1
        with EventStore(d) as store:
            assert len(store) == 0


class TestIngestSimulated:
    def test_matches_make_dataset_bit_for_bit(self, tmp_path):
        """The streaming twin produces the same graphs as the in-RAM
        factory, modulo the canonical CSR edge order."""
        cfg = dataset_config("tiny")
        d = str(tmp_path / "s")
        report = ingest_simulated(cfg, d)
        dataset = make_dataset(cfg)
        expected = list(dataset.train) + list(dataset.val) + list(dataset.test)
        assert report.ingested == len(expected)
        with EventStore(d) as store:
            assert store.meta["dataset"] == cfg.name
            for orig, handle in zip(expected, store.handles()):
                got = handle.materialize()
                order = np.argsort(orig.rows, kind="stable")
                assert np.array_equal(got.x, orig.x)
                assert np.array_equal(got.edge_index[0], orig.rows[order])
                assert np.array_equal(got.edge_index[1], orig.cols[order])
                assert np.array_equal(got.y, orig.y[order])
                assert np.array_equal(got.edge_labels, orig.edge_labels[order])

    def test_splits_recorded(self, tmp_path):
        cfg = dataset_config("tiny")
        d = str(tmp_path / "s")
        report = ingest_simulated(cfg, d)
        assert report.splits == {
            "train": cfg.num_train,
            "val": cfg.num_val,
            "test": cfg.num_test,
        }
        with EventStore(d) as store:
            assert len(store.handles("train")) == cfg.num_train
            assert len(store.handles("val")) == cfg.num_val

    def test_fingerprints_recorded(self, tmp_path):
        d = str(tmp_path / "s")
        ingest_simulated(dataset_config("tiny"), d)
        with EventStore(d) as store:
            fps = store.fingerprints()
            assert len(fps) == len(store)
            assert all(isinstance(k, str) and k for k in fps)
