"""Audit-on-open: every damaged byte surfaces as ``StoreCorruptError``."""

import json
import os

import numpy as np
import pytest

from repro.graph import random_graph
from repro.store import (
    EventStore,
    MANIFEST_NAME,
    StoreCorruptError,
    StoreError,
    ingest_graphs,
)


@pytest.fixture
def store_dir(tmp_path):
    rng = np.random.default_rng(17)
    graphs = []
    for i in range(4):
        g = random_graph(50, 200, rng=rng, true_fraction=0.3)
        g.event_id = i
        graphs.append(g)
    d = str(tmp_path / "s")
    ingest_graphs(graphs, d, max_shard_bytes=8 * 1024)
    return d


def _flip_byte(path, offset):
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))


class TestCorruptionDetection:
    def test_bit_flipped_shard_detected(self, store_dir):
        _flip_byte(os.path.join(store_dir, "shard-00000.bin"), 100)
        with pytest.raises(StoreCorruptError, match="checksum"):
            EventStore(store_dir)

    def test_truncated_shard_detected(self, store_dir):
        path = os.path.join(store_dir, "shard-00000.bin")
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 64)
        with pytest.raises(StoreCorruptError, match="bytes"):
            EventStore(store_dir)

    def test_missing_shard_detected(self, store_dir):
        os.unlink(os.path.join(store_dir, "shard-00001.bin"))
        with pytest.raises(StoreCorruptError, match="missing"):
            EventStore(store_dir)

    def test_tampered_index_detected(self, store_dir):
        path = os.path.join(store_dir, "shard-00000.index.json")
        with open(path) as fh:
            doc = json.load(fh)
        doc["events"][0]["num_nodes"] += 1
        with open(path, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(StoreCorruptError):
            EventStore(store_dir)

    def test_tampered_manifest_detected(self, store_dir):
        path = os.path.join(store_dir, MANIFEST_NAME)
        with open(path) as fh:
            doc = json.load(fh)
        doc["shards"][0]["bytes"] += 1
        with open(path, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(StoreCorruptError, match="checksum"):
            EventStore(store_dir)

    def test_missing_manifest_is_plain_store_error(self, tmp_path):
        d = str(tmp_path / "empty")
        os.makedirs(d)
        with pytest.raises(StoreError):
            EventStore(d)

    def test_unsupported_format_rejected(self, store_dir):
        path = os.path.join(store_dir, MANIFEST_NAME)
        with open(path) as fh:
            doc = json.load(fh)
        doc["format"] = "repro.store/v999"
        from repro.store.format import seal_document

        with open(path, "w") as fh:
            json.dump(seal_document({k: v for k, v in doc.items() if k != "checksum"}), fh)
        with pytest.raises(StoreError, match="format"):
            EventStore(store_dir)

    def test_audit_false_skips_full_hash(self, store_dir):
        # flip a payload byte: sizes still agree, so the cheap open passes…
        _flip_byte(os.path.join(store_dir, "shard-00000.bin"), 100)
        store = EventStore(store_dir, audit=False)
        # …but an explicit verify still catches it
        with pytest.raises(StoreCorruptError):
            store.verify()
        store.close()

    def test_verify_passes_on_intact_store(self, store_dir):
        with EventStore(store_dir) as store:
            store.verify()  # no raise


class TestStaleTmpSweep:
    def test_reader_sweeps_tmp_files(self, store_dir):
        stray = os.path.join(store_dir, "shard-00099.bin.tmp")
        with open(stray, "wb") as fh:
            fh.write(b"half-written")
        with EventStore(store_dir) as store:
            assert len(store) == 4
        assert not os.path.exists(stray)

    def test_writer_sweeps_tmp_files(self, store_dir, tmp_path):
        d = str(tmp_path / "w")
        os.makedirs(d)
        stray = os.path.join(d, "manifest.json.tmp")
        with open(stray, "wb") as fh:
            fh.write(b"{")
        g = random_graph(30, 100, rng=np.random.default_rng(0), true_fraction=0.3)
        report = ingest_graphs([g], d)
        assert report.swept_tmp == 1
        assert not os.path.exists(stray)
