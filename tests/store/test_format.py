"""Checksummed-document and array-spec primitives of the shard format."""

import numpy as np
import pytest

from repro.store import StoreCorruptError
from repro.store.format import (
    ARRAY_ALIGN,
    array_spec,
    check_spec_bounds,
    document_checksum,
    resolve_array,
    seal_document,
    verify_document,
)


class TestDocumentChecksum:
    def test_seal_then_verify_roundtrip(self):
        doc = seal_document({"a": 1, "b": [1, 2, 3]})
        verify_document(doc, "doc")  # no raise

    def test_checksum_excludes_itself(self):
        doc = seal_document({"a": 1})
        assert document_checksum(doc) == doc["checksum"]

    def test_key_order_irrelevant(self):
        a = document_checksum({"x": 1, "y": 2})
        b = document_checksum({"y": 2, "x": 1})
        assert a == b

    def test_tampered_value_detected(self):
        doc = seal_document({"a": 1})
        doc["a"] = 2
        with pytest.raises(StoreCorruptError, match="checksum mismatch"):
            verify_document(doc, "doc")

    def test_missing_checksum_detected(self):
        with pytest.raises(StoreCorruptError, match="missing checksum"):
            verify_document({"a": 1}, "doc")


class TestArraySpec:
    def test_roundtrip_through_buffer(self):
        arr = np.arange(12, dtype=np.int64).reshape(3, 4)
        spec = array_spec(arr, offset=ARRAY_ALIGN)
        blob = np.zeros(ARRAY_ALIGN + arr.nbytes, dtype=np.uint8)
        blob[ARRAY_ALIGN:] = np.frombuffer(arr.tobytes(), dtype=np.uint8)
        out = resolve_array(blob, spec, "arr")
        assert out.dtype == arr.dtype
        assert np.array_equal(out, arr)

    def test_resolve_is_zero_copy(self):
        arr = np.arange(8, dtype=np.float32)
        spec = array_spec(arr, offset=0)
        blob = np.frombuffer(arr.tobytes(), dtype=np.uint8).copy()
        out = resolve_array(blob, spec, "arr")
        assert out.base is not None  # a view, not a copy

    def test_inconsistent_nbytes_rejected(self):
        spec = {"dtype": "<i8", "shape": [4], "offset": 0, "nbytes": 16}
        with pytest.raises(StoreCorruptError, match="inconsistent"):
            check_spec_bounds(spec, 1 << 20, "arr")

    def test_out_of_bounds_rejected(self):
        arr = np.arange(4, dtype=np.int64)
        spec = array_spec(arr, offset=64)
        with pytest.raises(StoreCorruptError, match="truncated"):
            check_spec_bounds(spec, 64, "arr")

    def test_malformed_spec_rejected(self):
        with pytest.raises(StoreCorruptError, match="malformed"):
            check_spec_bounds({"dtype": "<i8"}, 1 << 20, "arr")
