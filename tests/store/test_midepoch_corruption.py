"""Mid-epoch corruption: damage landing after ``EpochPlan.build`` but
before ``sample_step`` materializes a shard must surface as the typed
``StoreCorruptError`` (and telemetry), never as a garbage batch."""

import os

import numpy as np
import pytest

from repro.data import EpochPlan, sample_step
from repro.faults import DiskFault, FaultPlan, flip_bit, truncate_file
from repro.graph import random_graph
from repro.obs import RunTelemetry, use_telemetry
from repro.sampling import BulkShadowSampler
from repro.store import EventStore, StoreCorruptError, ingest_graphs


@pytest.fixture
def store_dir(tmp_path):
    rng = np.random.default_rng(23)
    graphs = []
    for i in range(6):
        g = random_graph(60, 240, rng=rng, true_fraction=0.3)
        g.event_id = i
        graphs.append(g)
    d = str(tmp_path / "s")
    ingest_graphs(graphs, d, max_shard_bytes=8 * 1024)
    return d


def _sample_all(plan):
    sampler = BulkShadowSampler(depth=2, fanout=3)
    for step in plan.steps:
        sample_step(sampler, step, ranks=(0,))


class TestMidEpochCorruption:
    def test_bitflip_after_plan_build_raises_typed_error(self, store_dir):
        store = EventStore(store_dir, audit=False, verify_on_map=True)
        try:
            plan = EpochPlan.build(
                store.handles(), batch_size=32, k=2,
                rng=np.random.default_rng(0),
            )
            assert len(plan) > 0  # the plan was built from lazy handles
            for name in os.listdir(store_dir):
                if name.endswith(".bin"):
                    flip_bit(os.path.join(store_dir, name), 40, 2)
            with pytest.raises(StoreCorruptError, match="checksum"):
                _sample_all(plan)
        finally:
            store.close()

    def test_truncation_caught_by_map_time_size_check(self, store_dir):
        # no verify_on_map needed: the cheap size check covers truncation
        store = EventStore(store_dir, audit=False)
        try:
            plan = EpochPlan.build(
                store.handles(), batch_size=32, k=2,
                rng=np.random.default_rng(0),
            )
            for name in os.listdir(store_dir):
                if name.endswith(".bin"):
                    path = os.path.join(store_dir, name)
                    truncate_file(path, os.path.getsize(path) - 64)
            with pytest.raises(StoreCorruptError, match="bytes"):
                _sample_all(plan)
        finally:
            store.close()

    def test_corruption_recorded_in_telemetry(self, store_dir):
        telemetry = RunTelemetry()
        with use_telemetry(telemetry):
            store = EventStore(store_dir, audit=False, verify_on_map=True)
            try:
                plan = EpochPlan.build(
                    store.handles(), batch_size=32, k=2,
                    rng=np.random.default_rng(0),
                )
                for name in os.listdir(store_dir):
                    if name.endswith(".bin"):
                        flip_bit(os.path.join(store_dir, name), 40, 2)
                with pytest.raises(StoreCorruptError):
                    _sample_all(plan)
            finally:
                store.close()
        assert telemetry.metrics.counter("store.shard.corrupt").value >= 1

    def test_clean_stream_unaffected_by_verify_on_map(self, store_dir):
        with EventStore(store_dir, verify_on_map=True) as store:
            plan = EpochPlan.build(
                store.handles(), batch_size=32, k=2,
                rng=np.random.default_rng(0),
            )
            _sample_all(plan)  # no raise


class TestDiskFaultInjection:
    def test_diskfault_fires_on_scheduled_map(self, store_dir):
        plan = FaultPlan(
            disk_faults=[DiskFault(at_map=0, mode="flip", byte_offset=40, bit=2)]
        )
        store = EventStore(
            store_dir, audit=False, fault_plan=plan, verify_on_map=True
        )
        try:
            with pytest.raises(StoreCorruptError):
                for handle in store.handles():
                    handle.materialize()
        finally:
            store.close()

    def test_diskfault_truncate_mode(self, store_dir):
        plan = FaultPlan(
            disk_faults=[DiskFault(at_map=0, mode="truncate", keep_bytes=16)]
        )
        store = EventStore(store_dir, audit=False, fault_plan=plan)
        try:
            with pytest.raises(StoreCorruptError, match="bytes"):
                for handle in store.handles():
                    handle.materialize()
        finally:
            store.close()

    def test_diskfault_outside_window_is_harmless(self, store_dir):
        plan = FaultPlan(
            disk_faults=[DiskFault(at_map=99, mode="flip", byte_offset=0, bit=0)]
        )
        with EventStore(store_dir, fault_plan=plan, verify_on_map=True) as store:
            for handle in store.handles():
                handle.materialize()  # no raise: the fault never fires

    def test_diskfault_validates_parameters(self):
        with pytest.raises(ValueError):
            DiskFault(at_map=-1)
        with pytest.raises(ValueError):
            DiskFault(at_map=0, mode="melt")
        with pytest.raises(ValueError):
            DiskFault(at_map=0, bit=8)
        with pytest.raises(ValueError):
            DiskFault(at_map=0, times=0)
        with pytest.raises(ValueError):
            DiskFault(at_map=0, keep_bytes=-1)

    def test_should_fire_window(self):
        fault = DiskFault(at_map=2, times=2)
        assert [fault.should_fire(i) for i in range(5)] == [
            False, False, True, True, False,
        ]
