"""Write → mmap-read bit-equality and the lazy-handle API."""

import numpy as np
import pytest

from repro.graph import random_graph
from repro.store import (
    DEFAULT_SHARD_BYTES,
    EventStore,
    StoreError,
    StoreWriter,
    ingest_graphs,
)


@pytest.fixture(scope="module")
def graphs():
    rng = np.random.default_rng(41)
    out = []
    for i in range(6):
        g = random_graph(
            60 + 10 * i, 240 + 40 * i, rng=rng, true_fraction=0.3
        )
        g.event_id = i
        out.append(g)
    return out


def csr_reference(graph):
    """The canonical on-disk order: edges stably sorted by source row."""
    order = np.argsort(graph.rows, kind="stable")
    return order


class TestRoundTrip:
    def test_bit_equality_all_arrays(self, graphs, tmp_path):
        d = str(tmp_path / "s")
        report = ingest_graphs(graphs, d, max_shard_bytes=8 * 1024)
        assert report.ingested == len(graphs)
        with EventStore(d) as store:
            assert len(store) == len(graphs)
            for orig, handle in zip(graphs, store.handles()):
                got = handle.materialize()
                order = csr_reference(orig)
                assert np.array_equal(got.edge_index[0], orig.rows[order])
                assert np.array_equal(got.edge_index[1], orig.cols[order])
                assert np.array_equal(got.x, orig.x)
                assert np.array_equal(got.y, orig.y[order])
                assert np.array_equal(got.edge_labels, orig.edge_labels[order])
                assert got.x.dtype == np.float32
                assert got.y.dtype == np.float32
                assert got.edge_labels.dtype == np.int8

    def test_handle_metadata_needs_no_disk(self, graphs, tmp_path):
        d = str(tmp_path / "s")
        ingest_graphs(graphs, d)
        with EventStore(d) as store:
            h = store.handles()[2]
            assert h.num_nodes == graphs[2].num_nodes
            assert h.num_edges == graphs[2].num_edges
            assert h.num_node_features == graphs[2].num_node_features
            assert store.stats.maps == 0  # nothing touched a shard yet

    def test_materialize_returns_cached_object(self, graphs, tmp_path):
        d = str(tmp_path / "s")
        ingest_graphs(graphs, d)
        with EventStore(d) as store:
            h = store.handles()[0]
            assert h.materialize() is h.materialize()

    def test_load_split_copies_are_writable(self, graphs, tmp_path):
        d = str(tmp_path / "s")
        ingest_graphs(graphs, d)
        with EventStore(d) as store:
            loaded = store.load_split("train")
            assert len(loaded) == len(graphs)
            loaded[0].x[0, 0] = 99.0  # mmap views would refuse this

    def test_mmap_views_are_readonly(self, graphs, tmp_path):
        d = str(tmp_path / "s")
        ingest_graphs(graphs, d)
        with EventStore(d) as store:
            g = store.handles()[0].materialize()
            with pytest.raises(ValueError):
                g.x[0, 0] = 99.0

    def test_particle_ids_roundtrip(self, tmp_path):
        rng = np.random.default_rng(5)
        g = random_graph(50, 200, rng=rng, true_fraction=0.3)
        g.particle_ids = rng.integers(0, 10, size=50).astype(np.int64)
        d = str(tmp_path / "s")
        ingest_graphs([g], d)
        with EventStore(d) as store:
            got = store.handles()[0].materialize()
            assert np.array_equal(got.particle_ids, g.particle_ids)

    def test_absent_optional_arrays_stay_none(self, tmp_path):
        g = random_graph(40, 160, rng=np.random.default_rng(6), true_fraction=0.3)
        g.edge_labels = None
        d = str(tmp_path / "s")
        ingest_graphs([g], d, require_labels=False)
        with EventStore(d) as store:
            h = store.handles()[0]
            assert h.edge_labels is None  # answered from the index, no disk
            assert h.particle_ids is None
            assert store.stats.maps == 0


class TestSharding:
    def test_shard_size_bound_respected(self, graphs, tmp_path):
        d = str(tmp_path / "s")
        report = ingest_graphs(graphs, d, max_shard_bytes=8 * 1024)
        assert report.shards > 1
        with EventStore(d) as store:
            sizes = [s["bytes"] for s in store.manifest["shards"]]
            events = [s["events"] for s in store.manifest["shards"]]
            # one event never spans shards; multi-event shards stay bounded
            for size, count in zip(sizes, events):
                assert count == 1 or size <= 8 * 1024 * 2

    def test_single_default_shard(self, graphs, tmp_path):
        d = str(tmp_path / "s")
        report = ingest_graphs(graphs, d, max_shard_bytes=DEFAULT_SHARD_BYTES)
        assert report.shards == 1


class TestWriterMisuse:
    def test_existing_store_requires_overwrite(self, graphs, tmp_path):
        d = str(tmp_path / "s")
        ingest_graphs(graphs[:2], d)
        with pytest.raises(StoreError, match="already exists"):
            ingest_graphs(graphs, d)
        report = ingest_graphs(graphs, d, overwrite=True)
        assert report.ingested == len(graphs)
        with EventStore(d) as store:
            assert len(store) == len(graphs)

    def test_closed_writer_rejects_graphs(self, graphs, tmp_path):
        w = StoreWriter(str(tmp_path / "s"))
        w.add_graph(graphs[0])
        w.close()
        with pytest.raises(StoreError, match="closed"):
            w.add_graph(graphs[1])

    def test_bad_shard_bound_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            StoreWriter(str(tmp_path / "s"), max_shard_bytes=0)
