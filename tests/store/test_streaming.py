"""Budgeted streaming reads and streamed-vs-in-RAM training parity."""

import numpy as np
import pytest

from repro.graph import random_graph
from repro.pipeline import GNNTrainConfig, train_gnn
from repro.store import EventStore, ingest_graphs, ingest_simulated


@pytest.fixture(scope="module")
def sharded_store(tmp_path_factory):
    """Ten graphs across many small shards (forces LRU traffic)."""
    rng = np.random.default_rng(31)
    graphs = []
    for i in range(10):
        g = random_graph(60, 240, rng=rng, true_fraction=0.3)
        g.event_id = i
        graphs.append(g)
    d = str(tmp_path_factory.mktemp("stream") / "s")
    ingest_graphs(graphs, d, max_shard_bytes=8 * 1024)
    return d


class TestResidentBudget:
    def test_full_walk_stays_under_budget(self, sharded_store):
        budget = 32 * 1024  # about half the store: the walk must evict
        with EventStore(sharded_store, budget_bytes=budget) as store:
            assert len(store.manifest["shards"]) > 2
            for _ in range(3):  # repeated epochs re-touch every event
                for handle in store.handles():
                    handle.materialize()
                    assert store.resident_bytes <= budget
            assert store.stats.peak_resident_bytes <= budget
            assert store.stats.unmaps > 0  # the LRU actually evicted

    def test_eviction_and_remap_preserve_bits(self, sharded_store):
        budget = 24 * 1024  # tiny window: every walk evicts
        with EventStore(sharded_store, budget_bytes=budget) as store:
            first = [np.array(h.materialize().x) for h in store.handles()]
            second = [np.array(h.materialize().x) for h in store.handles()]
            for a, b in zip(first, second):
                assert np.array_equal(a, b)

    def test_cache_counters(self, sharded_store):
        with EventStore(sharded_store, budget_bytes=1 << 20) as store:
            handles = store.handles()
            for h in handles:
                h.materialize()
            assert store.stats.misses == len(handles)
            for h in handles:  # warm pass: everything stays mapped
                h.materialize()
            assert store.stats.hits == len(handles)
            assert 0.0 < store.stats.hit_rate() <= 1.0

    def test_unbudgeted_store_maps_everything(self, sharded_store):
        with EventStore(sharded_store) as store:
            for h in store.handles():
                h.materialize()
            assert store.stats.unmaps == 0
            assert store.mapped_shards == len(store.manifest["shards"])

    def test_budget_below_largest_shard_rejected(self, sharded_store):
        with pytest.raises(ValueError, match="budget"):
            EventStore(sharded_store, budget_bytes=512)


class TestTrainingParity:
    @pytest.mark.parametrize("precision", ["float32", "float64"])
    def test_streamed_losses_bit_identical_to_in_ram(self, tmp_path, precision):
        """The acceptance bar: same EpochPlan, same per-step losses and
        final weights, whether graphs stream from mmap shards under a
        budget or sit fully resident in RAM."""
        from repro.detector import dataset_config

        d = str(tmp_path / "s")
        ingest_simulated(dataset_config("tiny"), d, max_shard_bytes=64 * 1024)
        cfg = GNNTrainConfig(
            mode="bulk",
            epochs=2,
            batch_size=64,
            bulk_k=2,
            hidden=8,
            num_layers=2,
            eval_every=2,
            seed=0,
            precision=precision,
        )
        with EventStore(d, budget_bytes=256 * 1024) as store:
            streamed = train_gnn(
                store.handles("train"), store.handles("val"), cfg
            )
            assert store.stats.hits > 0  # shard cache did real work
            in_ram = train_gnn(
                store.load_split("train"), store.load_split("val"), cfg
            )
        s_loss = [r.train_loss for r in streamed.history.records]
        r_loss = [r.train_loss for r in in_ram.history.records]
        assert s_loss == r_loss  # bit-identical, not approx
        s_state = streamed.model.state_dict()
        r_state = in_ram.model.state_dict()
        assert set(s_state) == set(r_state)
        for key in s_state:
            assert np.array_equal(s_state[key], r_state[key]), key

    def test_prefetch_workers_see_same_batches(self, tmp_path):
        """Lazy handles compose with the prefetching loader: worker
        threads materialising through the store LRU change nothing."""
        from repro.detector import dataset_config

        d = str(tmp_path / "s")
        ingest_simulated(dataset_config("tiny"), d, max_shard_bytes=64 * 1024)
        base = dict(
            mode="bulk", epochs=2, batch_size=64, bulk_k=2, hidden=8,
            num_layers=2, eval_every=2, seed=0,
        )
        with EventStore(d, budget_bytes=256 * 1024) as store:
            sync = train_gnn(
                store.handles("train"), store.handles("val"),
                GNNTrainConfig(**base),
            )
            threaded = train_gnn(
                store.handles("train"), store.handles("val"),
                GNNTrainConfig(**base, prefetch_workers=2),
            )
        assert [r.train_loss for r in sync.history.records] == [
            r.train_loss for r in threaded.history.records
        ]
