"""Fixtures for the serving-engine tests: one small fitted pipeline."""

from __future__ import annotations

import contextlib
import dataclasses

import numpy as np
import pytest

from repro.detector import EventSimulator, ParticleGun
from repro.pipeline import ExaTrkXPipeline, GNNTrainConfig, PipelineConfig


@pytest.fixture(scope="session")
def serve_pipeline(geometry, small_events):
    """Small fitted pipeline shared by every serving test (fit once)."""
    config = PipelineConfig(
        embedding_dim=6,
        embedding_epochs=8,
        filter_epochs=8,
        frnn_radius=0.3,
        gnn=GNNTrainConfig(
            mode="bulk",
            epochs=3,
            batch_size=64,
            hidden=16,
            num_layers=2,
            mlp_layers=2,
            depth=2,
            fanout=4,
            bulk_k=4,
        ),
    )
    pipe = ExaTrkXPipeline(config, geometry)
    pipe.fit(small_events[:4], small_events[4:5])
    return pipe


@pytest.fixture(scope="session")
def serve_events(geometry):
    """Events the pipeline never trained on, for serving requests."""
    sim = EventSimulator(
        geometry,
        gun=ParticleGun(),
        particles_per_event=15,
        noise_fraction=0.05,
    )
    return [
        sim.generate(np.random.default_rng(900 + i), event_id=100 + i)
        for i in range(5)
    ]


@contextlib.contextmanager
def track_builder(pipe: ExaTrkXPipeline, builder: str):
    """Temporarily switch a (session-shared) pipeline's track builder."""
    original = pipe.config
    pipe.config = dataclasses.replace(original, track_builder=builder)
    try:
        yield pipe
    finally:
        pipe.config = original
