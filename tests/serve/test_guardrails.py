"""Serving guardrails: quarantine, timeouts, circuit breaker, drain."""

import dataclasses

import numpy as np
import pytest

from repro.faults import FaultPlan, SimClock, StageFault
from repro.serve import (
    InferenceEngine,
    RequestFailedError,
    RequestQuarantinedError,
    RequestTimeoutError,
    ServeConfig,
)

pytestmark = pytest.mark.guard


def _nan_event(event):
    positions = event.positions.copy()
    positions[0, 0] = np.nan
    return dataclasses.replace(event, positions=positions)


class TestSubmitQuarantine:
    def test_bad_event_quarantined_with_typed_error(
        self, serve_pipeline, serve_events
    ):
        engine = InferenceEngine(
            serve_pipeline, ServeConfig(validate_inputs=True)
        )
        try:
            request = engine.submit(_nan_event(serve_events[0]))
            assert request.status == "quarantined"
            with pytest.raises(RequestQuarantinedError, match="finite_positions"):
                request.result()
            assert engine.stats.quarantined == 1
            # the offender never entered the queue
            assert len(engine.queue) == 0
        finally:
            engine.close()

    def test_healthy_events_unaffected(self, serve_pipeline, serve_events):
        with InferenceEngine(
            serve_pipeline, ServeConfig(validate_inputs=True)
        ) as engine:
            requests = engine.process(
                [serve_events[0], _nan_event(serve_events[1]), serve_events[2]]
            )
        statuses = [r.status for r in requests]
        assert statuses == ["done", "quarantined", "done"]

    def test_quarantine_log_written(self, serve_pipeline, serve_events, tmp_path):
        log_path = str(tmp_path / "quarantine.jsonl")
        with InferenceEngine(
            serve_pipeline,
            ServeConfig(validate_inputs=True, quarantine_log=log_path),
        ) as engine:
            engine.process([_nan_event(serve_events[0])])
        import json

        with open(log_path) as fh:
            records = [json.loads(line) for line in fh]
        assert records[0]["context"] == "serve.submit"
        assert "finite_positions" in records[0]["rules"]

    def test_validation_off_by_default(self, serve_pipeline, serve_events):
        config = ServeConfig()
        assert not config.validate_inputs


class TestRequestTimeout:
    def test_stale_request_times_out(self, serve_pipeline, serve_events):
        clock = SimClock()
        engine = InferenceEngine(
            serve_pipeline,
            ServeConfig(max_batch_events=4, request_timeout_ms=50.0),
            clock=clock,
        )
        try:
            stale = engine.submit(serve_events[0])
            clock.sleep(0.2)  # exceeds the 50 ms budget while queued
            fresh = engine.submit(serve_events[1])
            engine.flush()
            assert stale.status == "timed_out"
            assert fresh.status == "done"
            with pytest.raises(RequestTimeoutError):
                stale.result()
            assert engine.stats.timed_out == 1
        finally:
            engine.close()


class TestCircuitBreaker:
    def _engine(self, serve_pipeline, plan, clock, **overrides):
        fields = dict(
            max_batch_events=1,
            cache_capacity=0,  # each request must exercise the GNN stage
            breaker_threshold=2,
            breaker_cooldown_ms=100.0,
            breaker_probes=1,
        )
        fields.update(overrides)
        return InferenceEngine(
            serve_pipeline, ServeConfig(**fields), clock=clock, fault_plan=plan
        )

    def test_trip_degrade_and_recover(self, serve_pipeline, serve_events):
        clock = SimClock()
        plan = FaultPlan(
            stage_faults=[StageFault(stage="gnn", at_call=0, times=2)]
        )
        engine = self._engine(serve_pipeline, plan, clock)
        try:
            observed = []
            for _ in range(5):
                request = engine.submit(serve_events[0])
                engine.flush()
                observed.append(
                    (request.status, request.breaker_degraded, engine.breaker.state)
                )
                clock.sleep(0.06)  # two ticks cross the 100 ms cooldown
            # two injected failures trip the breaker; while open the
            # requests still complete, degraded; the half-open probe
            # succeeds and closes it again
            assert observed[0] == ("done", True, "closed")
            assert observed[1][2] == "open"
            assert any(status == "done" and degraded for status, degraded, _ in observed[1:3])
            assert observed[-1] == ("done", False, "closed")
            assert engine.breaker.transitions["open"] == 1
            assert engine.stats.breaker_degraded >= 1
        finally:
            engine.close()

    def test_failed_probe_reopens(self, serve_pipeline, serve_events):
        clock = SimClock()
        # three failures outlast the first open period and fail the probe
        plan = FaultPlan(
            stage_faults=[StageFault(stage="gnn", at_call=1, times=3)]
        )
        engine = self._engine(serve_pipeline, plan, clock)
        try:
            for _ in range(8):
                engine.submit(serve_events[0])
                engine.flush()
                clock.sleep(0.06)
            assert engine.breaker.transitions["open"] >= 2
            assert engine.breaker.state == "closed"
        finally:
            engine.close()

    def test_stage_failure_without_breaker_degrades_batch(
        self, serve_pipeline, serve_events
    ):
        plan = FaultPlan(
            stage_faults=[StageFault(stage="gnn", at_call=0, times=1)]
        )
        with InferenceEngine(
            serve_pipeline,
            ServeConfig(max_batch_events=1, cache_capacity=0),
            fault_plan=plan,
        ) as engine:
            requests = engine.process([serve_events[0], serve_events[1]])
        assert [r.status for r in requests] == ["done", "done"]
        assert requests[0].degraded and not requests[1].degraded


class TestDrainAndAccounting:
    def test_terminal_states_are_disjoint_and_complete(
        self, serve_pipeline, serve_events
    ):
        clock = SimClock()
        plan = FaultPlan(
            stage_faults=[StageFault(stage="gnn", at_call=1, times=3)]
        )
        engine = InferenceEngine(
            serve_pipeline,
            ServeConfig(
                max_batch_events=1,
                cache_capacity=0,
                max_queue_events=2,
                validate_inputs=True,
                request_timeout_ms=500.0,
                breaker_threshold=2,
                breaker_cooldown_ms=100.0,
            ),
            clock=clock,
            fault_plan=plan,
        )
        engine.submit(_nan_event(serve_events[0]))  # quarantined
        for _ in range(6):
            engine.submit(serve_events[0])
            engine.flush()
            clock.sleep(0.06)
        engine.close()
        stats = engine.stats
        assert stats.terminal == stats.submitted
        assert (
            stats.completed + stats.shed + stats.quarantined
            + stats.timed_out + stats.failed
            == stats.submitted
        )

    def test_close_fails_undispatched_requests(self, serve_pipeline, serve_events):
        engine = InferenceEngine(
            serve_pipeline, ServeConfig(max_batch_events=64, max_wait_ms=1e6)
        )
        request = engine.submit(serve_events[0])
        engine.close()
        # close() dispatches the queue before shutdown; either way the
        # request must reach a terminal state, never hang
        assert request.status in ("done", "failed")
        if request.status == "failed":
            with pytest.raises(RequestFailedError):
                request.result(timeout=1.0)
        assert engine.stats.terminal == engine.stats.submitted

    def test_health_snapshot(self, serve_pipeline, serve_events):
        engine = InferenceEngine(
            serve_pipeline, ServeConfig(breaker_threshold=2)
        )
        health = engine.health()
        assert health["live"] and health["ready"]
        assert health["breaker"] == "closed"
        assert health["queue_depth"] == 0 and health["in_flight"] == 0
        engine.close()
        health = engine.health()
        assert not health["live"] and not health["ready"]

    def test_health_not_ready_while_breaker_open(
        self, serve_pipeline, serve_events
    ):
        clock = SimClock()
        plan = FaultPlan(
            stage_faults=[StageFault(stage="gnn", at_call=0, times=2)]
        )
        engine = InferenceEngine(
            serve_pipeline,
            ServeConfig(
                max_batch_events=1, cache_capacity=0,
                breaker_threshold=2, breaker_cooldown_ms=1e6,
            ),
            clock=clock,
            fault_plan=plan,
        )
        try:
            for _ in range(2):
                engine.submit(serve_events[0])
                engine.flush()
            health = engine.health()
            assert health["live"] and not health["ready"]
            assert health["breaker"] == "open"
        finally:
            engine.close()
