"""Serving precision mode: float64 reference engine agrees with float32."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import InferenceEngine, ServeConfig


def _tracks(engine, event):
    handle = engine.submit(event)
    engine.flush()
    return handle.result()


class TestServePrecision:
    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(precision="bfloat16")

    def test_float64_engine_matches_float32_tracks(self, serve_pipeline, serve_events):
        cfg = dict(max_batch_events=1, max_wait_ms=0.0, max_queue_events=4)
        base = InferenceEngine(serve_pipeline, ServeConfig(**cfg))
        tracks32 = _tracks(base, serve_events[0])
        base.close()
        try:
            engine = InferenceEngine(
                serve_pipeline, ServeConfig(**cfg, precision="float64")
            )
            model = serve_pipeline.gnn.result.model
            assert all(p.data.dtype == np.float64 for p in model.parameters())
            tracks64 = _tracks(engine, serve_events[0])
            engine.close()
        finally:
            # the session-scoped pipeline is shared: restore float32
            serve_pipeline.astype(np.float32)
        assert len(tracks32) == len(tracks64)
        for a, b in zip(tracks32, tracks64):
            np.testing.assert_array_equal(a, b)
