"""InferenceEngine mechanics: batching, shedding, degradation, telemetry.

Everything here runs the synchronous engine (``workers=0``) on a
:class:`repro.faults.SimClock`, so batch formation, admission control,
and the latency-budget degradation are exact and deterministic.
"""

from __future__ import annotations

import pytest

from repro.faults import SimClock
from repro.obs import RunTelemetry, use_telemetry
from repro.pipeline import ExaTrkXPipeline, PipelineConfig
from repro.serve import InferenceEngine, ServeConfig


def make_engine(pipe, clock=None, **overrides):
    defaults = dict(max_batch_events=2, max_wait_ms=10.0, max_queue_events=4)
    defaults.update(overrides)
    return InferenceEngine(pipe, ServeConfig(**defaults), clock=clock)


class TestMicroBatching:
    def test_partial_batch_waits_for_deadline(self, serve_pipeline, serve_events):
        clock = SimClock()
        engine = make_engine(serve_pipeline, clock, max_batch_events=3)
        request = engine.submit(serve_events[0])
        assert engine.pump() == 0  # one queued, deadline not reached
        assert request.status == "queued"
        clock.now += 0.011  # past max_wait_ms
        assert engine.pump() == 1
        assert request.status == "done"

    def test_full_batch_dispatches_immediately(self, serve_pipeline, serve_events):
        clock = SimClock()
        engine = make_engine(serve_pipeline, clock, max_batch_events=2)
        engine.submit(serve_events[0])
        engine.submit(serve_events[1])
        assert engine.pump() == 2  # full batch is due with no wait

    def test_flush_drains_everything(self, serve_pipeline, serve_events):
        clock = SimClock()
        engine = make_engine(serve_pipeline, clock, max_batch_events=2)
        requests = [engine.submit(e) for e in serve_events[:3]]
        assert engine.flush() == 3
        assert [r.status for r in requests] == ["done"] * 3
        assert engine.stats.batches == 2  # 2 + 1

    def test_next_due_time(self, serve_pipeline, serve_events):
        clock = SimClock()
        engine = make_engine(serve_pipeline, clock, max_batch_events=2)
        assert engine.next_due_time() is None
        engine.submit(serve_events[0])
        assert engine.next_due_time() == pytest.approx(0.010)  # deadline
        engine.submit(serve_events[1])
        assert engine.next_due_time() == pytest.approx(0.0)  # full now


class TestAdmissionControl:
    def test_overflow_is_shed(self, serve_pipeline, serve_events):
        clock = SimClock()
        engine = make_engine(serve_pipeline, clock, max_queue_events=2)
        requests = [engine.submit(serve_events[i % len(serve_events)]) for i in range(4)]
        assert [r.status for r in requests] == ["queued", "queued", "shed", "shed"]
        assert engine.stats.shed == 2
        engine.flush()
        assert engine.stats.completed == 2

    def test_shed_request_result_raises(self, serve_pipeline, serve_events):
        clock = SimClock()
        engine = make_engine(serve_pipeline, clock, max_queue_events=1)
        engine.submit(serve_events[0])
        shed = engine.submit(serve_events[1])
        with pytest.raises(RuntimeError, match="shed"):
            shed.result()
        assert shed.tracks is None


class TestDegradedMode:
    def test_blown_budget_skips_gnn(self, serve_pipeline, serve_events):
        clock = SimClock()
        engine = make_engine(
            serve_pipeline,
            clock,
            latency_budget_ms=50.0,
            sim_service_time_s=0.0,
        )
        fresh = engine.submit(serve_events[0])
        engine.flush()  # within budget: full pipeline
        clock.now += 10.0
        stale = engine.submit(serve_events[1])
        clock.now += 10.0  # waited 10 s >> 50 ms budget
        engine.flush()
        assert fresh.degraded is False
        assert stale.degraded is True
        assert isinstance(stale.tracks, list)
        assert engine.stats.degraded == 1

    def test_degraded_walkthrough_builder(self, serve_pipeline, serve_events):
        from .conftest import track_builder

        clock = SimClock()
        with track_builder(serve_pipeline, "walkthrough"):
            engine = make_engine(
                serve_pipeline, clock, latency_budget_ms=1.0, sim_service_time_s=0.0
            )
            request = engine.submit(serve_events[0])
            clock.now += 1.0
            engine.flush()
        assert request.degraded is True
        assert isinstance(request.tracks, list)

    def test_no_budget_means_never_degraded(self, serve_pipeline, serve_events):
        clock = SimClock()
        engine = make_engine(serve_pipeline, clock, latency_budget_ms=None)
        request = engine.submit(serve_events[0])
        clock.now += 100.0
        engine.flush()
        assert request.degraded is False


class TestStageCacheIntegration:
    def test_replay_hits_cache(self, serve_pipeline, serve_events):
        clock = SimClock()
        engine = make_engine(serve_pipeline, clock, max_batch_events=8)
        engine.process(serve_events[:2])
        replay = engine.process(serve_events[:2])
        assert all(r.cache_hit for r in replay)
        assert engine.stats.cache_hits == 2
        assert engine.stats.cache_misses == 2

    def test_in_batch_duplicates_computed_once(self, serve_pipeline, serve_events):
        clock = SimClock()
        engine = make_engine(serve_pipeline, clock, max_batch_events=4)
        requests = engine.process([serve_events[0]] * 3)
        assert engine.stats.cache_misses == 1
        assert engine.stats.cache_hits == 2
        tracks = [r.tracks for r in requests]
        assert all(len(t) == len(tracks[0]) for t in tracks)

    def test_cache_disabled(self, serve_pipeline, serve_events):
        clock = SimClock()
        engine = make_engine(serve_pipeline, clock, cache_capacity=0)
        assert engine.cache is None
        engine.process(serve_events[:2])
        replay = engine.process(serve_events[:2])
        assert not any(r.cache_hit for r in replay)


class TestTelemetryWiring:
    def test_serve_metrics_and_spans_exported(self, serve_pipeline, serve_events):
        telemetry = RunTelemetry()
        clock = SimClock()
        with use_telemetry(telemetry):
            engine = make_engine(
                serve_pipeline, clock, max_queue_events=2, max_batch_events=2
            )
            for i in range(4):  # 2 queued + 2 shed
                engine.submit(serve_events[i % len(serve_events)])
            engine.flush()
            engine.process(serve_events[:2])  # replay: cache hits
        metrics = telemetry.metrics.to_dict()
        assert metrics["counters"]["serve.requests.submitted"] == 6
        assert metrics["counters"]["serve.requests.completed"] == 4
        assert metrics["counters"]["serve.requests.shed"] == 2
        assert metrics["counters"]["serve.cache.hits"] == 2
        assert metrics["counters"]["serve.cache.misses"] == 2
        latency = metrics["histograms"]["serve.latency_ms"]
        assert latency["count"] == 4
        assert "p99" in latency
        span_names = {s.name for s in telemetry.tracer.spans}
        assert {
            "serve.batch",
            "serve.stage.construction",
            "serve.stage.filter",
            "serve.stage.gnn",
            "pipeline.gnn",
        } <= span_names

    def test_pipeline_score_span_recorded(self, serve_pipeline, serve_events):
        telemetry = RunTelemetry()
        with use_telemetry(telemetry):
            serve_pipeline.score_event(serve_events[0])
        assert "pipeline.score" in {s.name for s in telemetry.tracer.spans}


class TestLifecycleAndValidation:
    def test_unfitted_pipeline_rejected(self, geometry):
        with pytest.raises(RuntimeError, match="not fitted"):
            InferenceEngine(ExaTrkXPipeline(PipelineConfig(), geometry))

    def test_submit_after_close_rejected(self, serve_pipeline, serve_events):
        engine = make_engine(serve_pipeline, SimClock())
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.submit(serve_events[0])

    def test_close_drains_pending_and_is_idempotent(
        self, serve_pipeline, serve_events
    ):
        engine = make_engine(serve_pipeline, SimClock())
        request = engine.submit(serve_events[0])
        engine.close()
        engine.close()
        assert request.status == "done"

    @pytest.mark.parametrize(
        "bad",
        [
            dict(max_batch_events=0),
            dict(max_wait_ms=-1.0),
            dict(max_queue_events=0),
            dict(workers=-1),
            dict(latency_budget_ms=0.0),
            dict(degraded_threshold=1.5),
            dict(cache_capacity=-1),
        ],
    )
    def test_config_validation(self, bad):
        with pytest.raises(ValueError):
            ServeConfig(**bad)
