"""Always-on critical precheck: NaN/Inf positions never reach graph
construction on the serve path, even with ``validate_inputs=False``."""

import dataclasses

import numpy as np
import pytest

from repro.serve import InferenceEngine, RequestQuarantinedError, ServeConfig


def _poisoned(event, value):
    positions = event.positions.copy()
    positions[0, 0] = value
    return dataclasses.replace(event, positions=positions)


class TestCriticalPrecheck:
    @pytest.mark.parametrize("value", [np.nan, np.inf, -np.inf])
    def test_nonfinite_positions_quarantined_without_validation(
        self, serve_pipeline, serve_events, value
    ):
        config = ServeConfig()
        assert not config.validate_inputs  # the flag still defaults off
        with InferenceEngine(serve_pipeline, config) as engine:
            request = engine.submit(_poisoned(serve_events[0], value))
            assert request.status == "quarantined"
            with pytest.raises(RequestQuarantinedError, match="finite_positions"):
                request.result()
            assert engine.stats.quarantined == 1

    def test_inconsistent_truth_lengths_quarantined(
        self, serve_pipeline, serve_events
    ):
        bad = dataclasses.replace(
            serve_events[0], layer_ids=serve_events[0].layer_ids[:-1].copy()
        )
        with InferenceEngine(serve_pipeline, ServeConfig()) as engine:
            request = engine.submit(bad)
            assert request.status == "quarantined"

    def test_healthy_traffic_not_blocked_by_precheck(
        self, serve_pipeline, serve_events
    ):
        with InferenceEngine(serve_pipeline, ServeConfig()) as engine:
            requests = engine.process(serve_events[:3])
        assert [r.status for r in requests] == ["done"] * 3

    def test_precheck_survivors_mix(self, serve_pipeline, serve_events):
        feed = [
            serve_events[0],
            _poisoned(serve_events[1], np.nan),
            serve_events[2],
        ]
        with InferenceEngine(serve_pipeline, ServeConfig()) as engine:
            requests = engine.process(feed)
        assert [r.status for r in requests] == ["done", "quarantined", "done"]
        assert requests[0].result()  # survivors produce real tracks
