"""Open-loop load generator: schedules, overload behaviour, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import SimClock
from repro.serve import (
    InferenceEngine,
    LoadGenConfig,
    ServeConfig,
    arrival_times,
    run_loadgen,
)


def overload_engine(pipe, **overrides):
    defaults = dict(
        max_batch_events=4,
        max_wait_ms=5.0,
        max_queue_events=8,
        latency_budget_ms=100.0,
        sim_service_time_s=0.05,
    )
    defaults.update(overrides)
    return InferenceEngine(pipe, ServeConfig(**defaults), clock=SimClock())


class TestArrivalTimes:
    def test_uniform_spacing(self):
        times = arrival_times(LoadGenConfig(rate=10.0, num_requests=5))
        assert np.allclose(times, [0.0, 0.1, 0.2, 0.3, 0.4])

    def test_poisson_is_seeded_and_monotone(self):
        cfg = LoadGenConfig(rate=100.0, num_requests=50, arrival="poisson", seed=3)
        a, b = arrival_times(cfg), arrival_times(cfg)
        assert np.array_equal(a, b)
        assert a[0] == 0.0
        assert np.all(np.diff(a) >= 0)
        different = arrival_times(
            LoadGenConfig(rate=100.0, num_requests=50, arrival="poisson", seed=4)
        )
        assert not np.array_equal(a, different)

    @pytest.mark.parametrize(
        "bad",
        [dict(rate=0.0), dict(num_requests=0), dict(arrival="bursty")],
    )
    def test_config_validation(self, bad):
        with pytest.raises(ValueError):
            LoadGenConfig(**bad)


class TestRunLoadgen:
    def test_accounts_for_every_request(self, serve_pipeline, serve_events):
        engine = overload_engine(serve_pipeline)
        report = run_loadgen(
            engine,
            serve_events,
            LoadGenConfig(rate=200.0, num_requests=40, arrival="poisson", seed=1),
        )
        assert report.offered == 40
        assert report.completed + report.shed == 40
        assert report.completed == engine.stats.completed
        assert report.batches > 0
        assert report.duration_s > 0

    def test_overload_sheds(self, serve_pipeline, serve_events):
        report = run_loadgen(
            overload_engine(serve_pipeline),
            serve_events,
            LoadGenConfig(rate=500.0, num_requests=60, arrival="poisson", seed=1),
        )
        assert report.shed > 0
        assert report.completed > 0

    def test_gentle_load_serves_everything(self, serve_pipeline, serve_events):
        report = run_loadgen(
            overload_engine(serve_pipeline, sim_service_time_s=0.001),
            serve_events,
            LoadGenConfig(rate=10.0, num_requests=10),
        )
        assert report.shed == 0
        assert report.completed == 10
        assert report.degraded == 0

    def test_tight_budget_degrades(self, serve_pipeline, serve_events):
        report = run_loadgen(
            overload_engine(
                serve_pipeline,
                latency_budget_ms=10.0,
                max_queue_events=64,
                sim_service_time_s=0.05,
            ),
            serve_events,
            LoadGenConfig(rate=200.0, num_requests=40, arrival="poisson", seed=1),
        )
        assert report.degraded > 0

    def test_replays_hit_cache(self, serve_pipeline, serve_events):
        report = run_loadgen(
            overload_engine(serve_pipeline, sim_service_time_s=0.001),
            serve_events[:2],
            LoadGenConfig(rate=10.0, num_requests=8),
        )
        assert report.cache_hits >= 6  # 8 requests over 2 distinct events

    def test_fixed_service_time_is_deterministic(self, serve_pipeline, serve_events):
        cfg = LoadGenConfig(rate=300.0, num_requests=50, arrival="poisson", seed=7)
        first = run_loadgen(overload_engine(serve_pipeline), serve_events, cfg)
        second = run_loadgen(overload_engine(serve_pipeline), serve_events, cfg)
        assert first.lines() == second.lines()
        assert first.shed == second.shed
        assert first.latency_p99_ms == second.latency_p99_ms

    def test_rejects_threaded_engine(self, serve_pipeline, serve_events):
        engine = InferenceEngine(
            serve_pipeline, ServeConfig(workers=1), clock=None
        )
        try:
            with pytest.raises(ValueError, match="workers"):
                run_loadgen(engine, serve_events, LoadGenConfig())
        finally:
            engine.close()

    def test_rejects_empty_events(self, serve_pipeline):
        with pytest.raises(ValueError, match="events"):
            run_loadgen(overload_engine(serve_pipeline), [], LoadGenConfig())

    def test_report_lines_render(self, serve_pipeline, serve_events):
        report = run_loadgen(
            overload_engine(serve_pipeline),
            serve_events,
            LoadGenConfig(rate=100.0, num_requests=12),
        )
        text = "\n".join(report.lines())
        assert "offered" in text and "latency" in text and "shed" in text
