"""Stage cache: content fingerprinting and bounded LRU behaviour."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.serve import StageCache, event_fingerprint
from repro.serve.cache import CachedStages


def _entry() -> CachedStages:
    return CachedStages(
        graph=None, filtered=None, filter_keep=np.zeros(0, bool), filter_scores=np.zeros(0)
    )


class TestEventFingerprint:
    def test_same_hits_same_fingerprint(self, serve_events):
        event = serve_events[0]
        assert event_fingerprint(event) == event_fingerprint(event)

    def test_different_events_differ(self, serve_events):
        prints = {event_fingerprint(e) for e in serve_events}
        assert len(prints) == len(serve_events)

    def test_event_id_is_ignored(self, serve_events):
        event = serve_events[0]
        renamed = dataclasses.replace(event, event_id=999)
        assert event_fingerprint(renamed) == event_fingerprint(event)

    def test_moving_one_hit_changes_fingerprint(self, serve_events):
        event = serve_events[0]
        positions = event.positions.copy()
        positions[0, 0] += 1e-6
        moved = dataclasses.replace(event, positions=positions)
        assert event_fingerprint(moved) != event_fingerprint(event)


class TestStageCache:
    def test_get_put_round_trip(self):
        cache = StageCache(capacity=4)
        entry = _entry()
        assert cache.get("k") is None
        cache.put("k", entry)
        assert cache.get("k") is entry
        assert cache.stats() == (1, 1)

    def test_lru_eviction_order(self):
        cache = StageCache(capacity=2)
        a, b, c = _entry(), _entry(), _entry()
        cache.put("a", a)
        cache.put("b", b)
        cache.get("a")  # refresh: b is now least recently used
        cache.put("c", c)
        assert cache.get("b") is None
        assert cache.get("a") is a
        assert cache.get("c") is c
        assert len(cache) == 2

    def test_put_refreshes_existing_key(self):
        cache = StageCache(capacity=2)
        first, second = _entry(), _entry()
        cache.put("k", first)
        cache.put("k", second)
        assert len(cache) == 1
        assert cache.get("k") is second

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            StageCache(capacity=0)
