"""Batched serving is bit-identical to the sequential pipeline.

The serving engine's contract (mirroring the bulk-sampler parity suite
in ``tests/sampling/test_parity.py``): whatever micro-batches form,
every request's tracks are exactly — not approximately — what a looped
``Pipeline.reconstruct`` would have produced for that event alone.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import InferenceEngine, ServeConfig

from .conftest import track_builder


def _assert_tracks_equal(expected, actual, context=""):
    assert len(expected) == len(actual), context
    for a, b in zip(expected, actual):
        assert np.array_equal(a, b), context


class TestBatchedSequentialParity:
    def test_cc_builder_bit_identical(self, serve_pipeline, serve_events):
        sequential = [serve_pipeline.reconstruct(e) for e in serve_events]
        with InferenceEngine(
            serve_pipeline, ServeConfig(max_batch_events=len(serve_events))
        ) as engine:
            requests = engine.process(serve_events)
        assert all(r.status == "done" for r in requests)
        for event, seq, req in zip(serve_events, sequential, requests):
            _assert_tracks_equal(seq, req.tracks, f"event {event.event_id}")

    def test_walkthrough_builder_bit_identical(self, serve_pipeline, serve_events):
        with track_builder(serve_pipeline, "walkthrough"):
            sequential = [serve_pipeline.reconstruct(e) for e in serve_events]
            with InferenceEngine(
                serve_pipeline, ServeConfig(max_batch_events=len(serve_events))
            ) as engine:
                requests = engine.process(serve_events)
            for event, seq, req in zip(serve_events, sequential, requests):
                _assert_tracks_equal(seq, req.tracks, f"event {event.event_id}")

    @pytest.mark.parametrize("batch_size", [1, 2, 5])
    def test_results_independent_of_batch_composition(
        self, serve_pipeline, serve_events, batch_size
    ):
        """Row-stable inference kernels make batching invisible to results:
        the same events produce the same bits at every batch size."""
        sequential = [serve_pipeline.reconstruct(e) for e in serve_events]
        with InferenceEngine(
            serve_pipeline,
            ServeConfig(max_batch_events=batch_size, cache_capacity=0),
        ) as engine:
            requests = engine.process(serve_events)
        for seq, req in zip(sequential, requests):
            _assert_tracks_equal(seq, req.tracks, f"batch_size={batch_size}")

    def test_cache_hits_bit_identical_to_fresh_compute(
        self, serve_pipeline, serve_events
    ):
        with InferenceEngine(serve_pipeline, ServeConfig()) as engine:
            first = engine.process(serve_events)
            replay = engine.process(serve_events)
        assert all(r.cache_hit for r in replay)
        assert not any(r.cache_hit for r in first)
        for a, b in zip(first, replay):
            _assert_tracks_equal(a.tracks, b.tracks)

    def test_threaded_engine_bit_identical(self, serve_pipeline, serve_events):
        sequential = [serve_pipeline.reconstruct(e) for e in serve_events]
        with InferenceEngine(
            serve_pipeline,
            ServeConfig(max_batch_events=2, max_wait_ms=2.0, workers=2),
        ) as engine:
            requests = engine.process(serve_events)
        for seq, req in zip(sequential, requests):
            _assert_tracks_equal(seq, req.tracks)
