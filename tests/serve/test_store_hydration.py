"""Replayed events hydrate from the warm event store, results unchanged."""

import numpy as np
import pytest

from repro.graph import random_graph
from repro.serve import InferenceEngine, ServeConfig
from repro.store import EventStore, ingest_construction, ingest_graphs


@pytest.fixture()
def construction_store(serve_pipeline, serve_events, tmp_path):
    d = str(tmp_path / "s")
    report = ingest_construction(serve_pipeline, serve_events, d)
    assert report.ingested == len(serve_events)
    store = EventStore(d, budget_bytes=4 << 20)
    yield store
    store.close()


def _config(**overrides):
    base = dict(workers=0, max_batch_events=8, cache_capacity=0)
    base.update(overrides)
    return ServeConfig(**base)


class TestHydration:
    def test_known_events_hydrate_from_store(
        self, serve_pipeline, serve_events, construction_store
    ):
        engine = InferenceEngine(
            serve_pipeline, _config(), store=construction_store
        )
        with engine:
            requests = engine.process(serve_events)
        assert all(r.status == "done" for r in requests)
        assert all(r.store_hit for r in requests)
        assert engine.stats.store_hydrated == len(serve_events)
        assert construction_store.stats.misses > 0

    def test_hydrated_tracks_match_cold_path(
        self, serve_pipeline, serve_events, construction_store
    ):
        with InferenceEngine(serve_pipeline, _config()) as cold:
            cold_reqs = cold.process(serve_events)
        engine = InferenceEngine(
            serve_pipeline, _config(), store=construction_store
        )
        with engine:
            warm_reqs = engine.process(serve_events)
        for cold_r, warm_r in zip(cold_reqs, warm_reqs):
            assert len(cold_r.tracks) == len(warm_r.tracks)
            for a, b in zip(cold_r.tracks, warm_r.tracks):
                assert np.array_equal(a, b)

    def test_unknown_events_fall_through_to_construction(
        self, serve_pipeline, serve_events, geometry, construction_store
    ):
        from repro.detector import EventSimulator, ParticleGun

        sim = EventSimulator(
            geometry, gun=ParticleGun(), particles_per_event=15, noise_fraction=0.05
        )
        fresh = sim.generate(np.random.default_rng(4242), event_id=999)
        engine = InferenceEngine(
            serve_pipeline, _config(), store=construction_store
        )
        with engine:
            requests = engine.process([serve_events[0], fresh])
        assert all(r.status == "done" for r in requests)
        assert requests[0].store_hit
        assert not requests[1].store_hit
        assert engine.stats.store_hydrated == 1

    def test_stage_cache_outranks_store(
        self, serve_pipeline, serve_events, construction_store
    ):
        engine = InferenceEngine(
            serve_pipeline, _config(cache_capacity=64), store=construction_store
        )
        with engine:
            engine.process(serve_events)
            hydrated_once = engine.stats.store_hydrated
            engine.process(serve_events)  # replay: stage cache, not store
        assert engine.stats.store_hydrated == hydrated_once
        assert engine.stats.cache_hits >= len(serve_events)


class TestStoreMetaGuard:
    def test_builder_graph_store_rejected(self, serve_pipeline, tmp_path):
        d = str(tmp_path / "builder")
        g = random_graph(50, 200, rng=np.random.default_rng(0), true_fraction=0.3)
        ingest_graphs([g], d)
        with EventStore(d) as store:
            with pytest.raises(ValueError, match="construction"):
                InferenceEngine(serve_pipeline, _config(), store=store)
