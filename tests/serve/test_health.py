"""The InferenceEngine.health() field contract.

The /health endpoint (``--metrics-port``) serves this document verbatim
and keys HTTP 200 vs 503 off ``ready``, so the fields and their
semantics across breaker states and drain are a wire contract:

* ``live``     — engine not closed (can still accept submissions);
* ``ready``    — live AND full-quality serving available (breaker not
  open): the load-balancer readiness signal;
* ``breaker``  — "closed" | "open" | "half_open", or None when the
  breaker is disabled;
* ``queue_depth`` / ``in_flight`` — instantaneous load gauges.
"""

import pytest

from repro.faults import FaultPlan, SimClock, StageFault
from repro.serve import InferenceEngine, ServeConfig

pytestmark = pytest.mark.guard

REQUIRED_FIELDS = {"live", "ready", "breaker", "queue_depth", "in_flight"}


def _fail_twice_engine(serve_pipeline, clock, cooldown_ms):
    """Engine whose first two GNN batches fail (trips a threshold-2 breaker)."""
    plan = FaultPlan(stage_faults=[StageFault(stage="gnn", at_call=0, times=2)])
    return InferenceEngine(
        serve_pipeline,
        ServeConfig(
            max_batch_events=1,
            cache_capacity=0,
            breaker_threshold=2,
            breaker_cooldown_ms=cooldown_ms,
            breaker_probes=1,
        ),
        clock=clock,
        fault_plan=plan,
    )


class TestHealthContract:
    def test_fields_present_and_ready_when_fresh(self, serve_pipeline):
        engine = InferenceEngine(serve_pipeline, ServeConfig(breaker_threshold=2))
        try:
            health = engine.health()
            assert REQUIRED_FIELDS <= set(health)
            assert health["live"] is True
            assert health["ready"] is True
            assert health["breaker"] == "closed"
            assert health["queue_depth"] == 0
            assert health["in_flight"] == 0
        finally:
            engine.close()

    def test_breaker_disabled_reports_none_and_ready(self, serve_pipeline):
        engine = InferenceEngine(serve_pipeline, ServeConfig())
        try:
            health = engine.health()
            assert health["breaker"] is None
            assert health["ready"] is True
        finally:
            engine.close()

    def test_open_breaker_flips_ready_but_stays_live(
        self, serve_pipeline, serve_events
    ):
        clock = SimClock()
        engine = _fail_twice_engine(serve_pipeline, clock, cooldown_ms=1e6)
        try:
            for _ in range(2):
                engine.submit(serve_events[0])
                engine.flush()
            health = engine.health()
            assert health["breaker"] == "open"
            assert health["live"] is True
            assert health["ready"] is False  # degraded-only serving
        finally:
            engine.close()

    def test_half_open_probe_window_reports_ready(
        self, serve_pipeline, serve_events
    ):
        clock = SimClock()
        engine = _fail_twice_engine(serve_pipeline, clock, cooldown_ms=100.0)
        try:
            for _ in range(2):
                engine.submit(serve_events[0])
                engine.flush()
            assert engine.health()["breaker"] == "open"
            clock.sleep(0.2)  # cooldown elapses: open -> half_open probe
            health = engine.health()
            assert health["breaker"] == "half_open"
            assert health["ready"] is True  # a probe may be attempted
        finally:
            engine.close()

    def test_drain_flips_live_and_ready(self, serve_pipeline, serve_events):
        engine = InferenceEngine(
            serve_pipeline, ServeConfig(breaker_threshold=2)
        )
        request = engine.submit(serve_events[0])
        engine.close()  # graceful drain finishes queued work first
        assert request.status == "done"
        health = engine.health()
        assert health["live"] is False
        assert health["ready"] is False
        assert health["in_flight"] == 0

    def test_queue_depth_counts_pending_requests(
        self, serve_pipeline, serve_events
    ):
        engine = InferenceEngine(
            serve_pipeline, ServeConfig(max_batch_events=16, max_queue_events=16)
        )
        try:
            for event in serve_events[:3]:
                engine.submit(event)
            health = engine.health()
            assert health["queue_depth"] == 3
            engine.flush()
            assert engine.health()["queue_depth"] == 0
        finally:
            engine.close()
