"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detector import (
    DetectorGeometry,
    EventSimulator,
    ParticleGun,
    dataset_config,
    make_dataset,
)
from repro.graph import disjoint_chains, random_graph


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def geometry():
    return DetectorGeometry.barrel_only()


@pytest.fixture(scope="session")
def tiny_dataset():
    """Small labelled dataset (generated once per session)."""
    return make_dataset(dataset_config("tiny"))


@pytest.fixture(scope="session")
def small_events(geometry):
    """A handful of simulated events for pipeline tests."""
    sim = EventSimulator(
        geometry,
        gun=ParticleGun(),
        particles_per_event=15,
        noise_fraction=0.05,
    )
    return [sim.generate(np.random.default_rng(500 + i), event_id=i) for i in range(6)]


@pytest.fixture
def medium_graph():
    """Random graph big enough for sampler tests."""
    return random_graph(400, 1600, rng=np.random.default_rng(7), true_fraction=0.3)


@pytest.fixture
def chains_graph():
    """Idealised event: 10 disjoint 8-hit tracks."""
    return disjoint_chains(10, 8, rng=np.random.default_rng(3))
