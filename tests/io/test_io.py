"""Serialization round-trips (property-based) and split helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import random_graph
from repro.io import load_graphs, save_graphs, split_graphs


class TestSerialization:
    @given(st.integers(0, 4000), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_exact(self, seed, count):
        import tempfile, os

        rng = np.random.default_rng(seed)
        graphs = [
            random_graph(
                int(rng.integers(5, 40)), int(rng.integers(10, 80)), rng=rng, event_id=i
            )
            for i in range(count)
        ]
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "graphs.npz")
            save_graphs(graphs, path)
            loaded = load_graphs(path)
        assert len(loaded) == len(graphs)
        for g, l in zip(graphs, loaded):
            assert np.array_equal(g.edge_index, l.edge_index)
            assert np.array_equal(g.x, l.x)
            assert np.array_equal(g.y, l.y)
            assert np.array_equal(g.edge_labels, l.edge_labels)
            assert g.event_id == l.event_id
            assert g.x.dtype == l.x.dtype
            assert g.edge_index.dtype == l.edge_index.dtype

    def test_optional_fields_preserved_as_none(self, tmp_path):
        g = random_graph(10, 20, rng=np.random.default_rng(0))
        g.edge_labels = None
        save_graphs([g], str(tmp_path / "g.npz"))
        loaded = load_graphs(str(tmp_path / "g.npz"))[0]
        assert loaded.edge_labels is None

    def test_particle_ids_preserved(self, tmp_path):
        g = random_graph(10, 20, rng=np.random.default_rng(0))
        g.particle_ids = np.arange(10)
        save_graphs([g], str(tmp_path / "g.npz"))
        loaded = load_graphs(str(tmp_path / "g.npz"))[0]
        assert np.array_equal(loaded.particle_ids, np.arange(10))

    def test_empty_list(self, tmp_path):
        save_graphs([], str(tmp_path / "empty.npz"))
        assert load_graphs(str(tmp_path / "empty.npz")) == []

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "a" / "b" / "g.npz")
        save_graphs([random_graph(5, 8, rng=np.random.default_rng(0))], path)
        assert len(load_graphs(path)) == 1


class TestSplits:
    def make_graphs(self, n=10):
        rng = np.random.default_rng(0)
        return [random_graph(5, 8, rng=rng, event_id=i) for i in range(n)]

    def test_sizes(self):
        tr, va, te = split_graphs(self.make_graphs(), 8, 1, 1)
        assert (len(tr), len(va), len(te)) == (8, 1, 1)

    def test_80_10_10_paper_split(self):
        """The paper's 80/10/10 split applies cleanly to 100 graphs."""
        tr, va, te = split_graphs(self.make_graphs(100), 80, 10, 10)
        ids = [g.event_id for g in tr + va + te]
        assert len(set(ids)) == 100

    def test_no_shuffle_preserves_order(self):
        tr, _, _ = split_graphs(self.make_graphs(), 5, 2, 2)
        assert [g.event_id for g in tr] == [0, 1, 2, 3, 4]

    def test_shuffle_with_rng(self):
        graphs = self.make_graphs(20)
        tr1, _, _ = split_graphs(graphs, 10, 5, 5, rng=np.random.default_rng(1))
        tr2, _, _ = split_graphs(graphs, 10, 5, 5, rng=np.random.default_rng(1))
        assert [g.event_id for g in tr1] == [g.event_id for g in tr2]
        tr3, _, _ = split_graphs(graphs, 10, 5, 5, rng=np.random.default_rng(2))
        assert [g.event_id for g in tr1] != [g.event_id for g in tr3]

    def test_oversized_request_rejected(self):
        with pytest.raises(ValueError):
            split_graphs(self.make_graphs(5), 4, 1, 1)
