"""TrackML-format CSV export / import."""

import csv
import os

import numpy as np
import pytest

from repro.detector import DetectorGeometry, EventSimulator
from repro.io import export_trackml, import_trackml, iter_trackml_hits


@pytest.fixture(scope="module")
def event():
    sim = EventSimulator(
        DetectorGeometry.barrel_only(), particles_per_event=12, noise_fraction=0.1
    )
    return sim.generate(np.random.default_rng(0), event_id=42)


class TestExport:
    def test_three_files_written(self, event, tmp_path):
        paths = export_trackml(event, str(tmp_path))
        assert set(paths) == {"hits", "truth", "particles"}
        for p in paths.values():
            assert os.path.exists(p)

    def test_default_prefix_uses_event_id(self, event, tmp_path):
        paths = export_trackml(event, str(tmp_path))
        assert "event000000042" in paths["hits"]

    def test_hits_schema(self, event, tmp_path):
        paths = export_trackml(event, str(tmp_path))
        with open(paths["hits"]) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == event.num_hits
        assert set(rows[0]) == {"hit_id", "x", "y", "z", "volume_id", "layer_id", "module_id"}
        assert rows[0]["hit_id"] == "1"  # TrackML ids are 1-based

    def test_truth_links_hits_to_particles(self, event, tmp_path):
        paths = export_trackml(event, str(tmp_path))
        with open(paths["truth"]) as fh:
            rows = list(csv.DictReader(fh))
        pids = np.array([int(r["particle_id"]) for r in rows])
        assert np.array_equal(pids, event.particle_ids)

    def test_particles_nhits_matches(self, event, tmp_path):
        paths = export_trackml(event, str(tmp_path))
        with open(paths["particles"]) as fh:
            rows = {int(r["particle_id"]): r for r in csv.DictReader(fh)}
        counts = np.bincount(event.particle_ids[event.particle_ids > 0])
        for pid, row in rows.items():
            expected = int(counts[pid]) if pid < len(counts) else 0
            assert int(row["nhits"]) == expected


class TestRoundTrip:
    def test_positions_and_ids_preserved(self, event, tmp_path):
        export_trackml(event, str(tmp_path))
        back = import_trackml(str(tmp_path), "event000000042", event_id=42)
        assert back.num_hits == event.num_hits
        assert np.allclose(back.positions, event.positions, rtol=1e-5)
        assert np.array_equal(back.particle_ids, event.particle_ids)
        assert np.array_equal(back.layer_ids, event.layer_ids)

    def test_particle_kinematics_preserved(self, event, tmp_path):
        export_trackml(event, str(tmp_path))
        back = import_trackml(str(tmp_path), "event000000042")
        orig = {p.particle_id: p for p in event.particles}
        for p in back.particles:
            o = orig[p.particle_id]
            assert p.pt == pytest.approx(o.pt, rel=1e-4)
            assert p.eta == pytest.approx(o.eta, abs=1e-4)
            assert p.charge == o.charge

    def test_true_segments_equivalent(self, event, tmp_path):
        """hit_order is reconstructed from vertex distance; for barrel
        tracks this reproduces the original segment set."""
        export_trackml(event, str(tmp_path))
        back = import_trackml(str(tmp_path), "event000000042")
        orig = {tuple(sorted(p)) for p in event.true_segments().T.tolist()}
        new = {tuple(sorted(p)) for p in back.true_segments().T.tolist()}
        # allow a small discrepancy from ambiguous orderings of very close hits
        assert len(orig ^ new) <= 0.05 * max(len(orig), 1)

    def test_noise_hits_stay_noise(self, event, tmp_path):
        export_trackml(event, str(tmp_path))
        back = import_trackml(str(tmp_path), "event000000042")
        assert np.array_equal(back.hit_order == -1, event.particle_ids == 0)


class TestGzip:
    def test_compressed_export_writes_gz(self, event, tmp_path):
        paths = export_trackml(event, str(tmp_path), compress=True)
        for p in paths.values():
            assert p.endswith(".csv.gz")
            assert os.path.exists(p)

    def test_gzipped_roundtrip_matches_plain(self, event, tmp_path):
        plain_dir, gz_dir = tmp_path / "plain", tmp_path / "gz"
        export_trackml(event, str(plain_dir))
        export_trackml(event, str(gz_dir), compress=True)
        a = import_trackml(str(plain_dir), "event000000042", event_id=42)
        b = import_trackml(str(gz_dir), "event000000042", event_id=42)
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.particle_ids, b.particle_ids)
        assert np.array_equal(a.layer_ids, b.layer_ids)

    def test_plain_file_wins_when_both_exist(self, event, tmp_path):
        export_trackml(event, str(tmp_path), compress=True)
        # a different event under the same prefix, uncompressed
        other = EventSimulator(
            DetectorGeometry.barrel_only(), particles_per_event=5
        ).generate(np.random.default_rng(9), event_id=42)
        export_trackml(other, str(tmp_path))
        back = import_trackml(str(tmp_path), "event000000042", event_id=42)
        assert back.num_hits == other.num_hits

    def test_missing_file_names_both_candidates(self, tmp_path):
        with pytest.raises(FileNotFoundError, match=r"\.gz"):
            import_trackml(str(tmp_path), "event-nope")


class TestChunkedHits:
    def test_chunks_bounded_and_complete(self, event, tmp_path):
        export_trackml(event, str(tmp_path))
        chunks = list(
            iter_trackml_hits(str(tmp_path), "event000000042", chunk_rows=16)
        )
        assert len(chunks) > 1
        assert all(pos.shape[0] <= 16 for pos, _ in chunks)
        positions = np.concatenate([pos for pos, _ in chunks])
        layers = np.concatenate([lay for _, lay in chunks])
        assert np.allclose(positions, event.positions, rtol=1e-5)
        assert np.array_equal(layers, event.layer_ids)

    def test_chunk_size_invariant(self, event, tmp_path):
        export_trackml(event, str(tmp_path))
        whole = import_trackml(str(tmp_path), "event000000042", event_id=42)
        tiny = import_trackml(
            str(tmp_path), "event000000042", event_id=42, chunk_rows=7
        )
        assert np.array_equal(whole.positions, tiny.positions)
        assert np.array_equal(whole.particle_ids, tiny.particle_ids)
        assert np.array_equal(whole.hit_order, tiny.hit_order)

    def test_bad_chunk_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            list(iter_trackml_hits(str(tmp_path), "x", chunk_rows=0))
