"""TrackML-format CSV export / import."""

import csv
import os

import numpy as np
import pytest

from repro.detector import DetectorGeometry, EventSimulator
from repro.io import export_trackml, import_trackml


@pytest.fixture(scope="module")
def event():
    sim = EventSimulator(
        DetectorGeometry.barrel_only(), particles_per_event=12, noise_fraction=0.1
    )
    return sim.generate(np.random.default_rng(0), event_id=42)


class TestExport:
    def test_three_files_written(self, event, tmp_path):
        paths = export_trackml(event, str(tmp_path))
        assert set(paths) == {"hits", "truth", "particles"}
        for p in paths.values():
            assert os.path.exists(p)

    def test_default_prefix_uses_event_id(self, event, tmp_path):
        paths = export_trackml(event, str(tmp_path))
        assert "event000000042" in paths["hits"]

    def test_hits_schema(self, event, tmp_path):
        paths = export_trackml(event, str(tmp_path))
        with open(paths["hits"]) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == event.num_hits
        assert set(rows[0]) == {"hit_id", "x", "y", "z", "volume_id", "layer_id", "module_id"}
        assert rows[0]["hit_id"] == "1"  # TrackML ids are 1-based

    def test_truth_links_hits_to_particles(self, event, tmp_path):
        paths = export_trackml(event, str(tmp_path))
        with open(paths["truth"]) as fh:
            rows = list(csv.DictReader(fh))
        pids = np.array([int(r["particle_id"]) for r in rows])
        assert np.array_equal(pids, event.particle_ids)

    def test_particles_nhits_matches(self, event, tmp_path):
        paths = export_trackml(event, str(tmp_path))
        with open(paths["particles"]) as fh:
            rows = {int(r["particle_id"]): r for r in csv.DictReader(fh)}
        counts = np.bincount(event.particle_ids[event.particle_ids > 0])
        for pid, row in rows.items():
            expected = int(counts[pid]) if pid < len(counts) else 0
            assert int(row["nhits"]) == expected


class TestRoundTrip:
    def test_positions_and_ids_preserved(self, event, tmp_path):
        export_trackml(event, str(tmp_path))
        back = import_trackml(str(tmp_path), "event000000042", event_id=42)
        assert back.num_hits == event.num_hits
        assert np.allclose(back.positions, event.positions, rtol=1e-5)
        assert np.array_equal(back.particle_ids, event.particle_ids)
        assert np.array_equal(back.layer_ids, event.layer_ids)

    def test_particle_kinematics_preserved(self, event, tmp_path):
        export_trackml(event, str(tmp_path))
        back = import_trackml(str(tmp_path), "event000000042")
        orig = {p.particle_id: p for p in event.particles}
        for p in back.particles:
            o = orig[p.particle_id]
            assert p.pt == pytest.approx(o.pt, rel=1e-4)
            assert p.eta == pytest.approx(o.eta, abs=1e-4)
            assert p.charge == o.charge

    def test_true_segments_equivalent(self, event, tmp_path):
        """hit_order is reconstructed from vertex distance; for barrel
        tracks this reproduces the original segment set."""
        export_trackml(event, str(tmp_path))
        back = import_trackml(str(tmp_path), "event000000042")
        orig = {tuple(sorted(p)) for p in event.true_segments().T.tolist()}
        new = {tuple(sorted(p)) for p in back.true_segments().T.tolist()}
        # allow a small discrepancy from ambiguous orderings of very close hits
        assert len(orig ^ new) <= 0.05 * max(len(orig), 1)

    def test_noise_hits_stay_noise(self, event, tmp_path):
        export_trackml(event, str(tmp_path))
        back = import_trackml(str(tmp_path), "event000000042")
        assert np.array_equal(back.hit_order == -1, event.particle_ids == 0)
