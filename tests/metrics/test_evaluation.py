"""Batch tracking evaluation over events."""

import numpy as np
import pytest

from repro.metrics import evaluate_tracking
from repro.pipeline import ExaTrkXPipeline, GNNTrainConfig, PipelineConfig


@pytest.fixture(scope="module")
def fitted(geometry, small_events):
    cfg = PipelineConfig(
        embedding_dim=6,
        embedding_epochs=12,
        filter_epochs=12,
        frnn_radius=0.3,
        gnn=GNNTrainConfig(
            mode="bulk", epochs=3, batch_size=32, hidden=8,
            num_layers=2, mlp_layers=2, depth=2, fanout=3, bulk_k=2,
        ),
    )
    pipe = ExaTrkXPipeline(cfg, geometry)
    pipe.fit(small_events[:4], small_events[4:5])
    return pipe


class TestEvaluateTracking:
    def test_aggregates_over_events(self, fitted, small_events):
        ev = evaluate_tracking(fitted, small_events[4:6])
        assert len(ev.per_event) == 2
        assert 0.0 <= ev.efficiency <= 1.0
        assert 0.0 <= ev.fake_rate <= 1.0

    def test_pooled_efficiency_matches_counts(self, fitted, small_events):
        ev = evaluate_tracking(fitted, small_events[4:6])
        matched = sum(s.num_matched for s in ev.per_event)
        total = sum(s.num_reconstructable for s in ev.per_event)
        assert ev.efficiency == pytest.approx(matched / total)

    def test_pt_efficiency_counts_all_reconstructable(self, fitted, small_events):
        ev = evaluate_tracking(fitted, small_events[4:6], pt_edges=[0.0, 100.0])
        total = sum(s.num_reconstructable for s in ev.per_event)
        assert int(ev.pt_efficiency.total.sum()) == total

    def test_pt_efficiency_consistent_with_aggregate(self, fitted, small_events):
        ev = evaluate_tracking(fitted, small_events[4:6], pt_edges=[0.0, 100.0])
        assert ev.pt_efficiency.passed.sum() / ev.pt_efficiency.total.sum() == pytest.approx(
            ev.efficiency
        )

    def test_pt_resolution_finite_when_tracks_found(self, fitted, small_events):
        ev = evaluate_tracking(fitted, small_events[4:6])
        if ev.pt_residuals.size:
            assert np.isfinite(ev.pt_resolution)

    def test_render_lines(self, fitted, small_events):
        lines = evaluate_tracking(fitted, small_events[4:5]).render()
        assert any("efficiency=" in l for l in lines)

    def test_disable_pt_binning(self, fitted, small_events):
        ev = evaluate_tracking(fitted, small_events[4:5], pt_edges=None)
        assert ev.pt_efficiency is None
