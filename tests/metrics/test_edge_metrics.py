"""Edge precision/recall metrics (including the pooled Figure-4 definition)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    ConfusionCounts,
    confusion,
    f1_score,
    pooled_precision_recall,
    precision_recall,
    precision_recall_curve,
)


class TestConfusion:
    def test_counts(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([1, 0, 1, 0])
        c = confusion(scores, labels)
        assert (c.tp, c.fp, c.fn, c.tn) == (1, 1, 1, 1)

    def test_precision_recall_values(self):
        scores = np.array([0.9, 0.9, 0.9, 0.1])
        labels = np.array([1, 1, 0, 1])
        p, r = precision_recall(scores, labels)
        assert p == pytest.approx(2 / 3)
        assert r == pytest.approx(2 / 3)

    def test_f1(self):
        c = ConfusionCounts(tp=2, fp=1, fn=1, tn=0)
        assert c.f1 == pytest.approx(2 * (2 / 3) * (2 / 3) / (4 / 3))

    def test_degenerate_no_positives(self):
        c = confusion(np.array([0.1]), np.array([0]))
        assert c.precision == 0.0
        assert c.recall == 0.0
        assert c.f1 == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion(np.zeros(3), np.zeros(4))

    def test_accuracy(self):
        c = ConfusionCounts(tp=3, fp=1, fn=1, tn=5)
        assert c.accuracy == pytest.approx(0.8)

    def test_addition(self):
        a = ConfusionCounts(1, 2, 3, 4)
        b = ConfusionCounts(10, 20, 30, 40)
        s = a + b
        assert (s.tp, s.fp, s.fn, s.tn) == (11, 22, 33, 44)


class TestPooled:
    def test_pooling_equals_concatenation(self):
        """Micro-averaging over graphs == metrics on concatenated edges
        (the Figure-4 definition)."""
        rng = np.random.default_rng(0)
        graphs = []
        for _ in range(5):
            m = rng.integers(10, 50)
            graphs.append((rng.random(m), (rng.random(m) > 0.6).astype(int)))
        pooled = pooled_precision_recall(graphs)
        all_scores = np.concatenate([s for s, _ in graphs])
        all_labels = np.concatenate([l for _, l in graphs])
        direct = precision_recall(all_scores, all_labels)
        assert pooled == pytest.approx(direct)

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_perfect_classifier_scores_one(self, seed):
        rng = np.random.default_rng(seed)
        labels = (rng.random(50) > 0.5).astype(int)
        if labels.sum() == 0:
            labels[0] = 1
        scores = labels.astype(float)
        p, r = precision_recall(scores, labels)
        assert p == 1.0 and r == 1.0


class TestCurve:
    def test_recall_monotone_nonincreasing(self):
        rng = np.random.default_rng(1)
        scores = rng.random(200)
        labels = (rng.random(200) > 0.5).astype(int)
        _, ps, rs = precision_recall_curve(scores, labels, num_thresholds=20)
        assert np.all(np.diff(rs) <= 1e-12)

    def test_threshold_zero_recalls_everything(self):
        scores = np.array([0.4, 0.6])
        labels = np.array([1, 1])
        p, r = precision_recall(scores, labels, threshold=0.0)
        assert r == 1.0

    def test_f1_matches_counts(self):
        scores = np.array([0.9, 0.4, 0.8])
        labels = np.array([1, 1, 0])
        assert f1_score(scores, labels) == pytest.approx(confusion(scores, labels).f1)
