"""Track matching (double-majority) and training-history records."""

import numpy as np
import pytest

from repro.metrics import EpochRecord, TrainingHistory, match_tracks


class TestMatchTracks:
    def test_perfect_reconstruction(self):
        # two particles with 4 hits each
        pids = np.array([1, 1, 1, 1, 2, 2, 2, 2])
        candidates = [np.array([0, 1, 2, 3]), np.array([4, 5, 6, 7])]
        s = match_tracks(candidates, pids)
        assert s.efficiency == 1.0
        assert s.fake_rate == 0.0
        assert s.num_matched == 2

    def test_candidate_majority_required(self):
        # candidate is half particle 1, half particle 2: no majority
        pids = np.array([1, 1, 1, 1, 2, 2, 2, 2])
        candidates = [np.array([0, 1, 4, 5])]
        s = match_tracks(candidates, pids)
        assert s.num_matched == 0
        assert s.num_fakes == 1

    def test_particle_majority_required(self):
        # candidate holds only 2 of particle 1's 6 hits: particle majority fails
        pids = np.array([1, 1, 1, 1, 1, 1, 0, 0])
        candidates = [np.array([0, 1, 6])]
        s = match_tracks(candidates, pids)
        assert s.num_matched == 0

    def test_duplicates_counted(self):
        pids = np.array([1, 1, 1, 1, 1, 1])
        candidates = [np.array([0, 1, 2, 3]), np.array([0, 1, 2, 4])]
        s = match_tracks(candidates, pids)
        assert s.num_matched == 1
        assert s.num_duplicates == 1

    def test_noise_only_candidate_is_fake(self):
        pids = np.array([0, 0, 0, 1, 1, 1])
        s = match_tracks([np.array([0, 1, 2])], pids)
        assert s.num_fakes == 1

    def test_short_candidates_ignored(self):
        pids = np.array([1, 1, 1])
        s = match_tracks([np.array([0, 1])], pids, min_hits=3)
        assert s.num_candidates == 0

    def test_unreconstructable_particles_excluded(self):
        # particle 2 has only 2 hits: not reconstructable
        pids = np.array([1, 1, 1, 2, 2])
        s = match_tracks([np.array([0, 1, 2])], pids)
        assert s.num_reconstructable == 1
        assert s.efficiency == 1.0

    def test_empty_everything(self):
        s = match_tracks([], np.zeros(0, dtype=np.int64))
        assert s.efficiency == 0.0
        assert s.fake_rate == 0.0


class TestHistory:
    def make(self):
        h = TrainingHistory(label="test")
        for e in range(3):
            h.append(
                EpochRecord(
                    epoch=e,
                    train_loss=1.0 - 0.2 * e,
                    val_precision=0.5 + 0.1 * e,
                    val_recall=0.6 + 0.1 * e,
                    epoch_seconds=2.0,
                )
            )
        return h

    def test_final_and_len(self):
        h = self.make()
        assert len(h) == 3
        assert h.final.epoch == 2

    def test_best_by_metric(self):
        h = self.make()
        assert h.best("val_f1").epoch == 2

    def test_series(self):
        h = self.make()
        assert h.series("val_precision") == pytest.approx([0.5, 0.6, 0.7])

    def test_f1_property(self):
        r = EpochRecord(0, 0.1, 0.5, 0.5)
        assert r.val_f1 == pytest.approx(0.5)

    def test_empty_history_raises(self):
        h = TrainingHistory()
        with pytest.raises(ValueError):
            _ = h.final

    def test_summary_fields(self):
        s = self.make().summary()
        assert s["epochs"] == 3
        assert s["total_seconds"] == pytest.approx(6.0)
