"""ROC/AUC and binned-efficiency metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import binned_efficiency, roc_auc, roc_curve


class TestROC:
    def test_perfect_classifier_auc_one(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(scores, labels) == pytest.approx(1.0)

    def test_inverted_classifier_auc_zero(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(scores, labels) == pytest.approx(0.0)

    def test_random_scores_auc_half(self):
        rng = np.random.default_rng(0)
        labels = (rng.random(5000) > 0.5).astype(int)
        scores = rng.random(5000)
        assert abs(roc_auc(scores, labels) - 0.5) < 0.03

    def test_auc_equals_rank_statistic(self):
        """AUC == P(score_pos > score_neg) + 0.5 P(tie)."""
        rng = np.random.default_rng(1)
        labels = (rng.random(300) > 0.6).astype(int)
        scores = rng.normal(size=300) + labels  # informative
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        wins = (pos[:, None] > neg[None, :]).mean()
        ties = 0.5 * (pos[:, None] == neg[None, :]).mean()
        assert roc_auc(scores, labels) == pytest.approx(wins + ties, abs=1e-9)

    def test_curve_endpoints(self):
        rng = np.random.default_rng(2)
        labels = (rng.random(100) > 0.5).astype(int)
        fpr, tpr = roc_curve(rng.random(100), labels)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    @given(st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_curve_monotone(self, seed):
        rng = np.random.default_rng(seed)
        labels = (rng.random(80) > 0.5).astype(int)
        if labels.sum() in (0, 80):
            return
        fpr, tpr = roc_curve(rng.random(80), labels)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0.1, 0.9]), np.array([1, 1]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            roc_curve(np.zeros(3), np.zeros(4))


class TestBinnedEfficiency:
    def test_basic_binning(self):
        values = np.array([0.5, 1.5, 1.6, 2.5])
        passed = np.array([True, True, False, True])
        be = binned_efficiency(values, passed, edges=[0, 1, 2, 3])
        assert be.total.tolist() == [1, 2, 1]
        assert be.passed.tolist() == [1, 1, 1]
        assert be.efficiency[1] == pytest.approx(0.5)

    def test_out_of_range_dropped(self):
        be = binned_efficiency(
            np.array([-1.0, 0.5, 10.0]), np.array([True, True, True]), edges=[0, 1]
        )
        assert be.total.tolist() == [1]

    def test_empty_bin_is_nan(self):
        be = binned_efficiency(np.array([0.5]), np.array([True]), edges=[0, 1, 2])
        assert np.isnan(be.efficiency[1])

    def test_binomial_error_formula(self):
        be = binned_efficiency(
            np.full(100, 0.5), np.arange(100) < 80, edges=[0, 1]
        )
        assert be.binomial_error[0] == pytest.approx(np.sqrt(0.8 * 0.2 / 100))

    def test_render_rows(self):
        be = binned_efficiency(np.array([0.5, 1.5]), np.array([True, False]), [0, 1, 2])
        rows = be.render()
        assert len(rows) == 3  # header + 2 bins

    def test_validation(self):
        with pytest.raises(ValueError):
            binned_efficiency(np.zeros(2), np.zeros(3, dtype=bool), [0, 1])
        with pytest.raises(ValueError):
            binned_efficiency(np.zeros(2), np.zeros(2, dtype=bool), [1, 0])
