"""Prefetch pipeline: plan determinism, bit-identity, bounded queue.

The contract under test (docs/data_pipeline.md): batch contents served
by :class:`~repro.data.PrefetchLoader` are **bit-identical regardless of
worker count, queue depth, or scheduling**, because every step samples
from its own :class:`~numpy.random.SeedSequence` child spawned off one
epoch-level entropy draw.
"""

import numpy as np
import pytest

from repro.data import EpochPlan, PrefetchLoader, sample_step
from repro.graph import random_graph
from repro.obs import RunTelemetry, use_telemetry
from repro.sampling import BulkShadowSampler, ShadowSampler

BATCH = 16
K = 3


@pytest.fixture
def graphs():
    return [
        random_graph(120, 480, rng=np.random.default_rng(100 + i), true_fraction=0.3)
        for i in range(3)
    ]


def _plan(graphs, seed=0):
    return EpochPlan.build(graphs, BATCH, K, np.random.default_rng(seed))


def _assert_batches_equal(a, b):
    assert len(a) == len(b)
    for sa, sb in zip(a, b):
        assert np.array_equal(sa.node_parent, sb.node_parent)
        assert np.array_equal(sa.edge_parent, sb.edge_parent)
        assert np.array_equal(sa.graph.rows, sb.graph.rows)
        assert np.array_equal(sa.graph.cols, sb.graph.cols)
        assert np.array_equal(sa.graph.x, sb.graph.x)
        if sa.roots is not None:
            assert np.array_equal(sa.roots, sb.roots)


def _collect(loader, plan, ranks=(0,), start=0):
    """Run a full epoch; returns {step index: per-rank sampled batches}."""
    out = {}
    for step, sampled in loader.iter_epoch(plan, lambda: tuple(ranks), start=start):
        out[step.index] = sampled
    return out


def _assert_epochs_equal(a, b):
    assert set(a) == set(b)
    for idx in a:
        assert set(a[idx]) == set(b[idx])
        for grank in a[idx]:
            _assert_batches_equal(a[idx][grank], b[idx][grank])


class TestEpochPlan:
    def test_same_rng_state_same_plan(self, graphs):
        p1, p2 = _plan(graphs), _plan(graphs)
        assert len(p1) == len(p2) > 0
        for s1, s2 in zip(p1.steps, p2.steps):
            assert s1.index == s2.index
            assert s1.graph is s2.graph
            assert len(s1.batches) == len(s2.batches)
            for b1, b2 in zip(s1.batches, s2.batches):
                assert np.array_equal(b1, b2)
            # child seeds derive from the same entropy draw
            assert s1.seed.entropy == s2.seed.entropy
            assert s1.seed.spawn_key == s2.seed.spawn_key

    def test_different_seed_different_plan(self, graphs):
        p1, p2 = _plan(graphs, seed=0), _plan(graphs, seed=1)
        assert p1.steps[0].seed.entropy != p2.steps[0].seed.entropy

    def test_consumes_trainer_rng_once(self, graphs):
        """Two identical generators end in the same state after build."""
        r1, r2 = np.random.default_rng(5), np.random.default_rng(5)
        EpochPlan.build(graphs, BATCH, K, r1)
        EpochPlan.build(graphs, BATCH, K, r2)
        assert r1.bit_generator.state == r2.bit_generator.state

    def test_groups_cover_epoch(self, graphs):
        plan = _plan(graphs)
        per_graph = {}
        for step in plan.steps:
            per_graph.setdefault(id(step.graph), []).append(step)
        for steps in per_graph.values():
            seen = np.concatenate([b for s in steps for b in s.batches])
            assert len(seen) == len(set(seen.tolist()))


class TestSampleStepPurity:
    def test_repeated_calls_bit_identical(self, graphs):
        sampler = BulkShadowSampler(depth=2, fanout=3)
        step = _plan(graphs).steps[0]
        a = sample_step(sampler, step, (0, 1))
        b = sample_step(sampler, step, (0, 1))
        assert set(a) == {0, 1}
        for grank in a:
            _assert_batches_equal(a[grank], b[grank])

    def test_rank_shards_partition_batches(self, graphs):
        sampler = BulkShadowSampler(depth=2, fanout=3)
        step = _plan(graphs).steps[0]
        out = sample_step(sampler, step, (0, 1))
        for bi, batch in enumerate(step.batches):
            roots = np.concatenate(
                [out[g][bi].node_parent[out[g][bi].roots] for g in (0, 1)]
            )
            assert sorted(roots.tolist()) == sorted(batch.tolist())


class TestLoaderBitIdentity:
    @pytest.mark.parametrize("sampler_cls", [BulkShadowSampler, ShadowSampler])
    def test_workers_do_not_change_contents(self, graphs, sampler_cls):
        sampler = sampler_cls(depth=2, fanout=3)
        plan = _plan(graphs)
        sync = _collect(PrefetchLoader(sampler, workers=0), plan)
        for workers, depth in [(1, 1), (2, 2), (4, 3)]:
            pre = _collect(PrefetchLoader(sampler, workers=workers, depth=depth), plan)
            _assert_epochs_equal(sync, pre)

    def test_multi_rank_contents_identical(self, graphs):
        sampler = BulkShadowSampler(depth=2, fanout=3)
        plan = _plan(graphs)
        sync = _collect(PrefetchLoader(sampler, workers=0), plan, ranks=(0, 1))
        pre = _collect(PrefetchLoader(sampler, workers=3), plan, ranks=(0, 1))
        _assert_epochs_equal(sync, pre)

    def test_start_cursor_resumes_tail(self, graphs):
        """iter_epoch(start=s) serves exactly the uninterrupted tail."""
        sampler = BulkShadowSampler(depth=2, fanout=3)
        plan = _plan(graphs)
        full = _collect(PrefetchLoader(sampler, workers=0), plan)
        cut = len(plan) // 2
        tail = _collect(PrefetchLoader(sampler, workers=2), plan, start=cut)
        assert set(tail) == {i for i in full if i >= cut}
        _assert_epochs_equal({i: full[i] for i in tail}, tail)


class TestElasticRecompute:
    def test_rank_eviction_recomputes_queued_steps(self, graphs):
        sampler = BulkShadowSampler(depth=2, fanout=3)
        plan = _plan(graphs)
        assert len(plan) >= 2

        live = [(0, 1)]
        yielded = {}
        loader = PrefetchLoader(sampler, workers=2, depth=2)
        for step, sampled in loader.iter_epoch(plan, lambda: live[0]):
            yielded[step.index] = sampled
            live[0] = (0,)  # rank 1 dies after the first consumed step
        # consumed steps reflect the rank set at consumption time
        assert set(yielded[0]) == {0, 1}
        for idx in range(1, len(plan)):
            assert set(yielded[idx]) == {0}
            reference = sample_step(sampler, plan.steps[idx], (0,))
            _assert_batches_equal(yielded[idx][0], reference[0])
        # the steps prefetched against (0, 1) were recomputed
        assert loader.stats.recomputed_steps >= 1


class TestStatsAndTelemetry:
    def test_sync_mode_stats(self, graphs):
        sampler = BulkShadowSampler(depth=2, fanout=3)
        plan = _plan(graphs)
        loader = PrefetchLoader(sampler, workers=0)
        _collect(loader, plan)
        assert loader.stats.steps == len(plan)
        assert loader.stats.max_queue_depth == 0
        assert loader.stats.sample_seconds > 0
        # synchronous: every sampler second is a stall second
        assert loader.stats.overlap_efficiency() == 0.0

    def test_prefetch_bounds_queue_depth(self, graphs):
        sampler = BulkShadowSampler(depth=2, fanout=3)
        plan = _plan(graphs)
        loader = PrefetchLoader(sampler, workers=4, depth=2)
        _collect(loader, plan)
        assert loader.stats.steps == len(plan)
        assert 1 <= loader.stats.max_queue_depth <= 2

    def test_metrics_exported(self, graphs):
        sampler = BulkShadowSampler(depth=2, fanout=3)
        plan = _plan(graphs)
        telemetry = RunTelemetry()
        with use_telemetry(telemetry):
            _collect(PrefetchLoader(sampler, workers=2, depth=2), plan)
        m = telemetry.metrics
        assert m.counter("data.prefetch.steps").value == len(plan)
        assert m.counter("data.prefetch.sample_seconds").value > 0
        assert m.gauge("data.prefetch.workers").value == 2
        assert m.histogram("data.prefetch.queue_depth_dist").count == len(plan)
        assert m.histogram("data.prefetch.stall_s").count == len(plan)
        spans = {s.name for s in telemetry.tracer.spans}
        assert "data.prefetch.next" in spans
        assert "data.prefetch.sample" in spans

    def test_invalid_args_rejected(self):
        sampler = BulkShadowSampler(depth=2, fanout=3)
        with pytest.raises(ValueError):
            PrefetchLoader(sampler, workers=-1)
        with pytest.raises(ValueError):
            PrefetchLoader(sampler, workers=1, depth=0)
