"""Circuit-breaker state machine on a simulated clock."""

import pytest

from repro.faults import SimClock
from repro.guard import BreakerConfig, CircuitBreaker
from repro.obs import RunTelemetry, use_telemetry

pytestmark = pytest.mark.guard


@pytest.fixture
def clock():
    return SimClock()


def _breaker(clock, **overrides):
    fields = dict(failure_threshold=3, cooldown_s=1.0, probe_successes=1)
    fields.update(overrides)
    return CircuitBreaker(BreakerConfig(**fields), clock=clock, name="test")


class TestStateMachine:
    def test_starts_closed_and_allows(self, clock):
        breaker = _breaker(clock)
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self, clock):
        breaker = _breaker(clock, failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self, clock):
        breaker = _breaker(clock, failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # streak broken: 1+1, never 2

    def test_half_open_after_cooldown(self, clock):
        breaker = _breaker(clock, failure_threshold=1, cooldown_s=1.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.sleep(0.5)
        assert not breaker.allow()  # still cooling down
        clock.sleep(0.6)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe is admitted

    def test_probe_success_closes(self, clock):
        breaker = _breaker(clock, failure_threshold=1, cooldown_s=1.0)
        breaker.record_failure()
        clock.sleep(1.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_probe_failure_reopens_with_fresh_cooldown(self, clock):
        breaker = _breaker(clock, failure_threshold=1, cooldown_s=1.0)
        breaker.record_failure()
        clock.sleep(1.1)
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        clock.sleep(0.5)
        assert not breaker.allow()  # the cooldown restarted
        clock.sleep(0.6)
        assert breaker.state == "half_open"

    def test_multiple_probe_successes_required(self, clock):
        breaker = _breaker(
            clock, failure_threshold=1, cooldown_s=1.0, probe_successes=2
        )
        breaker.record_failure()
        clock.sleep(1.1)
        breaker.record_success()
        assert breaker.state == "half_open"  # one of two
        breaker.record_success()
        assert breaker.state == "closed"

    def test_transition_counts(self, clock):
        breaker = _breaker(clock, failure_threshold=1, cooldown_s=1.0)
        breaker.record_failure()
        clock.sleep(1.1)
        breaker.allow()
        breaker.record_failure()
        clock.sleep(1.1)
        breaker.allow()
        breaker.record_success()
        assert breaker.transitions["open"] == 2
        assert breaker.transitions["half_open"] == 2
        assert breaker.transitions["closed"] == 1

    def test_latency_failures_also_trip(self, clock):
        breaker = _breaker(clock, failure_threshold=2)
        breaker.record_failure(kind="latency")
        breaker.record_failure(kind="latency")
        assert breaker.state == "open"

    def test_telemetry_counters(self, clock):
        telemetry = RunTelemetry.for_run(command="test")
        with use_telemetry(telemetry):
            breaker = _breaker(clock, failure_threshold=1, cooldown_s=1.0)
            breaker.record_failure()
            clock.sleep(1.1)
            breaker.allow()
            breaker.record_success()
        counters = telemetry.metrics.to_dict()["counters"]
        assert counters["guard.breaker.test.open"] == 1
        assert counters["guard.breaker.test.half_open"] == 1
        assert counters["guard.breaker.test.closed"] == 1
        assert counters["guard.breaker.test.failures.exception"] == 1


class TestConfigValidation:
    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)

    def test_bad_cooldown(self):
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_s=-1.0)

    def test_bad_probes(self):
        with pytest.raises(ValueError):
            BreakerConfig(probe_successes=0)
