"""Size-capped QuarantineLog rotation: a hostile feed cannot grow the
log without bound, and old generations age out."""

import json
import os

import pytest

from repro.guard import QuarantineLog, ValidationIssue


def _issue(n=0):
    return [ValidationIssue(rule="finite_positions", detail=f"hit {n} is NaN")]


def _record_bytes(log):
    # one record's serialized size, to pick max_bytes precisely
    log.record("test", "event", 0, _issue())
    return os.path.getsize(log.path)


class TestQuarantineLogRotation:
    def test_unbounded_by_default(self, tmp_path):
        log = QuarantineLog(str(tmp_path / "q.jsonl"))
        for i in range(50):
            log.record("test", "event", i, _issue(i))
        assert log.rotations == 0
        assert not os.path.exists(log.path + ".1")

    def test_rotates_at_cap(self, tmp_path):
        probe = QuarantineLog(str(tmp_path / "probe.jsonl"))
        unit = _record_bytes(probe)
        log = QuarantineLog(
            str(tmp_path / "q.jsonl"), max_bytes=unit * 3, keep_files=2
        )
        for i in range(10):
            log.record("test", "event", i, _issue(i))
        assert log.rotations > 0
        assert os.path.getsize(log.path) <= unit * 3
        assert os.path.exists(log.path + ".1")

    def test_keep_files_bounds_generations(self, tmp_path):
        probe = QuarantineLog(str(tmp_path / "probe.jsonl"))
        unit = _record_bytes(probe)
        log = QuarantineLog(
            str(tmp_path / "q.jsonl"), max_bytes=unit, keep_files=2
        )
        for i in range(12):
            log.record("test", "event", i, _issue(i))
        assert os.path.exists(log.path + ".1")
        assert os.path.exists(log.path + ".2")
        assert not os.path.exists(log.path + ".3")

    def test_no_record_lost_within_retention(self, tmp_path):
        probe = QuarantineLog(str(tmp_path / "probe.jsonl"))
        unit = _record_bytes(probe)
        log = QuarantineLog(
            str(tmp_path / "q.jsonl"), max_bytes=unit * 2, keep_files=10
        )
        total = 9
        for i in range(total):
            log.record("test", "event", i, _issue(i))
        seen = []
        paths = [log.path] + [
            log.path + f".{n}" for n in range(1, 11)
        ]
        for path in paths:
            if os.path.exists(path):
                with open(path) as fh:
                    seen.extend(json.loads(line)["id"] for line in fh)
        assert sorted(seen) == list(range(total))

    def test_every_line_stays_valid_json(self, tmp_path):
        probe = QuarantineLog(str(tmp_path / "probe.jsonl"))
        unit = _record_bytes(probe)
        log = QuarantineLog(str(tmp_path / "q.jsonl"), max_bytes=unit * 2)
        for i in range(7):
            log.record("test", "event", i, _issue(i))
        with open(log.path) as fh:
            for line in fh:
                record = json.loads(line)
                assert record["rules"] == ["finite_positions"]

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            QuarantineLog(str(tmp_path / "q.jsonl"), max_bytes=0)
        with pytest.raises(ValueError):
            QuarantineLog(str(tmp_path / "q.jsonl"), max_bytes=10, keep_files=0)
