"""Stability watchdog: divergence detection, rollback, determinism."""

import os

import numpy as np
import pytest

from repro.faults import FaultPlan, NumericFault
from repro.graph import random_graph
from repro.guard import (
    DivergenceError,
    StabilityWatchdog,
    TrainingUnstableError,
    WatchdogConfig,
    global_grad_norm,
)
from repro.pipeline import GNNTrainConfig, train_gnn

pytestmark = pytest.mark.guard


class TestWatchdogUnit:
    def test_nan_loss_raises(self):
        wd = StabilityWatchdog(WatchdogConfig())
        wd.observe_loss(1.0)
        with pytest.raises(DivergenceError) as info:
            wd.observe_loss(float("nan"), step=17)
        assert info.value.step == 17

    def test_inf_grad_norm_raises(self):
        wd = StabilityWatchdog(WatchdogConfig())
        with pytest.raises(DivergenceError):
            wd.observe_grad_norm(float("inf"))

    def test_spike_requires_history(self):
        wd = StabilityWatchdog(WatchdogConfig(min_history=3, spike_factor=10.0))
        wd.observe_loss(1.0)
        wd.observe_loss(50.0)  # only 2 observations: detector not armed
        wd.observe_loss(1.0)
        wd.observe_loss(1.0)
        with pytest.raises(DivergenceError):
            wd.observe_loss(100.0)  # armed now: 100 > 10 x median

    def test_ordinary_noise_tolerated(self):
        wd = StabilityWatchdog(WatchdogConfig(min_history=3, spike_factor=10.0))
        rng = np.random.default_rng(0)
        for _ in range(100):
            wd.observe_loss(float(1.0 + 0.5 * rng.random()))
        assert wd.divergences == 0

    def test_rollback_budget(self):
        wd = StabilityWatchdog(WatchdogConfig(max_rollbacks=2, lr_backoff=0.5))
        assert wd.can_rollback()
        assert wd.register_rollback() == 0.5
        assert wd.can_rollback()
        wd.register_rollback()
        assert not wd.can_rollback()

    def test_rollback_clears_history(self):
        wd = StabilityWatchdog(WatchdogConfig(min_history=3, spike_factor=10.0))
        for _ in range(5):
            wd.observe_loss(1.0)
        wd.register_rollback()
        # the window restarts: a big value right after rollback is not a
        # spike relative to stale pre-rollback history
        wd.observe_loss(8.0)
        assert wd.divergences == 0

    def test_global_grad_norm(self):
        from repro.nn import MLP

        model = MLP(4, 8, 2)
        norm = global_grad_norm(model)
        assert norm == 0.0  # no backward yet -> no gradients


def _faulted_config(tmp_path, tag, **overrides):
    fields = dict(
        mode="bulk", epochs=4, batch_size=16, hidden=8, num_layers=2,
        bulk_k=2, seed=3,
        checkpoint_every=1,
        checkpoint_path=str(tmp_path / f"wd_{tag}.npz"),
        watchdog=True, watchdog_max_rollbacks=2, watchdog_lr_backoff=0.5,
    )
    fields.update(overrides)
    return GNNTrainConfig(**fields)


@pytest.fixture
def train_graphs():
    rng = np.random.default_rng(7)
    return [random_graph(60, 240, rng=rng, true_fraction=0.3) for _ in range(2)]


class TestWatchdogRollback:
    def test_nan_loss_rolls_back_and_recovers(self, tmp_path, train_graphs):
        plan = FaultPlan(numeric_faults=[NumericFault(at_step=20, target="loss")])
        result = train_gnn(
            train_graphs, train_graphs[:1], _faulted_config(tmp_path, "a"),
            fault_plan=plan,
        )
        assert result.watchdog_rollbacks == 1
        losses = [r.train_loss for r in result.history.records]
        assert losses and all(np.isfinite(losses))

    def test_nan_grad_rolls_back_and_recovers(self, tmp_path, train_graphs):
        plan = FaultPlan(numeric_faults=[NumericFault(at_step=20, target="grad")])
        result = train_gnn(
            train_graphs, train_graphs[:1], _faulted_config(tmp_path, "g"),
            fault_plan=plan,
        )
        assert result.watchdog_rollbacks == 1
        assert all(np.isfinite(r.train_loss) for r in result.history.records)

    def test_rollback_is_deterministic(self, tmp_path, train_graphs):
        histories = []
        for tag in ("d1", "d2"):
            plan = FaultPlan(
                numeric_faults=[NumericFault(at_step=20, target="loss")]
            )
            result = train_gnn(
                train_graphs, train_graphs[:1],
                _faulted_config(tmp_path, tag), fault_plan=plan,
            )
            histories.append([r.train_loss for r in result.history.records])
        assert histories[0] == histories[1]

    def test_budget_exhaustion_raises_unstable(self, tmp_path, train_graphs):
        # three scheduled NaNs against a budget of two rollbacks
        plan = FaultPlan(
            numeric_faults=[NumericFault(at_step=20, target="loss", times=40)]
        )
        with pytest.raises(TrainingUnstableError) as info:
            train_gnn(
                train_graphs, train_graphs[:1],
                _faulted_config(tmp_path, "x"), fault_plan=plan,
            )
        assert info.value.rollbacks == 2

    def test_divergence_before_first_checkpoint_raises(self, tmp_path, train_graphs):
        # at_step=2 fires in epoch 0, before any checkpoint exists
        plan = FaultPlan(numeric_faults=[NumericFault(at_step=2, target="loss")])
        with pytest.raises(TrainingUnstableError):
            train_gnn(
                train_graphs, train_graphs[:1],
                _faulted_config(tmp_path, "early"), fault_plan=plan,
            )

    def test_without_watchdog_nan_raises_floating_point_error(
        self, tmp_path, train_graphs
    ):
        plan = FaultPlan(numeric_faults=[NumericFault(at_step=20, target="loss")])
        config = _faulted_config(tmp_path, "off", watchdog=False)
        with pytest.raises(FloatingPointError):
            train_gnn(train_graphs, train_graphs[:1], config, fault_plan=plan)

    def test_rollback_keeps_checkpoint_usable_for_plain_resume(
        self, tmp_path, train_graphs
    ):
        plan = FaultPlan(numeric_faults=[NumericFault(at_step=20, target="loss")])
        config = _faulted_config(tmp_path, "r")
        result = train_gnn(train_graphs, train_graphs[:1], config, fault_plan=plan)
        assert result.watchdog_rollbacks == 1
        assert os.path.exists(config.checkpoint_path)
        # the final checkpoint resumes cleanly; its embedded config
        # carries the backed-off lr (1e-3 * 0.5 after one rollback)
        resumed = train_gnn(
            train_graphs, train_graphs[:1],
            config.replace(
                epochs=5, resume_from=config.checkpoint_path, lr=0.5e-3
            ),
        )
        assert resumed.resumed_epoch is not None
