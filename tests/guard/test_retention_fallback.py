"""Checkpoint retention, stale-tmp cleanup, and corrupt-file fallback."""

import os

import numpy as np
import pytest

from repro.faults import flip_bit, truncate_file
from repro.graph import random_graph
from repro.io import clean_stale_tmp
from repro.pipeline import (
    CheckpointCorruptError,
    CheckpointError,
    GNNTrainConfig,
    checkpoint_history_paths,
    load_with_fallback,
    train_gnn,
)

pytestmark = pytest.mark.guard


@pytest.fixture
def graphs():
    rng = np.random.default_rng(11)
    return [random_graph(60, 240, rng=rng, true_fraction=0.3) for _ in range(2)]


def _config(tmp_path, **overrides):
    fields = dict(
        mode="bulk", epochs=3, batch_size=16, hidden=8, num_layers=2,
        bulk_k=2, seed=5,
        checkpoint_every=1,
        checkpoint_path=str(tmp_path / "ck.npz"),
        keep_last=3,
    )
    fields.update(overrides)
    return GNNTrainConfig(**fields)


class TestRetention:
    def test_keep_last_prunes_history(self, tmp_path, graphs):
        config = _config(tmp_path, epochs=5, keep_last=2)
        train_gnn(graphs, graphs[:1], config)
        history = checkpoint_history_paths(config.checkpoint_path)
        assert len(history) == 2
        # newest first, named by (epoch, step)
        names = [os.path.basename(p) for p in history]
        assert names == ["ck.e0005s000000.npz", "ck.e0004s000000.npz"]

    def test_history_copies_are_independent_files(self, tmp_path, graphs):
        config = _config(tmp_path)
        train_gnn(graphs, graphs[:1], config)
        newest = checkpoint_history_paths(config.checkpoint_path)[0]
        # corrupting the primary must not corrupt the history copy
        flip_bit(config.checkpoint_path, byte_offset=256)
        load_with_fallback(newest, config.replace(epochs=4, resume_from=newest))

    def test_no_history_without_keep_last(self, tmp_path, graphs):
        config = _config(tmp_path, keep_last=None)
        train_gnn(graphs, graphs[:1], config)
        assert checkpoint_history_paths(config.checkpoint_path) == []


class TestStaleTmpCleanup:
    def test_clean_stale_tmp(self, tmp_path):
        stale = tmp_path / "junk.tmp.npz"
        stale.write_bytes(b"partial write")
        keep = tmp_path / "real.npz"
        keep.write_bytes(b"not a tmp file")
        removed = clean_stale_tmp(str(tmp_path))
        assert [os.path.basename(p) for p in removed] == ["junk.tmp.npz"]
        assert not stale.exists()
        assert keep.exists()

    def test_trainer_sweeps_stale_tmp_at_startup(self, tmp_path, graphs):
        stale = tmp_path / "crashed.tmp.npz"
        stale.write_bytes(b"partial write from a crashed run")
        train_gnn(graphs, graphs[:1], _config(tmp_path, epochs=1))
        assert not stale.exists()


class TestFallbackResume:
    def test_bit_flip_falls_back_to_history(self, tmp_path, graphs):
        config = _config(tmp_path)
        train_gnn(graphs, graphs[:1], config)
        flip_bit(config.checkpoint_path, byte_offset=256)
        resumed = train_gnn(
            graphs, graphs[:1],
            config.replace(epochs=4, resume_from=config.checkpoint_path),
        )
        assert resumed.resume_fallback_path is not None
        assert resumed.resume_fallback_path != config.checkpoint_path
        assert resumed.resumed_epoch is not None
        assert all(np.isfinite(r.train_loss) for r in resumed.history.records)

    def test_truncation_falls_back_to_history(self, tmp_path, graphs):
        config = _config(tmp_path)
        train_gnn(graphs, graphs[:1], config)
        truncate_file(config.checkpoint_path, keep_bytes=100)
        state, path, fell_back = load_with_fallback(
            config.checkpoint_path,
            config.replace(resume_from=config.checkpoint_path),
        )
        assert fell_back
        assert path != config.checkpoint_path
        assert state.epochs_done >= 1

    def test_healthy_checkpoint_is_not_a_fallback(self, tmp_path, graphs):
        config = _config(tmp_path)
        train_gnn(graphs, graphs[:1], config)
        state, path, fell_back = load_with_fallback(
            config.checkpoint_path,
            config.replace(epochs=4, resume_from=config.checkpoint_path),
        )
        assert not fell_back
        assert path == config.checkpoint_path

    def test_all_copies_corrupt_reraises_primary(self, tmp_path, graphs):
        config = _config(tmp_path)
        train_gnn(graphs, graphs[:1], config)
        flip_bit(config.checkpoint_path, byte_offset=256)
        for candidate in checkpoint_history_paths(config.checkpoint_path):
            flip_bit(candidate, byte_offset=256)
        with pytest.raises(CheckpointCorruptError):
            load_with_fallback(
                config.checkpoint_path,
                config.replace(resume_from=config.checkpoint_path),
            )

    def test_config_mismatch_is_not_fallback_eligible(self, tmp_path, graphs):
        # a wrong config is an operator error, not media corruption: the
        # loader must complain, not silently resume something else
        config = _config(tmp_path)
        train_gnn(graphs, graphs[:1], config)
        wrong = config.replace(hidden=16, resume_from=config.checkpoint_path)
        with pytest.raises(CheckpointError):
            load_with_fallback(config.checkpoint_path, wrong)
