"""Quarantine mechanics: graph rules, logging, telemetry, composability."""

import json

import numpy as np
import pytest

from repro.graph import EventGraph, random_graph
from repro.guard import (
    EventValidator,
    GraphValidator,
    Quarantine,
    QuarantineLog,
    ValidationRule,
)
from repro.obs import RunTelemetry, use_telemetry

pytestmark = pytest.mark.guard


def _graph(**overrides):
    g = random_graph(20, 60, rng=np.random.default_rng(0), true_fraction=0.3)
    if not overrides:
        return g
    return EventGraph(
        edge_index=overrides.get("edge_index", g.edge_index),
        x=overrides.get("x", g.x),
        y=overrides.get("y", g.y),
        edge_labels=overrides.get("edge_labels", g.edge_labels),
    )


class TestGraphValidator:
    def test_clean_graph_passes(self):
        assert GraphValidator().validate(_graph()) == []

    def test_nan_node_features(self):
        x = _graph().x.copy()
        x[0, 0] = np.nan
        issues = GraphValidator().validate(_graph(x=x))
        assert [i.rule for i in issues] == ["finite_features"]

    def test_inf_edge_features(self):
        y = _graph().y.copy()
        y[0, 0] = np.inf
        issues = GraphValidator().validate(_graph(y=y))
        assert [i.rule for i in issues] == ["finite_features"]

    def test_edge_endpoint_out_of_range(self):
        # EventGraph's constructor rejects this, so corrupt in place —
        # the validator exists for exactly this post-construction rot
        g = _graph()
        g.edge_index[1, 0] = 99  # beyond num_nodes
        issues = GraphValidator().validate(g)
        assert "edge_range" in [i.rule for i in issues]

    def test_missing_labels(self):
        g = _graph()
        bad = EventGraph(edge_index=g.edge_index, x=g.x, y=g.y, edge_labels=None)
        assert "labels" in [i.rule for i in GraphValidator().validate(bad)]
        assert GraphValidator(require_labels=False).validate(bad) == []

    def test_label_length_mismatch(self):
        g = _graph()
        g.edge_labels = g.edge_labels[:-1]  # bypasses __post_init__
        issues = GraphValidator().validate(g)
        assert "labels" in [i.rule for i in issues]


class TestComposability:
    def test_with_rule_appends(self):
        validator = EventValidator().with_rule(
            ValidationRule("always_fails", lambda e: "nope")
        )
        assert validator.rule_names[-1] == "always_fails"
        # the base validator is unchanged
        assert "always_fails" not in EventValidator().rule_names

    def test_extra_rules_run_after_defaults(self):
        validator = GraphValidator(
            extra_rules=[ValidationRule("too_small", lambda g: (
                None if g.num_nodes >= 50 else f"only {g.num_nodes} nodes"
            ))]
        )
        issues = validator.validate(_graph())
        assert [i.rule for i in issues] == ["too_small"]

    def test_empty_rule_set_rejected(self):
        with pytest.raises(ValueError):
            GraphValidator.__mro__[1]([])  # _Validator requires rules


class TestQuarantineAccounting:
    def test_jsonl_log(self, tmp_path):
        path = str(tmp_path / "quarantine.jsonl")
        x = _graph().x.copy()
        x[0, 0] = np.nan
        quarantine = Quarantine(
            GraphValidator(),
            context="unit",
            log=QuarantineLog(path),
            kind="graph",
        )
        assert quarantine.admit(_graph(), obj_id=1)
        assert not quarantine.admit(_graph(x=x), obj_id=2)
        with open(path) as fh:
            records = [json.loads(line) for line in fh]
        assert len(records) == 1
        assert records[0]["context"] == "unit"
        assert records[0]["kind"] == "graph"
        assert records[0]["id"] == 2
        assert records[0]["rules"] == ["finite_features"]
        assert records[0]["issues"][0]["detail"]

    def test_counters(self):
        x = _graph().x.copy()
        x[0, 0] = np.nan
        telemetry = RunTelemetry.for_run(command="test")
        with use_telemetry(telemetry):
            quarantine = Quarantine(GraphValidator(), context="unit")
            quarantine.filter([_graph(), _graph(x=x)])
        counters = telemetry.metrics.to_dict()["counters"]
        assert counters["guard.quarantine.total"] == 1
        assert counters["guard.quarantine.unit"] == 1
        assert counters["guard.quarantine.rule.finite_features"] == 1


class TestPipelineIngestion:
    def test_fit_quarantines_bad_event(self, geometry, small_events, tmp_path):
        import dataclasses

        from repro.pipeline import ExaTrkXPipeline, GNNTrainConfig, PipelineConfig

        positions = small_events[0].positions.copy()
        positions[0, 0] = np.nan
        bad = dataclasses.replace(small_events[0], positions=positions, event_id=66)
        log_path = str(tmp_path / "fit_quarantine.jsonl")
        config = PipelineConfig(
            embedding_dim=6, embedding_epochs=2, filter_epochs=2,
            frnn_radius=0.3,
            gnn=GNNTrainConfig(
                mode="bulk", epochs=1, batch_size=64, hidden=8,
                num_layers=2, depth=2, fanout=4, bulk_k=2,
            ),
            validate_inputs=True,
            quarantine_log=log_path,
        )
        pipe = ExaTrkXPipeline(config, geometry)
        report = pipe.fit(
            [small_events[1], bad, small_events[2]], [small_events[3]]
        )
        assert report.quarantined_events == 1
        with open(log_path) as fh:
            records = [json.loads(line) for line in fh]
        assert records[0]["id"] == 66
        assert records[0]["context"] == "pipeline.fit"

    def test_fit_raises_when_all_train_events_quarantined(self, geometry, small_events):
        import dataclasses

        from repro.pipeline import ExaTrkXPipeline, PipelineConfig

        positions = small_events[0].positions.copy()
        positions[:, :] = np.nan
        bad = dataclasses.replace(small_events[0], positions=positions)
        pipe = ExaTrkXPipeline(PipelineConfig(validate_inputs=True), geometry)
        with pytest.raises(ValueError, match="quarantine"):
            pipe.fit([bad], [])


class TestTrainerIngestion:
    def test_train_gnn_quarantines_bad_graph(self):
        from repro.pipeline import GNNTrainConfig, train_gnn

        rng = np.random.default_rng(2)
        good = [random_graph(60, 240, rng=rng, true_fraction=0.3) for _ in range(2)]
        x = good[0].x.copy()
        x[0, 0] = np.nan
        bad = EventGraph(
            edge_index=good[0].edge_index, x=x, y=good[0].y,
            edge_labels=good[0].edge_labels,
        )
        config = GNNTrainConfig(
            mode="bulk", epochs=1, batch_size=16, hidden=8, num_layers=2,
            bulk_k=2, validate_inputs=True,
        )
        result = train_gnn(good + [bad], good[:1], config)
        assert result.quarantined_graphs == 1
        assert all(np.isfinite(r.train_loss) for r in result.history.records)

    def test_train_gnn_rejects_all_quarantined(self):
        from repro.pipeline import GNNTrainConfig, train_gnn

        g = _graph()
        x = g.x.copy()
        x[:, :] = np.nan
        bad = EventGraph(edge_index=g.edge_index, x=x, y=g.y, edge_labels=g.edge_labels)
        config = GNNTrainConfig(
            mode="bulk", epochs=1, batch_size=16, hidden=8, num_layers=2,
            bulk_k=2, validate_inputs=True,
        )
        with pytest.raises(ValueError, match="quarantine"):
            train_gnn([bad], [], config)
