# Convenience targets; everything is plain pytest/python underneath.

.PHONY: test test-fast test-faults test-guard bench examples docs telemetry-smoke prefetch-smoke serve-smoke guard-smoke elastic-smoke obs-smoke kernels-smoke store-smoke scenarios-smoke clean

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

# Recovery paths must not rot: run the fault-injection suite with
# warnings promoted to errors (mirrors the dedicated CI step).
test-faults:
	pytest tests/ -m faults -W error

# Guardrail suite: quarantine, watchdog rollback, circuit breaker,
# graceful shutdown (mirrors the dedicated CI step).
test-guard:
	pytest tests/ -m guard -W error

bench:
	pytest benchmarks/ --benchmark-only

# End-to-end observability check: run a short traced training, validate
# the exported trace/metrics against their schemas, and render the
# per-phase table (mirrors the dedicated CI step).
telemetry-smoke:
	python -m repro.cli train --dataset tiny --mode shadow --epochs 2 \
	  --train-graphs 2 --val-graphs 1 --world-size 2 \
	  --trace-out /tmp/repro_trace.json --metrics-out /tmp/repro_metrics.json
	python scripts/validate_telemetry.py /tmp/repro_trace.json /tmp/repro_metrics.json
	python -m repro.cli telemetry summarize /tmp/repro_trace.json

# End-to-end async-pipeline check: run a short prefetched training,
# validate the exported queue-depth / stall instruments and spans, and
# assert workers=0 vs workers=4 weight bit-identity (mirrors the
# dedicated CI step).
prefetch-smoke:
	python -m repro.cli train --dataset tiny --mode bulk --epochs 2 \
	  --train-graphs 2 --val-graphs 1 --prefetch-workers 4 \
	  --trace-out /tmp/repro_prefetch_trace.json \
	  --metrics-out /tmp/repro_prefetch_metrics.json
	python scripts/validate_prefetch.py --determinism \
	  /tmp/repro_prefetch_metrics.json /tmp/repro_prefetch_trace.json

# End-to-end serving check: batched-vs-sequential parity, stage-cache
# hits on replay, deterministic overload shedding/degradation, and the
# serve.* metrics schema (mirrors the dedicated CI step).
serve-smoke:
	python scripts/validate_serving.py /tmp/repro_serving_metrics.json

# End-to-end guardrail chaos check: watchdog rollback on NaN loss,
# checkpoint fallback past a bit-flipped file, breaker open/degraded/
# recover with zero hung requests (mirrors the dedicated CI step).
guard-smoke:
	python scripts/validate_guardrails.py /tmp/repro_guard_metrics.json

# End-to-end elastic-recovery chaos check: SIGKILL a real worker process
# mid-epoch on the proc backend, assert eviction + survivor resync, and
# bit-compare final weights against a sim-backend eviction replay
# (mirrors the dedicated CI step).
elastic-smoke:
	python scripts/validate_elastic.py

# End-to-end observability check: merged per-rank Chrome trace with
# supervisor chaos events, live /metrics + /health exposition during
# load generation, and the perf-regression gate tripping on an injected
# slowdown; then self-diff the checked-in benchmark baselines (mirrors
# the dedicated CI step).
obs-smoke:
	python scripts/validate_obs.py
	python -m repro.cli telemetry diff \
	  benchmarks/results/telemetry/baselines/bench_fig3_epoch_time.json \
	  benchmarks/results/telemetry/baselines/bench_fig3_epoch_time.json
	python -m repro.cli telemetry diff \
	  benchmarks/results/telemetry/baselines/bench_serving.json \
	  benchmarks/results/telemetry/baselines/bench_serving.json

# Fused-kernel check: numeric parity of every fused op against its
# unfused/legacy reference (forward + gradients), arena pooling
# bit-safety, and a measured speedup gate on the bench-shaped message
# pass; then the fused/precision parity test suites, a fresh fig3
# profile, and the perf-regression gate against the checked-in baseline
# so the fused-kernel epoch-time win is locked in (mirrors the
# dedicated CI step).
kernels-smoke:
	python scripts/validate_kernels.py
	pytest tests/tensor/test_fused_kernels.py tests/memory/test_arena.py \
	  tests/models/test_fused_ignn.py -q
	pytest benchmarks/bench_fig3_epoch_time.py -k ex3 -q --benchmark-only
	python -m repro.cli telemetry diff \
	  benchmarks/results/telemetry/test_fig3_epoch_time_ex3-ex3.trace.json \
	  benchmarks/results/telemetry/baselines/bench_fig3_epoch_time.json

# End-to-end event-store check: guarded ingestion quarantines an
# injected invalid event to JSONL, streamed epochs over a dataset >= 4x
# the resident-byte budget keep mapped bytes and RSS growth bounded,
# and streamed sampling/training is bit-identical to the in-RAM path
# with a warm shard cache (mirrors the dedicated CI step).
store-smoke:
	python scripts/validate_store.py
	python -m repro.cli store ingest --dataset tiny --out /tmp/repro_store \
	  --shard-mb 0.125 --overwrite
	python -m repro.cli store verify /tmp/repro_store

# Hostile-workload conformance: the smoke chaos matrix (mutated feeds +
# injected faults) must clear every physics-metric floor, engage each
# resilience mechanism, and reproduce bit-identically run to run
# (mirrors the dedicated CI step).
scenarios-smoke:
	python scripts/validate_scenarios.py --matrix smoke

examples:
	python examples/quickstart.py
	python examples/minibatch_vs_fullgraph.py
	python examples/distributed_scaling.py
	python examples/bulk_sampling_demo.py
	python examples/physics_analysis.py
	python examples/traditional_vs_gnn.py
	python examples/production_strategies.py

docs:
	python scripts/generate_api_docs.py > docs/api.md

# Keep the checked-in telemetry baselines (tracked files) when clearing
# regenerated benchmark outputs.
clean:
	rm -rf benchmarks/.bench_cache .pytest_cache
	find benchmarks/results -type f ! -path "*/telemetry/baselines/*" -delete 2>/dev/null || true
	find . -name __pycache__ -type d -exec rm -rf {} +
