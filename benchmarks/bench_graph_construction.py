"""Ablation — graph-construction strategies (pipeline Stage 1–2).

The production pipeline chooses between metric-learning (embedding MLP +
fixed-radius NN search) and the module map (data-driven detector-element
connectivity).  This bench builds candidate graphs for the same held-out
events with both strategies (plus the geometric window builder used for
dataset generation) and reports segment efficiency, purity, and edge
count — the trade every tracking pipeline tunes.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import write_report
from repro.detector import (
    DetectorGeometry,
    EventSimulator,
    GeometricBuilderConfig,
    ModuleMap,
    ModuleMapConfig,
    build_candidate_graph,
)
from repro.pipeline import EmbeddingStage, GraphConstructionStage, PipelineConfig


def test_graph_construction_strategies(benchmark):
    geometry = DetectorGeometry.barrel_only()
    sim = EventSimulator(geometry, particles_per_event=25, noise_fraction=0.05)
    events = [sim.generate(np.random.default_rng(900 + i)) for i in range(24)]
    train_ev, test_ev = events[:20], events[20:]

    def run():
        # metric learning: train the embedding, FRNN in embedding space
        cfg = PipelineConfig(
            embedding_dim=6, embedding_epochs=20, frnn_radius=0.3
        )
        emb = EmbeddingStage(cfg, geometry).fit(train_ev, np.random.default_rng(0))
        metric = GraphConstructionStage(cfg, geometry, emb)

        # module map: learn cell connectivity
        mm = ModuleMap(geometry, ModuleMapConfig()).fit(train_ev)

        # geometric windows (the dataset-generation builder)
        geo_cfg = GeometricBuilderConfig(dphi_max=0.3, dz_max=300.0)

        rows = {}
        for name in ("metric learning", "module map", "geometric windows"):
            effs, purs, edges = [], [], []
            for ev in test_ev:
                if name == "metric learning":
                    g = metric.build(ev)
                    effs.append(metric.edge_efficiency(ev, g))
                elif name == "module map":
                    g = mm.build(ev)
                    effs.append(mm.edge_efficiency(ev))
                else:
                    g = build_candidate_graph(ev, geometry, geo_cfg)
                    # efficiency restricted to adjacent-layer segments (the
                    # builder's reach)
                    seg = ev.true_segments()
                    n = ev.num_hits
                    built = set((g.rows * n + g.cols).tolist())
                    built |= set((g.cols * n + g.rows).tolist())
                    hit = sum(1 for a, b in seg.T if int(a) * n + int(b) in built)
                    effs.append(hit / max(seg.shape[1], 1))
                purs.append(g.true_edge_fraction())
                edges.append(g.num_edges)
            rows[name] = (np.mean(effs), np.mean(purs), np.mean(edges))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Graph-construction strategies (held-out events)",
        f"{'strategy':<18} | {'seg efficiency':>14} | {'purity':>7} | {'edges':>7}",
    ]
    for name, (eff, pur, edges) in rows.items():
        lines.append(f"{name:<18} | {eff:>14.3f} | {pur:>7.3f} | {edges:>7.0f}")
    write_report("graph_construction", lines)

    for name, (eff, pur, _) in rows.items():
        assert eff > 0.55, name    # every strategy captures most segments
        assert pur > 0.1, name
    # the learned strategies beat blind windows on purity at comparable
    # efficiency (the reason the pipeline trains Stage 1 at all)
    assert rows["metric learning"][1] > rows["geometric windows"][1]
    assert rows["module map"][1] > rows["geometric windows"][1]
