"""Ablation — gradient checkpointing vs event skipping.

Section III-B motivates minibatching by the memory wall of full-graph
training, which the original pipeline answers by *skipping* oversized
events.  Checkpointing is the classical third option: store only layer
boundaries and recompute interiors on backward.  This bench prices the
trade on the dense CTD-like events:

* memory — checkpointed footprint vs full backprop footprint;
* compute — measured step-time overhead of the recompute;
* data — graphs rescued (trained rather than skipped) at a capacity
  between the two footprints.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from common import BENCH_GNN, write_report
from repro.memory import ActivationMemoryModel
from repro.models import CheckpointedIGNN, IGNNConfig, InteractionGNN
from repro.nn import BCEWithLogitsLoss
from repro.pipeline import GNNTrainConfig, train_gnn
from repro.tensor import Tensor


def test_checkpointing_tradeoff(ctd_bench, benchmark):
    train, val = ctd_bench.train, ctd_bench.val
    ignn_cfg = IGNNConfig(
        node_features=train[0].num_node_features,
        edge_features=train[0].num_edge_features,
        hidden=BENCH_GNN["hidden"],
        num_layers=BENCH_GNN["num_layers"],
        mlp_layers=BENCH_GNN["mlp_layers"],
    )
    memory = ActivationMemoryModel(ignn_cfg)
    loss_fn = BCEWithLogitsLoss(pos_weight=4.0)

    def run():
        g = train[0]
        labels = g.edge_labels.astype(np.float32)
        model = InteractionGNN(ignn_cfg)
        ck = CheckpointedIGNN(model)
        # measured step times (best of 3)
        t_plain = t_ck = float("inf")
        for _ in range(3):
            model.zero_grad()
            t0 = time.perf_counter()
            loss_fn(model(Tensor(g.x), Tensor(g.y), g.rows, g.cols), labels).backward()
            t_plain = min(t_plain, time.perf_counter() - t0)
            model.zero_grad()
            t0 = time.perf_counter()
            ck.training_step(g.x, g.y, g.rows, g.cols, labels, loss_fn)
            t_ck = min(t_ck, time.perf_counter() - t0)

        full_mb = memory.total_bytes(g.num_nodes, g.num_edges) / 1e6
        ck_mb = memory.checkpointed_bytes(g.num_nodes, g.num_edges) / 1e6

        # rescue experiment at a capacity between the two footprints
        cap = int(
            0.5
            * (
                memory.checkpointed_bytes(g.num_nodes, g.num_edges)
                + memory.total_bytes(g.num_nodes, g.num_edges)
            )
        )
        common = dict(
            mode="full", epochs=1, capacity_bytes=cap, eval_every=10_000, **BENCH_GNN
        )
        res_skip = train_gnn(train, val, GNNTrainConfig(**common))
        res_ck = train_gnn(
            train, val, GNNTrainConfig(checkpoint_activations=True, **common)
        )
        return full_mb, ck_mb, t_plain, t_ck, res_skip, res_ck, cap

    full_mb, ck_mb, t_plain, t_ck, res_skip, res_ck, cap = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    write_report(
        "checkpointing",
        [
            f"Gradient checkpointing vs skipping (CTD-like event, "
            f"h={BENCH_GNN['hidden']}, L={BENCH_GNN['num_layers']})",
            f"activation memory: full backprop {full_mb:7.1f} MB | checkpointed {ck_mb:7.1f} MB "
            f"({full_mb / ck_mb:.1f}x smaller)",
            f"step time:         full backprop {1e3 * t_plain:7.0f} ms | checkpointed "
            f"{1e3 * t_ck:7.0f} ms ({t_ck / t_plain:.2f}x slower)",
            f"at a {cap / 1e6:.0f} MB budget: skip-only trains {res_skip.trained_steps} "
            f"graph-epochs ({res_skip.skipped_graphs} skipped); checkpointing trains "
            f"{res_ck.trained_steps} ({res_ck.checkpointed_steps} via recompute, "
            f"{res_ck.skipped_graphs} skipped)",
        ],
    )

    assert ck_mb < 0.6 * full_mb          # major memory cut
    assert t_ck < 3.0 * t_plain           # bounded recompute overhead
    assert res_ck.trained_steps > res_skip.trained_steps  # rescues data
