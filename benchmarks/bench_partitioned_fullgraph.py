"""Ablation — 1-D partitioned full-graph message passing vs minibatching.

The paper's minibatch pipeline is one answer to full-graph memory
pressure; the CAGNET line (the authors' other work) instead *partitions*
the full graph across ranks and pays halo-exchange communication every
layer.  This bench runs the partitioned forward on a CTD-like event,
verifies it matches the single-rank result, and compares its modeled
per-epoch communication against the (coalesced) gradient-sync traffic of
the minibatch pipeline — showing why minibatching communicates so much
less.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import BENCH_GNN, write_report
from repro.distributed import (
    NVLINK_A100,
    PartitionedIGNNForward,
    VertexPartition,
)
from repro.models import IGNNConfig, InteractionGNN
from repro.tensor import Tensor, no_grad


def test_partitioned_fullgraph_communication(ctd_bench, benchmark):
    graph = ctd_bench.train[0]
    model = InteractionGNN(
        IGNNConfig(
            node_features=graph.num_node_features,
            edge_features=graph.num_edge_features,
            hidden=BENCH_GNN["hidden"],
            num_layers=BENCH_GNN["num_layers"],
            mlp_layers=BENCH_GNN["mlp_layers"],
            seed=0,
        )
    )
    grad_bytes = sum(p.size * 4 for p in model.parameters())

    def run():
        with no_grad():
            ref = model(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols).numpy()
        rows = {}
        for world in (2, 4, 8):
            dist = PartitionedIGNNForward(
                model, VertexPartition.balanced(graph.num_nodes, world)
            )
            out = dist.forward(graph)
            assert np.allclose(out, ref, atol=1e-3)
            halo = dist.stats.bytes_total
            halo_t = dist.stats.modeled_seconds(world)
            # minibatch DDP per step: one coalesced gradient all-reduce
            sync_t = NVLINK_A100.allreduce_time(grad_bytes, world)
            rows[world] = (halo, halo_t, sync_t)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"Partitioned full-graph forward vs minibatch gradient sync "
        f"(CTD-like event: {graph.num_nodes}v/{graph.num_edges}e, "
        f"h={BENCH_GNN['hidden']}, L={BENCH_GNN['num_layers']})",
        f"{'P':>2} | {'halo bytes/fwd':>14} | {'halo modeled':>12} | {'minibatch grad sync':>19}",
    ]
    for world, (halo, halo_t, sync_t) in rows.items():
        lines.append(
            f"{world:>2} | {halo / 1e6:>11.2f} MB | {1e3 * halo_t:>9.2f} ms | "
            f"{1e6 * sync_t:>16.1f} us"
        )
    write_report("partitioned_fullgraph", lines)

    for world, (halo, halo_t, sync_t) in rows.items():
        # full-graph halo traffic dwarfs a minibatch gradient all-reduce
        assert halo_t > sync_t
    # halo volume grows with the rank count (more cut edges)
    assert rows[8][0] > rows[2][0]
