"""Ablation — gradient compression (top-k + error feedback).

Coalescing (§III-D) removes latency; compression removes bandwidth.  At
the paper's gradient sizes the flat IGNN buffer is small enough that
latency dominates on NVLink — so compression buys little there, but the
trade flips on slow interconnects (multi-node Ethernet).  The bench
prices both regimes with the α–β model and verifies training quality
survives moderate compression on real data.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import BENCH_GNN, write_report
from repro.distributed import (
    CommCostModel,
    NVLINK_A100,
    CompressedSynchronizer,
    compressed_bytes,
    compression_speedup,
    replicate_model,
)
from repro.models import IGNNConfig, InteractionGNN
from repro.nn import Adam, BCEWithLogitsLoss
from repro.pipeline import evaluate_edge_classifier
from repro.sampling import BulkShadowSampler, epoch_batches, group_batches
from repro.tensor import Tensor

ETHERNET_25G = CommCostModel(alpha=30e-6, beta=1.0 / 3.1e9)  # 25 GbE, ~3.1 GB/s
RATIOS = (1.0, 0.1, 0.01)


def test_gradient_compression(ex3_bench, benchmark):
    train, val = ex3_bench.train[:4], ex3_bench.val
    cfg = IGNNConfig(
        node_features=train[0].num_node_features,
        edge_features=train[0].num_edge_features,
        hidden=16,
        num_layers=2,
        mlp_layers=2,
        seed=0,
    )
    n_elements = InteractionGNN(cfg).num_parameters()
    # price the communication at the paper's network scale (h=64, L=8);
    # the bench-scale network is latency-dominated on any interconnect
    n_paper = InteractionGNN(
        IGNNConfig(
            node_features=cfg.node_features,
            edge_features=cfg.edge_features,
            hidden=64,
            num_layers=8,
            mlp_layers=cfg.mlp_layers,
        )
    ).num_parameters()

    def run():
        # quality: train with compressed sync at ratio 0.1 vs dense
        results = {}
        for ratio in (1.0, 0.1):
            models = replicate_model(lambda: InteractionGNN(cfg), 2)
            sync = CompressedSynchronizer(models, ratio)
            opts = [Adam(m.parameters(), lr=2e-3) for m in models]
            loss_fn = BCEWithLogitsLoss(pos_weight=3.0)
            sampler = BulkShadowSampler(2, 4)
            rng = np.random.default_rng(3)
            for _ in range(3):  # epochs
                for graph, group in group_batches(epoch_batches(train, 128, rng), 4):
                    for sb_group in [sampler.sample_bulk(graph, group, rng)]:
                        for sb in sb_group:
                            for m in models:
                                m.zero_grad()
                                logits = m(
                                    Tensor(sb.graph.x), Tensor(sb.graph.y),
                                    sb.graph.rows, sb.graph.cols,
                                )
                                loss_fn(
                                    logits, sb.graph.edge_labels.astype(np.float32)
                                ).backward()
                            sync.synchronize_gradients()
                            for opt in opts:
                                opt.step()
            p, r = evaluate_edge_classifier(models[0], val)
            results[ratio] = 2 * p * r / (p + r) if p + r else 0.0
        return results

    f1 = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"Top-k gradient compression (paper-scale IGNN: {n_paper} gradient elements, P=4)",
        f"{'ratio':>6} | {'bytes/step':>10} | {'NVLink speedup':>14} | {'25GbE speedup':>13}",
    ]
    for ratio in RATIOS:
        lines.append(
            f"{ratio:>6.2f} | {compressed_bytes(n_paper, ratio):>10} | "
            f"{compression_speedup(n_paper, ratio, 4, NVLINK_A100):>13.2f}x | "
            f"{compression_speedup(n_paper, ratio, 4, ETHERNET_25G):>12.2f}x"
        )
    lines.append(
        f"training quality (Ex3-like, 3 epochs): dense F1={f1[1.0]:.3f}, "
        f"top-10% F1={f1[0.1]:.3f}"
    )
    write_report("gradient_compression", lines)

    # bandwidth-bound interconnects gain more from compression
    assert compression_speedup(n_paper, 0.01, 4, ETHERNET_25G) > compression_speedup(
        n_paper, 0.01, 4, NVLINK_A100
    )
    # on the slow interconnect compression is a clear win at paper scale
    assert compression_speedup(n_paper, 0.01, 4, ETHERNET_25G) > 3.0
    # moderate compression keeps edge-classification quality
    assert f1[0.1] > f1[1.0] - 0.08