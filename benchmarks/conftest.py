"""Benchmark fixtures: session-scoped datasets so generation cost is paid
once, plus a terminal-summary hook that re-prints every regenerated table
after the pytest-benchmark output (bypassing output capture)."""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import RESULTS_DIR, ctd_bench_dataset, ex3_bench_dataset  # noqa: E402


@pytest.fixture(scope="session")
def ex3_bench():
    return ex3_bench_dataset()


@pytest.fixture(scope="session")
def ctd_bench():
    return ctd_bench_dataset()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Echo all regenerated tables so they land in bench_output.txt."""
    if not os.path.isdir(RESULTS_DIR):
        return
    tr = terminalreporter
    tr.section("regenerated paper tables/figures (benchmarks/results/)")
    for fname in sorted(os.listdir(RESULTS_DIR)):
        path = os.path.join(RESULTS_DIR, fname)
        tr.write_line(f"----- {fname} -----")
        with open(path) as fh:
            for line in fh.read().splitlines():
                tr.write_line(line)
