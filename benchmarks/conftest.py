"""Benchmark fixtures: session-scoped datasets so generation cost is paid
once, plus a terminal-summary hook that re-prints every regenerated table
after the pytest-benchmark output (bypassing output capture)."""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import (  # noqa: E402
    RESULTS_DIR,
    bench_telemetry,
    ctd_bench_dataset,
    ex3_bench_dataset,
)


@pytest.fixture(autouse=True)
def bench_profile(request):
    """Every bench runs under an attached tracer: its per-phase profile is
    exported to ``benchmarks/results/telemetry/<test>.trace.json`` so the
    regenerated tables come with machine-readable timing evidence."""
    name = request.node.name.replace("[", "-").replace("]", "").replace("/", "-")
    with bench_telemetry(name) as telemetry:
        yield telemetry


@pytest.fixture(scope="session")
def ex3_bench():
    return ex3_bench_dataset()


@pytest.fixture(scope="session")
def ctd_bench():
    return ctd_bench_dataset()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Echo all regenerated tables so they land in bench_output.txt."""
    if not os.path.isdir(RESULTS_DIR):
        return
    tr = terminalreporter
    tr.section("regenerated paper tables/figures (benchmarks/results/)")
    for fname in sorted(os.listdir(RESULTS_DIR)):
        path = os.path.join(RESULTS_DIR, fname)
        if not os.path.isfile(path):  # e.g. telemetry/ trace exports
            continue
        tr.write_line(f"----- {fname} -----")
        with open(path) as fh:
            for line in fh.read().splitlines():
                tr.write_line(line)
