"""Section III-D ablation — coalesced vs per-parameter all-reduce.

"Running separate all-reduce reductions on each parameter matrix yields
high latency costs.  We instead stack these parameter matrices and run a
single all-reduce call."

Regenerated two ways:

* **measured** — Python-side wall-clock of the DDP gradient sync over the
  simulated ranks (counts the per-call overhead the optimisation removes);
* **modeled** — α–β NVLink time for the same byte/call pattern, at the
  paper's process counts.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from common import BENCH_GNN, write_report
from repro.distributed import (
    NVLINK_A100,
    DistributedDataParallel,
    ProcCommunicator,
    SimCommunicator,
    replicate_model,
)
from repro.models import IGNNConfig, InteractionGNN
from repro.nn import BCEWithLogitsLoss
from repro.tensor import Tensor
from repro.graph import random_graph


def _make_factory():
    cfg = IGNNConfig(
        node_features=6,
        edge_features=2,
        hidden=BENCH_GNN["hidden"],
        num_layers=BENCH_GNN["num_layers"],
        mlp_layers=BENCH_GNN["mlp_layers"],
        seed=0,
    )
    return lambda: InteractionGNN(cfg)


def _populate_grads(models, graph):
    loss_fn = BCEWithLogitsLoss()
    for m in models:
        m.zero_grad()
        logits = m(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols)
        loss_fn(logits, graph.edge_labels.astype(np.float32)).backward()


def _sync_time(models, strategy, world, repeats=5):
    comm = SimCommunicator(world)
    ddp = DistributedDataParallel(models, comm, strategy=strategy)
    t0 = time.perf_counter()
    for _ in range(repeats):
        ddp.synchronize_gradients()
    measured = (time.perf_counter() - t0) / repeats
    return measured, comm.stats


def test_allreduce_coalescing(benchmark):
    factory = _make_factory()
    graph = random_graph(200, 800, rng=np.random.default_rng(0))
    sizes = [p.size * 4 for p in factory().parameters()]
    n_params = len(sizes)

    lines = [
        f"Coalesced vs per-parameter all-reduce "
        f"(IGNN: {n_params} parameter tensors, {sum(sizes) / 1e6:.2f} MB total)",
        f"{'P':>2} | {'strategy':<14} | {'calls/step':>10} | {'measured ms':>11} | {'modeled us':>10} | modeled speedup",
    ]

    def run():
        rows = {}
        for world in (2, 4, 8):
            models = replicate_model(factory, world)
            _populate_grads(models, graph)
            m_pp, stats_pp = _sync_time(models, "per_parameter", world)
            m_co, stats_co = _sync_time(models, "coalesced", world)
            t_pp = NVLINK_A100.allreduce_sequence_time(sizes, world)
            t_co = NVLINK_A100.coalesced_time(sizes, world)
            rows[world] = (m_pp, m_co, t_pp, t_co, stats_pp, stats_co)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    for world, (m_pp, m_co, t_pp, t_co, stats_pp, stats_co) in rows.items():
        calls_pp = stats_pp.num_allreduce_calls // 5
        calls_co = stats_co.num_allreduce_calls // 5
        lines.append(
            f"{world:>2} | {'per-parameter':<14} | {calls_pp:>10} | {1e3 * m_pp:11.2f} | {1e6 * t_pp:10.1f} |"
        )
        lines.append(
            f"{world:>2} | {'coalesced':<14} | {calls_co:>10} | {1e3 * m_co:11.2f} | {1e6 * t_co:10.1f} | {t_pp / t_co:5.1f}x"
        )
    write_report("allreduce_coalescing", lines)

    for world, (m_pp, m_co, t_pp, t_co, stats_pp, stats_co) in rows.items():
        # one call per step vs one per parameter tensor
        assert stats_co.num_allreduce_calls * n_params == stats_pp.num_allreduce_calls
        # modeled latency win grows with the parameter count
        assert t_pp / t_co > 3.0
        # measured Python-side overhead also falls
        assert m_co < m_pp


def test_allreduce_proc_backend_measured(benchmark):
    """Measured-vs-modeled validation of the α–β model on the real
    multi-process backend.

    The simulator only *charges* the NVLink α–β cost; the proc backend
    actually pays a per-collective latency (pipe dispatch + shared-memory
    ring barriers), so the paper's coalescing claim becomes a real
    wall-clock win here: one stacked all-reduce per step versus one
    collective per parameter tensor.
    """
    factory = _make_factory()
    graph = random_graph(200, 800, rng=np.random.default_rng(0))
    sizes = [p.size * 4 for p in factory().parameters()]
    n_params = len(sizes)
    world, repeats = 4, 2

    def _proc_sync_time(strategy):
        models = replicate_model(factory, world)
        _populate_grads(models, graph)
        with ProcCommunicator(world, collective_timeout=60.0) as comm:
            ddp = DistributedDataParallel(models, comm, strategy=strategy)
            t0 = time.perf_counter()
            for _ in range(repeats):
                ddp.synchronize_gradients()
            measured = (time.perf_counter() - t0) / repeats
            calls = comm.stats.num_allreduce_calls // repeats
            modeled = comm.stats.modeled_seconds / repeats
        return measured, modeled, calls

    def run():
        return {s: _proc_sync_time(s) for s in ("per_parameter", "coalesced")}

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    m_pp, t_pp, calls_pp = rows["per_parameter"]
    m_co, t_co, calls_co = rows["coalesced"]
    lines = [
        f"Proc backend (real processes), P={world}: measured vs α–β-modeled "
        f"gradient sync ({n_params} parameter tensors, {sum(sizes) / 1e6:.2f} MB)",
        f"{'strategy':<14} | {'calls/step':>10} | {'measured ms':>11} | {'modeled us':>10}",
        f"{'per-parameter':<14} | {calls_pp:>10} | {1e3 * m_pp:11.2f} | {1e6 * t_pp:10.1f}",
        f"{'coalesced':<14} | {calls_co:>10} | {1e3 * m_co:11.2f} | {1e6 * t_co:10.1f}",
        f"measured speedup {m_pp / m_co:5.1f}x | modeled speedup {t_pp / t_co:5.1f}x",
    ]
    write_report("allreduce_proc_measured", lines)

    assert calls_co * n_params == calls_pp
    # the latency term dominates both the model and the real backend:
    # coalescing must win on actual wall-clock at P >= 4, not just on paper
    assert m_co < m_pp
    assert t_pp / t_co > 3.0
