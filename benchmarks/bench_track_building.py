"""Ablation — track building: connected components vs walkthrough.

The paper builds tracks with connected components; a single fake edge
surviving the GNN then merges two tracks.  The score-ordered walkthrough
(degree-constrained edge acceptance) blocks exactly that.  This bench
trains one pipeline, reconstructs held-out events at two pileup levels
with both builders, and compares tracking efficiency / fake rate — the
gap should open as pileup (and hence surviving-fake density) grows.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import write_report
from repro.detector import DetectorGeometry, EventSimulator, merge_events
from repro.metrics import match_tracks
from repro.pipeline import (
    ExaTrkXPipeline,
    GNNTrainConfig,
    PipelineConfig,
    build_tracks,
    build_tracks_walkthrough,
)


def test_track_building_strategies(benchmark):
    geometry = DetectorGeometry.barrel_only()
    sim = EventSimulator(geometry, particles_per_event=20, noise_fraction=0.05)
    events = [sim.generate(np.random.default_rng(600 + i), event_id=i) for i in range(10)]

    cfg = PipelineConfig(
        embedding_dim=6,
        embedding_epochs=15,
        filter_epochs=15,
        frnn_radius=0.3,
        gnn=GNNTrainConfig(
            mode="bulk", epochs=4, batch_size=64, hidden=16,
            num_layers=2, mlp_layers=2, depth=2, fanout=4, bulk_k=4,
        ),
    )

    def run():
        pipe = ExaTrkXPipeline(cfg, geometry)
        pipe.fit(events[:6], events[6:7])
        rows = {}
        for mu, test_events in (
            (1, [events[7], events[8]]),
            (3, [merge_events([events[7], events[8], events[9]], event_id=99)]),
        ):
            agg = {"cc": [0, 0, 0], "walkthrough": [0, 0, 0]}
            for ev in test_events:
                graph = pipe.construction.build(ev)
                graph, _ = pipe.filter.prune(graph)
                scores = pipe.gnn.model.predict_proba(graph)
                pruned = graph.edge_mask_subgraph(scores >= cfg.gnn.threshold)
                cc = match_tracks(build_tracks(pruned, 3), ev.particle_ids)
                wt = match_tracks(
                    build_tracks_walkthrough(graph, scores, 3, cfg.gnn.threshold),
                    ev.particle_ids,
                )
                for key, score in (("cc", cc), ("walkthrough", wt)):
                    agg[key][0] += score.num_matched
                    agg[key][1] += score.num_reconstructable
                    agg[key][2] += score.num_fakes
            rows[mu] = {
                key: (m / max(r, 1), f / max(m + f, 1))
                for key, (m, r, f) in agg.items()
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Track building: connected components vs walkthrough",
        f"{'mu':>3} | {'builder':<12} | {'efficiency':>10} | {'fake share':>10}",
    ]
    for mu, by_builder in rows.items():
        for key, (eff, fake) in by_builder.items():
            lines.append(f"{mu:>3} | {key:<12} | {eff:>10.3f} | {fake:>10.3f}")
    write_report("track_building", lines)

    # the walkthrough never loses efficiency to CC and cuts fakes at pileup
    for mu, by_builder in rows.items():
        assert by_builder["walkthrough"][0] >= by_builder["cc"][0] - 0.05
    assert rows[3]["walkthrough"][1] <= rows[3]["cc"][1] + 1e-9
