"""§III-B mechanism — small batches generalise better.

"minibatch stochastic gradient descent with small batches will oftentimes
converge better than full-batch gradient descent because of additional
noise [Keskar et al.]" — the reason the paper's tunable ShaDow batch size
beats full-graph training (whose effective batch is the whole event).

Regenerated as a batch-size sweep at a fixed epoch budget, ending at the
full-graph extreme.  Shape target: final validation F1 decreases
monotonically from the smallest batch to full-graph.
"""

from __future__ import annotations

import pytest

from common import write_report
from repro.pipeline import GNNTrainConfig, train_gnn

BATCHES = (32, 128, 512)
COMMON = dict(
    epochs=4, hidden=16, num_layers=2, mlp_layers=2,
    depth=2, fanout=4, lr=2e-3, seed=3,
)


def test_batch_size_generalisation(ex3_bench, benchmark):
    train, val = ex3_bench.train[:4], ex3_bench.val

    def run():
        rows = {}
        for bs in BATCHES:
            res = train_gnn(
                train, val,
                GNNTrainConfig(mode="bulk", bulk_k=4, batch_size=bs, **COMMON),
            )
            rows[bs] = (res.history.final.val_f1, res.trained_steps)
        res_full = train_gnn(train, val, GNNTrainConfig(mode="full", **COMMON))
        rows["full"] = (res_full.history.final.val_f1, res_full.trained_steps)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"Batch size vs generalisation (Ex3-like, {COMMON['epochs']} epochs)",
        f"{'batch':>6} | {'final F1':>8} | {'steps':>5}",
    ]
    for key, (f1, steps) in rows.items():
        lines.append(f"{str(key):>6} | {f1:>8.3f} | {steps:>5}")
    lines.append(
        "smaller batches = more, noisier steps per epoch = better final F1 "
        "(the paper's §III-B argument; full-graph is the large-batch extreme)"
    )
    write_report("batch_size", lines)

    f1s = [rows[bs][0] for bs in BATCHES]
    # monotone decline across the sweep...
    assert all(a > b for a, b in zip(f1s, f1s[1:])), f1s
    # ...and the full-graph extreme sits at/below the largest minibatch
    assert rows["full"][0] <= f1s[0]
    assert rows["full"][0] < f1s[0] - 0.05