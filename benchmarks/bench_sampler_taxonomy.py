"""Ablation — the sampler taxonomy the paper cites (Section II-B).

Node-wise (GraphSAGE), layer-wise (LADIES), and subgraph samplers (ShaDow,
GraphSAINT) make different cost/structure trades.  This bench samples the
same batches from an Ex3-like event with every sampler in the repository
and reports per-batch cost and sampled-subgraph size, with the bulk
(matrix-based) variants beside their sequential references.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from common import write_report
from repro.sampling import (
    BulkLayerWiseSampler,
    BulkNodeWiseSampler,
    BulkShadowSampler,
    LayerWiseSampler,
    NodeWiseSampler,
    SaintRWSampler,
    ShadowSampler,
)

BATCH = 128
REPEATS = 3


def _measure(sampler, graph, batches, rng):
    best = float("inf")
    nodes = edges = 0
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        outs = [sampler.sample(graph, b, rng) for b in batches]
        best = min(best, (time.perf_counter() - t0) / len(batches))
    nodes = int(np.mean([o.graph.num_nodes for o in outs]))
    edges = int(np.mean([o.graph.num_edges for o in outs]))
    return best, nodes, edges


def test_sampler_taxonomy(ex3_bench, benchmark):
    graph = ex3_bench.train[0]
    graph.to_csr(symmetric=True)
    rng = np.random.default_rng(0)
    batches = [
        rng.choice(graph.num_nodes, size=BATCH, replace=False) for _ in range(4)
    ]

    samplers = {
        "shadow (seq)": ShadowSampler(depth=2, fanout=4),
        "shadow (bulk)": BulkShadowSampler(depth=2, fanout=4),
        "node-wise (seq)": NodeWiseSampler([4, 4]),
        "node-wise (bulk)": BulkNodeWiseSampler([4, 4]),
        "layer-wise (seq)": LayerWiseSampler(layer_size=64, num_layers=2),
        "layer-wise (bulk)": BulkLayerWiseSampler(layer_size=64, num_layers=2),
        "saint-rw": SaintRWSampler(walk_length=2, num_walks_per_root=2),
    }

    def run():
        return {
            name: _measure(s, graph, batches, rng) for name, s in samplers.items()
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"Sampler taxonomy (Ex3-like event, batch {BATCH})",
        f"{'sampler':<17} | {'ms/batch':>8} | {'nodes':>6} | {'edges':>6}",
    ]
    for name, (t, nodes, edges) in rows.items():
        lines.append(f"{name:<17} | {1e3 * t:8.2f} | {nodes:>6} | {edges:>6}")
    write_report("sampler_taxonomy", lines)

    # matrix-based bulk variants beat their sequential references
    assert rows["shadow (bulk)"][0] < rows["shadow (seq)"][0]
    assert rows["node-wise (bulk)"][0] <= rows["node-wise (seq)"][0] * 1.2
    # ShaDow replicates the neighbourhood per root → largest subgraphs;
    # the shared-context samplers stay smaller
    assert rows["shadow (seq)"][1] > rows["saint-rw"][1]
    assert rows["shadow (seq)"][1] > rows["node-wise (seq)"][1]
