"""Ablation — gradient bucket size with compute overlap.

The paper's coalescing is the ``bucket = ∞`` limit of PyTorch DDP's
bucketed synchronisation.  Without overlap, bigger buckets are strictly
better (fewer α terms).  *With* overlap, one giant bucket cannot start
until backward finishes, so a sweet spot appears at intermediate sizes.
This bench sweeps the bucket size under the α–β model with the overlap
schedule of :func:`repro.distributed.overlapped_sync_time` and verifies
the bucketed synchroniser's gradients equal the coalesced ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import write_report
from repro.distributed import (
    NVLINK_A100,
    BucketedSynchronizer,
    DistributedDataParallel,
    SimCommunicator,
    overlapped_sync_time,
    partition_buckets,
    replicate_model,
)
from repro.models import IGNNConfig, InteractionGNN
from repro.nn import BCEWithLogitsLoss
from repro.graph import random_graph
from repro.tensor import Tensor

BACKWARD_SECONDS = 5e-3  # modeled backward duration of one step (A100-ish)
WORLD = 4


def test_bucket_size_sweep(benchmark):
    model = InteractionGNN(
        IGNNConfig(node_features=6, edge_features=2, hidden=64, num_layers=8)
    )
    sizes = [p.size * 4 for p in model.parameters()]
    kib = 1024

    def run():
        sweep = {}
        for bucket in (1, 4 * kib, 32 * kib, 256 * kib, 2**40):
            exposed = overlapped_sync_time(
                sizes, bucket, WORLD, BACKWARD_SECONDS, NVLINK_A100
            )
            sweep[bucket] = (len(partition_buckets(sizes, bucket)), exposed)
        return sweep

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"Bucketed all-reduce with overlap — exposed sync time per step "
        f"(P={WORLD}, backward={1e3 * BACKWARD_SECONDS:.0f} ms, "
        f"{sum(sizes) / 1e6:.2f} MB gradients)",
        f"{'bucket size':>12} | {'buckets':>7} | {'exposed':>9}",
    ]
    for bucket, (count, exposed) in sweep.items():
        label = "∞ (coalesced)" if bucket >= 2**40 else (
            "per-tensor" if bucket == 1 else f"{bucket // kib} KiB"
        )
        lines.append(f"{label:>12} | {count:>7} | {1e6 * exposed:7.0f} us")
    write_report("bucketing_overlap", lines)

    per_tensor = sweep[1][1]
    coalesced = sweep[2**40][1]
    best_mid = min(exposed for b, (_, exposed) in sweep.items() if 1 < b < 2**40)
    # with overlap, a moderate bucket beats both extremes
    assert best_mid <= coalesced + 1e-12
    assert best_mid < per_tensor

    # correctness: bucketed sync == coalesced sync, gradient-for-gradient
    def factory():
        return InteractionGNN(
            IGNNConfig(node_features=6, edge_features=2, hidden=8, num_layers=2, seed=0)
        )

    g = random_graph(60, 240, rng=np.random.default_rng(0))
    loss_fn = BCEWithLogitsLoss()
    labels = g.edge_labels.astype(np.float32)
    models_a = replicate_model(factory, WORLD)
    models_b = replicate_model(factory, WORLD)
    for models in (models_a, models_b):
        for rank, m in enumerate(models):
            m.zero_grad()
            loss_fn(m(Tensor(g.x), Tensor(g.y), g.rows, g.cols), labels).backward()
    DistributedDataParallel(models_a, SimCommunicator(WORLD), "coalesced").synchronize_gradients()
    BucketedSynchronizer(models_b, SimCommunicator(WORLD), bucket_bytes=8 * kib).synchronize_gradients()
    for (n1, p1), (_, p2) in zip(models_a[0].named_parameters(), models_b[0].named_parameters()):
        assert np.allclose(p1.grad, p2.grad, atol=1e-6), n1
