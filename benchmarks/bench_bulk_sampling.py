"""Section III-C ablation — bulk sampling speedup vs the number of
minibatches ``k`` sampled per step.

The point of matrix-based bulk sampling (Eq. 1) is amortisation: stacking
k batches' Q matrices pays the per-step fixed costs once.  The paper
observes sampling more minibatches in bulk as aggregate memory grows; this
bench sweeps k on both dataset shapes and reports the per-batch sampling
time relative to the sequential (PyG-style) sampler.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from common import BENCH_GNN, write_report
from repro.sampling import BulkShadowSampler, ShadowSampler

BATCH = 128
KS = (1, 2, 4, 8, 16)


def _per_batch_time(sampler, graph, batches, rng, bulk: bool, repeats: int = 5) -> float:
    """Best-of-``repeats`` per-batch wall-clock (min filters scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        if bulk:
            sampler.sample_bulk(graph, batches, rng)
        else:
            for b in batches:
                sampler.sample(graph, b, rng)
        best = min(best, (time.perf_counter() - t0) / len(batches))
    return best


def _sweep(graph, rng):
    graph.to_csr(symmetric=True)  # warm
    seq = ShadowSampler(BENCH_GNN["depth"], BENCH_GNN["fanout"])
    bulk = BulkShadowSampler(BENCH_GNN["depth"], BENCH_GNN["fanout"])
    batches16 = [
        rng.choice(graph.num_nodes, size=min(BATCH, graph.num_nodes // 2), replace=False)
        for _ in range(max(KS))
    ]
    t_seq = _per_batch_time(seq, graph, batches16, rng, bulk=False, repeats=3)
    out = {}
    for k in KS:
        t_bulk = _per_batch_time(bulk, graph, batches16[:k], rng, bulk=True)
        out[k] = (t_seq, t_bulk, t_seq / t_bulk)
    return out


def test_bulk_sampling_amortisation(ex3_bench, ctd_bench, benchmark):
    rng = np.random.default_rng(0)

    def run():
        return {
            "ex3": _sweep(ex3_bench.train[0], rng),
            "ctd": _sweep(ctd_bench.train[0], rng),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"Bulk ShaDow amortisation — per-batch sampling time vs k "
        f"(batch {BATCH}, d={BENCH_GNN['depth']}, s={BENCH_GNN['fanout']})",
        f"{'dataset':<8} | {'k':>3} | {'seq ms/batch':>12} | {'bulk ms/batch':>13} | speedup",
    ]
    for name, sweep in results.items():
        for k, (t_seq, t_bulk, speedup) in sweep.items():
            lines.append(
                f"{name:<8} | {k:>3} | {1e3 * t_seq:12.2f} | {1e3 * t_bulk:13.2f} | {speedup:5.2f}x"
            )
    write_report("bulk_sampling_k_sweep", lines)

    for name, sweep in results.items():
        # bulk beats sequential at every k (paper: increased utilisation)
        assert all(sweep[k][2] > 1.0 for k in KS), name
        # amortisation: some k > 1 is at least as cheap per batch as k = 1
        best_multi = min(sweep[k][1] for k in KS if k > 1)
        assert best_multi <= sweep[1][1] * 1.1, name
