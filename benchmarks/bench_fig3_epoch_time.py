"""Figure 3 — epoch time across GPU counts.

Regenerates both panels: per-epoch sampling + training time for the
Exa.TrkX GNN stage, comparing

* **PyG baseline** — sequential ShaDow sampling (Algorithm 2, one batch at
  a time) with per-parameter all-reduce;
* **ours** — matrix-based bulk ShaDow sampling of ``k`` batches per step
  (k grows with the rank count, as in the paper: more aggregate memory
  lets more batches be sampled in bulk) with the coalesced all-reduce.

Measurement model (EXPERIMENTS.md): compute phases are *measured* on one
CPU rank and divided by P (DDP shards every batch), communication is
charged by the α–β NVLink model — we have one CPU, not a 4×A100 node.
Shape targets: ours faster than the baseline at every P (paper: 1.3–2×),
and epoch time falling as P grows.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import pytest

from common import BENCH_GNN, write_report
from repro.distributed import NVLINK_A100
from repro.models import IGNNConfig, InteractionGNN
from repro.pipeline import GNNTrainConfig, train_gnn
from repro.perf import EpochBreakdown, ScalingCurve, project_epoch_time
from repro.sampling import BulkShadowSampler, ShadowSampler, epoch_batches, group_batches
from repro.graph import shard_batch

BATCH = 128
BULK_K_BASE = 2


def _param_sizes_bytes(graphs) -> List[int]:
    cfg = IGNNConfig(
        node_features=graphs[0].num_node_features,
        edge_features=graphs[0].num_edge_features,
        hidden=BENCH_GNN["hidden"],
        num_layers=BENCH_GNN["num_layers"],
        mlp_layers=BENCH_GNN["mlp_layers"],
    )
    model = InteractionGNN(cfg)
    return [p.size * 4 for p in model.parameters()]


def _measure_serial(train_graphs, val_graphs, mode: str, k: int):
    cfg = GNNTrainConfig(
        mode=mode,
        epochs=1,
        batch_size=BATCH,
        bulk_k=k,
        eval_every=10_000,  # skip eval: Figure 3 times training only
        **BENCH_GNN,
    )
    res = train_gnn(train_graphs, val_graphs, cfg)
    return res


def _sampling_time_at(graphs, mode: str, k: int, world: int, seed: int = 0) -> float:
    """Serial sampling wall-clock for one epoch at rank count ``world``
    (each rank samples its own shard; we run ranks sequentially)."""
    import time

    sampler = (
        BulkShadowSampler(BENCH_GNN["depth"], BENCH_GNN["fanout"])
        if mode == "bulk"
        else ShadowSampler(BENCH_GNN["depth"], BENCH_GNN["fanout"])
    )
    rng = np.random.default_rng(seed)
    for g in graphs:
        g.to_csr(symmetric=True)  # warm adjacency cache
    t0 = time.perf_counter()
    for graph, group in group_batches(epoch_batches(graphs, BATCH, rng), k):
        for rank in range(world):
            shards = [shard_batch(b, rank, world) for b in group]
            if mode == "bulk":
                sampler.sample_bulk(graph, shards, rng)
            else:
                for s in shards:
                    sampler.sample(graph, s, rng)
    return time.perf_counter() - t0


def _fig3_panel(name: str, dataset, process_counts, benchmark=None) -> List[str]:
    train, val = dataset.train, dataset.val
    sizes = _param_sizes_bytes(train)

    base = _measure_serial(train, val, "shadow", 1)
    ours = _measure_serial(train, val, "bulk", BULK_K_BASE)
    steps = base.trained_steps

    lines = [
        f"Figure 3 ({name}) — epoch time [s] vs process count "
        f"(batch {BATCH}, d={BENCH_GNN['depth']}, s={BENCH_GNN['fanout']})",
        f"{'P':>2} | {'pipeline':<22} | {'sample':>8} | {'train':>8} | {'comm':>8} | {'total':>8} | speedup",
    ]
    rows: Dict[int, Dict[str, float]] = {}
    for p in process_counts:
        # baseline: sequential sampling scales 1/P; per-parameter all-reduce
        comm_base = steps * NVLINK_A100.allreduce_sequence_time(sizes, p)
        b = project_epoch_time(
            EpochBreakdown(
                base.timers.total("sampling"), base.timers.total("training"), 0.0
            ),
            p,
            comm_base,
        )
        # ours: bulk sampling with k growing with aggregate memory (k = k0·P)
        sample_ours = _sampling_time_at(train, "bulk", BULK_K_BASE * p, 1)
        comm_ours = steps * NVLINK_A100.coalesced_time(sizes, p)
        o = project_epoch_time(
            EpochBreakdown(sample_ours, ours.timers.total("training"), 0.0),
            p,
            comm_ours,
        )
        speedup = b.total_seconds / o.total_seconds
        rows[p] = {"base": b.total_seconds, "ours": o.total_seconds, "speedup": speedup}
        lines.append(
            f"{p:>2} | {'PyG ShaDow baseline':<22} | {b.sampling_seconds:8.2f} | "
            f"{b.training_seconds:8.2f} | {b.comm_modeled_seconds:8.3f} | {b.total_seconds:8.2f} |"
        )
        lines.append(
            f"{p:>2} | {'ours (bulk k=' + str(BULK_K_BASE * p) + ' +coal.)':<22} | "
            f"{o.sampling_seconds:8.2f} | {o.training_seconds:8.2f} | "
            f"{o.comm_modeled_seconds:8.3f} | {o.total_seconds:8.2f} | {speedup:5.2f}x"
        )
    # Amdahl strong-scaling fit per pipeline (the communication term is the
    # dominant non-dividing cost; coalescing shrinks it)
    for key, label in (("base", "baseline"), ("ours", "ours")):
        curve = ScalingCurve(
            tuple(process_counts), tuple(rows[p][key] for p in process_counts)
        )
        lines.append(
            f"Amdahl serial fraction ({label}): "
            f"{100 * curve.serial_fraction:.1f}%"
        )
    return lines, rows


@pytest.mark.parametrize("panel", ["ex3"])
def test_fig3_epoch_time_ex3(ex3_bench, benchmark, panel):
    process_counts = (1, 2, 4, 8)  # the paper scans Ex3 up to 8 GPUs

    def run():
        return _fig3_panel("Ex3-like", ex3_bench, process_counts)

    lines, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("fig3_epoch_time_ex3", lines)

    # shape: ours beats the baseline at every P (paper: 1.3–2×)
    for p in process_counts:
        assert rows[p]["speedup"] > 1.0, f"P={p}: no speedup"
    # shape: epoch time falls with more processes for both pipelines
    totals_base = [rows[p]["base"] for p in process_counts]
    totals_ours = [rows[p]["ours"] for p in process_counts]
    assert totals_base[0] > totals_base[-1]
    assert totals_ours[0] > totals_ours[-1]


@pytest.mark.parametrize("panel", ["ctd"])
def test_fig3_epoch_time_ctd(ctd_bench, benchmark, panel):
    process_counts = (1, 2, 4)  # the paper scans CTD up to 4 GPUs

    def run():
        return _fig3_panel("CTD-like", ctd_bench, process_counts)

    lines, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines.append("note: paper reports the PyG baseline timing out at P=4 on CTD")
    write_report("fig3_epoch_time_ctd", lines)

    for p in process_counts:
        assert rows[p]["speedup"] > 1.0, f"P={p}: no speedup"
    assert rows[1]["ours"] > rows[4]["ours"]
