"""Section III-B motivation — full-graph training skips events that exceed
GPU memory; minibatch training trains on everything.

Sweeps the device activation budget and reports the fraction of training
graphs the full-graph regime would skip, against the fixed (and small)
footprint of a ShaDow minibatch.  Shape targets: the skip fraction rises
as capacity shrinks, dense CTD-like events are skipped before sparse
Ex3-like ones, and the minibatch footprint stays below every capacity
that already forces full-graph skips.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import BENCH_GNN, write_report
from repro.memory import ActivationMemoryModel
from repro.models import IGNNConfig
from repro.sampling import BulkShadowSampler

BATCH = 128


def _model_for(graphs):
    return ActivationMemoryModel(
        IGNNConfig(
            node_features=graphs[0].num_node_features,
            edge_features=graphs[0].num_edge_features,
            hidden=BENCH_GNN["hidden"],
            num_layers=BENCH_GNN["num_layers"],
            mlp_layers=BENCH_GNN["mlp_layers"],
        )
    )


def _minibatch_footprint(graphs, memory) -> int:
    """Activation bytes of one sampled ShaDow batch (the alternative cost)."""
    sampler = BulkShadowSampler(BENCH_GNN["depth"], BENCH_GNN["fanout"])
    rng = np.random.default_rng(0)
    sizes = []
    for g in graphs:
        batch = rng.choice(g.num_nodes, size=min(BATCH, g.num_nodes // 2), replace=False)
        sb = sampler.sample(g, batch, rng)
        sizes.append(memory.total_bytes(sb.graph.num_nodes, sb.graph.num_edges))
    return int(np.max(sizes))


def test_memory_skipping(ex3_bench, ctd_bench, benchmark):
    def run():
        out = {}
        for name, ds in (("ex3", ex3_bench), ("ctd", ctd_bench)):
            graphs = ds.train
            memory = _model_for(graphs)
            footprints = np.array(
                [memory.total_bytes(g.num_nodes, g.num_edges) for g in graphs]
            )
            mb = _minibatch_footprint(graphs, memory)
            out[name] = (footprints, mb)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    ex3_fp, ex3_mb = results["ex3"]
    ctd_fp, ctd_mb = results["ctd"]
    capacities = np.geomspace(
        min(ex3_fp.min(), ctd_fp.min()) / 4, max(ex3_fp.max(), ctd_fp.max()) * 1.2, 8
    )

    lines = [
        "Full-graph skip fraction vs device activation budget "
        f"(IGNN h={BENCH_GNN['hidden']}, L={BENCH_GNN['num_layers']})",
        f"{'capacity MB':>11} | {'ex3 skipped':>11} | {'ctd skipped':>11}",
    ]
    skip_curves = {"ex3": [], "ctd": []}
    for cap in capacities:
        fe = float(np.mean(ex3_fp > cap))
        fc = float(np.mean(ctd_fp > cap))
        skip_curves["ex3"].append(fe)
        skip_curves["ctd"].append(fc)
        lines.append(f"{cap / 1e6:11.1f} | {100 * fe:10.0f}% | {100 * fc:10.0f}%")
    lines.append(
        f"ShaDow minibatch footprint: ex3 {ex3_mb / 1e6:.1f} MB, ctd {ctd_mb / 1e6:.1f} MB "
        "(trains at every capacity above)"
    )
    write_report("memory_skip", lines)

    # skip fraction is monotone non-increasing in capacity
    for name in ("ex3", "ctd"):
        assert all(a >= b - 1e-12 for a, b in zip(skip_curves[name], skip_curves[name][1:]))
    # dense CTD events overflow before sparse Ex3 events
    assert ctd_fp.mean() > ex3_fp.mean()
    # minibatch footprint is far below a full dense event
    assert ctd_mb < 0.5 * ctd_fp.max()
