"""Ablation — all-reduce algorithm choice × gradient coalescing.

NCCL switches between ring and tree algorithms by message size; the
coalescing optimisation (Section III-D) moves the gradient traffic from
the many-small-message regime (where per-call latency α dominates and the
log-depth algorithms shine) to the single-large-message regime (where the
bandwidth-optimal ring/halving-doubling win).  This bench crosses the two
axes with the α–β models and checks the numerical algorithms agree with
the direct sum.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import BENCH_GNN, write_report
from repro.distributed import (
    NVLINK_A100,
    halving_doubling_allreduce,
    halving_doubling_time,
    ring_allreduce,
    tree_allreduce,
    tree_time,
)
from repro.models import IGNNConfig, InteractionGNN


def _param_sizes():
    model = InteractionGNN(
        IGNNConfig(
            node_features=6,
            edge_features=2,
            hidden=64,        # the paper's full hidden width
            num_layers=8,     # and depth — this ablation is pure modeling
            mlp_layers=BENCH_GNN["mlp_layers"],
        )
    )
    return [p.size * 4 for p in model.parameters()]


def test_allreduce_algorithms(benchmark):
    sizes = _param_sizes()
    total = sum(sizes)
    alpha, beta = NVLINK_A100.alpha, NVLINK_A100.beta

    models = {
        "ring": lambda n, p: NVLINK_A100.allreduce_time(n, p),
        "halving-doubling": lambda n, p: halving_doubling_time(n, p, alpha, beta),
        "tree": lambda n, p: tree_time(n, p, alpha, beta),
    }

    def run():
        rows = {}
        for name, fn in models.items():
            for p in (2, 4, 8):
                per_param = sum(fn(s, p) for s in sizes)
                coalesced = fn(total, p)
                rows[(name, p)] = (per_param, coalesced)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"All-reduce algorithm × coalescing — modeled sync time per step "
        f"(paper-scale IGNN: {len(sizes)} tensors, {total / 1e6:.2f} MB)",
        f"{'algorithm':<17} | {'P':>2} | {'per-param':>10} | {'coalesced':>10} | coalescing gain",
    ]
    for (name, p), (per_param, coalesced) in rows.items():
        lines.append(
            f"{name:<17} | {p:>2} | {1e6 * per_param:8.0f} us | "
            f"{1e6 * coalesced:8.0f} us | {per_param / coalesced:6.1f}x"
        )
    write_report("allreduce_algorithms", lines)

    # numerical cross-check: all three algorithms equal the direct sum
    rng = np.random.default_rng(0)
    bufs = [rng.normal(size=257).astype(np.float32) for _ in range(8)]
    direct = np.sum([b.astype(np.float64) for b in bufs], axis=0).astype(np.float32)
    for algo in (ring_allreduce, halving_doubling_allreduce, tree_allreduce):
        for out in algo(bufs):
            assert np.allclose(out, direct, atol=1e-3)

    # shapes
    for p in (2, 4, 8):
        # coalescing helps under every algorithm
        for name in models:
            per_param, coalesced = rows[(name, p)]
            assert per_param > coalesced
        # small messages: log-depth algorithms beat the ring at P=8
        if p == 8:
            assert rows[("halving-doubling", p)][0] < rows[("ring", p)][0]
        # halving–doubling (log latency + bandwidth-optimal) never loses
        assert rows[("halving-doubling", p)][1] <= rows[("ring", p)][1] + 1e-12
        assert rows[("halving-doubling", p)][1] <= rows[("tree", p)][1] + 1e-12
    # with a large coalesced buffer at small P the bandwidth term rules:
    # ring beats tree
    assert rows[("ring", 2)][1] < rows[("tree", 2)][1]
