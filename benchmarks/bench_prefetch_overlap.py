"""Async data pipeline — sampler/compute overlap efficiency.

The trainer historically ran sampling and GNN compute strictly
sequentially, so epoch time was their *sum* (the Figure-3 stacking).
With :class:`repro.data.PrefetchLoader` the sampler runs on background
threads while the model trains on the previous bulk step; the SpGEMMs
and BLAS kernels release the GIL, so the overlap is genuine even on one
process.  This bench trains the same configuration at several worker
counts and reports:

* epoch wall-clock and the trainer-thread sampling *stall* (with
  workers, the stall is what remains of sampling time after overlap);
* the loader's overlap efficiency (fraction of sampler seconds hidden);
* a bit-identity check — the determinism contract means every worker
  count must produce the same final weights, so the speedup is free.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import BENCH_GNN, write_report
from repro.pipeline import GNNTrainConfig, train_gnn

WORKER_COUNTS = (0, 2, 4)
EPOCHS = 2


def _config(workers: int) -> GNNTrainConfig:
    return GNNTrainConfig(
        mode="bulk",
        epochs=EPOCHS,
        batch_size=128,
        bulk_k=4,
        eval_every=EPOCHS,  # keep eval cost out of the per-epoch timing
        seed=0,
        prefetch_workers=workers,
        prefetch_depth=2,
        **BENCH_GNN,
    )


def _run(dataset, workers: int):
    result = train_gnn(dataset.train, dataset.val, _config(workers))
    records = result.history.records
    return {
        "state": result.model.state_dict(),
        "epoch_s": float(np.mean([r.epoch_seconds for r in records])),
        "stall_s": float(np.mean([r.sampling_seconds for r in records])),
        "train_s": float(np.mean([r.training_seconds for r in records])),
    }


def test_prefetch_overlap(ex3_bench, benchmark):
    results = benchmark.pedantic(
        lambda: {w: _run(ex3_bench, w) for w in WORKER_COUNTS},
        rounds=1,
        iterations=1,
    )

    sync = results[0]
    lines = [
        f"Prefetch overlap — bulk mode, k=4, batch 128, {EPOCHS} epochs "
        f"(depth {BENCH_GNN['depth']}, fanout {BENCH_GNN['fanout']})",
        f"{'workers':>7} | {'epoch s':>8} | {'stall s':>8} | {'hidden':>7} | identical",
    ]
    for w in WORKER_COUNTS:
        r = results[w]
        hidden = 1.0 - r["stall_s"] / sync["stall_s"] if sync["stall_s"] else 0.0
        identical = all(
            np.array_equal(r["state"][k], sync["state"][k]) for k in sync["state"]
        )
        lines.append(
            f"{w:>7} | {r['epoch_s']:8.3f} | {r['stall_s']:8.3f} | "
            f"{100 * hidden:6.1f}% | {identical}"
        )
    write_report("prefetch_overlap", lines)

    # determinism contract: every worker count → bit-identical weights
    for w in WORKER_COUNTS[1:]:
        for key in sync["state"]:
            assert np.array_equal(results[w]["state"][key], sync["state"][key]), (w, key)
    # overlap hides a real fraction of sampling: the trainer-thread stall
    # with workers must undercut the synchronous sampling time
    best_stall = min(results[w]["stall_s"] for w in WORKER_COUNTS[1:])
    assert best_stall < sync["stall_s"]
