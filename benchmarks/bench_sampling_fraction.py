"""Section III-C claim — "GNN sampling takes roughly 50% of the total GNN
training time in the Exa.TrkX pipeline" (and, from the introduction,
"sampling algorithms frequently take up to 60% of the total training
time").

Regenerated as the sampling fraction of one baseline (sequential-ShaDow)
epoch.  Exact fractions depend on the compute substrate; the shape target
is that sampling is a *major* cost in the baseline (tens of percent) and
that bulk sampling collapses it to a small fraction.
"""

from __future__ import annotations

import pytest

from common import BENCH_GNN, write_report
from repro.pipeline import GNNTrainConfig, train_gnn


def _fraction(result):
    s = result.timers.total("sampling")
    t = result.timers.total("training")
    return s / (s + t)


def test_sampling_fraction(ex3_bench, benchmark):
    train, val = ex3_bench.train, ex3_bench.val
    # The paper's d=3, s=6 ShaDow operating point.  The GNN is kept light
    # (hidden 16, 2 layers) because the claim concerns the GPU regime,
    # where the network compute is fast relative to the Python-side
    # sampler; a heavier CPU network would bury the sampling share under
    # matmul time that an A100 would execute in microseconds.
    cfg = dict(BENCH_GNN, depth=3, fanout=6, hidden=16, num_layers=2)

    def run():
        base = train_gnn(
            train,
            val,
            GNNTrainConfig(mode="shadow", epochs=1, batch_size=128, eval_every=10_000, **cfg),
        )
        ours = train_gnn(
            train,
            val,
            GNNTrainConfig(mode="bulk", bulk_k=8, epochs=1, batch_size=128, eval_every=10_000, **cfg),
        )
        return base, ours

    base, ours = benchmark.pedantic(run, rounds=1, iterations=1)
    f_base, f_ours = _fraction(base), _fraction(ours)

    write_report(
        "sampling_fraction",
        [
            "Sampling share of GNN epoch time (Ex3-like, d=3, s=6)",
            f"sequential ShaDow (baseline): {100 * f_base:5.1f}%  (paper: ~50%)",
            f"matrix-based bulk (ours):     {100 * f_ours:5.1f}%",
            f"sampling-time reduction: {base.timers.total('sampling') / ours.timers.total('sampling'):.1f}x",
        ],
    )

    # shape: sampling is a major cost of the baseline...
    assert f_base > 0.2
    # ...and the bulk sampler reduces both the share and the absolute time
    assert f_ours < f_base
    assert ours.timers.total("sampling") < 0.5 * base.timers.total("sampling")
