"""Shared infrastructure for the benchmark harness.

Every table/figure of the paper has one bench module; they share the
scaled-down dataset builders (cached on disk under ``.bench_cache``) and a
report registry whose lines are flushed to both stdout and
``benchmarks/results/<name>.txt`` so the regenerated tables survive
pytest's output capture.

Scaling note (documented in EXPERIMENTS.md): the bench datasets keep the
paper's *density* targets (edges per vertex ≈ 3.7 for Ex3, ≈ 21 for CTD)
and feature/MLP-depth metadata, at vertex counts and epoch budgets sized
for a CPU test runner.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import replace
from typing import Iterator, List

from repro.detector import TrackingDataset, dataset_config, make_dataset
from repro.obs import RunTelemetry, use_telemetry

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
CACHE_DIR = os.path.join(BENCH_DIR, ".bench_cache")
RESULTS_DIR = os.path.join(BENCH_DIR, "results")
TELEMETRY_DIR = os.path.join(RESULTS_DIR, "telemetry")

# GNN-stage hyper-parameters for benches: same structure as the paper's
# (ShaDow minibatch IGNN), scaled in width/depth/epochs for CPU.
BENCH_GNN = dict(hidden=32, num_layers=4, mlp_layers=2, depth=2, fanout=4)


def ex3_bench_dataset() -> TrackingDataset:
    """Ex3-like bench split: 8 train / 2 val / 2 test graphs."""
    cfg = dataset_config("ex3_like").with_sizes(8, 2, 2)
    return make_dataset(cfg, cache_dir=CACHE_DIR)


def ctd_bench_dataset() -> TrackingDataset:
    """CTD-like bench split: smaller absolute events (~1.2K vertices) with
    the full CTD edge density (~21 edges/vertex), 2/1/1 graphs.

    The windows are wider than the registry's because window occupancy
    scales with hit multiplicity — at 120 particles/event the registry
    windows would land at ~11 edges/vertex instead of Table I's ~21.
    """
    from repro.detector.builders import GeometricBuilderConfig

    base = dataset_config("ctd_like")
    cfg = replace(
        base,
        particles_per_event=120,
        num_train=2,
        num_val=1,
        num_test=1,
        builder=GeometricBuilderConfig(
            dphi_max=0.30, dz_max=600.0, max_layer_skip=3, feature_scheme="rich"
        ),
    )
    return make_dataset(cfg, cache_dir=CACHE_DIR)


@contextmanager
def bench_telemetry(name: str) -> Iterator[RunTelemetry]:
    """Attach a tracer/metrics registry for the duration of one bench.

    Every instrumented hot path (samplers, trainers, the simulated
    communicator, pipeline stages) records into it, and on exit the
    trace + metrics snapshot land under
    ``benchmarks/results/telemetry/<name>.{trace,metrics}.json`` — a
    machine-readable profile comparable across ``BENCH_*`` runs.
    """
    telemetry = RunTelemetry.for_run(bench=name)
    with use_telemetry(telemetry):
        yield telemetry
    os.makedirs(TELEMETRY_DIR, exist_ok=True)
    telemetry.write_trace(os.path.join(TELEMETRY_DIR, f"{name}.trace.json"))
    telemetry.write_metrics(os.path.join(TELEMETRY_DIR, f"{name}.metrics.json"))


def write_report(name: str, lines: List[str]) -> str:
    """Print a result block and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    text = "\n".join(lines)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n===== {name} =====")
    print(text)
    return path
