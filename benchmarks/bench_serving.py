"""Serving engine — batched throughput vs the sequential per-event loop.

The acceptance experiment for ``repro.serve``: a stream of reconstruction
requests (with replays, as production calibration/trigger sweeps produce)
is served two ways —

* **sequential**: the plain per-event ``Pipeline.reconstruct`` loop every
  offline script uses;
* **engine**: the micro-batching :class:`repro.serve.InferenceEngine`,
  which fuses the embedding/filter forwards across each micro-batch and
  answers replayed events from the stage cache.

The bench asserts ≥1.5× engine throughput, bit-identical tracks, and —
from the run's telemetry export — reports p50/p99 latency plus the
shed/degraded/cache-hit counters, with a deterministic overload segment
(fixed modelled service time on a simulated clock) driving the
shedding/degradation numbers.
"""

from __future__ import annotations

import time

import numpy as np

from common import write_report
from repro.detector import DetectorGeometry, EventSimulator, ParticleGun
from repro.faults import SimClock
from repro.pipeline import ExaTrkXPipeline, GNNTrainConfig, PipelineConfig
from repro.serve import InferenceEngine, LoadGenConfig, ServeConfig, run_loadgen

UNIQUE_EVENTS = 4
REPLAYS = 6  # each unique event appears this many times in the stream


def _fitted_pipeline():
    """Small pipeline in the paper's serving-relevant regime: wide
    embedding/filter MLPs (the Exa.TrkX stages use hidden 512), so the
    upstream stages the engine fuses and caches carry most of the
    per-event cost."""
    geometry = DetectorGeometry.barrel_only()
    sim = EventSimulator(
        geometry, gun=ParticleGun(), particles_per_event=25, noise_fraction=0.05
    )
    events = [
        sim.generate(np.random.default_rng(100 + i), event_id=i) for i in range(6)
    ]
    config = PipelineConfig(
        embedding_dim=8,
        embedding_hidden=256,
        filter_hidden=256,
        mlp_layers=3,
        embedding_epochs=6,
        filter_epochs=6,
        frnn_radius=0.3,
        gnn=GNNTrainConfig(
            mode="bulk",
            epochs=3,
            batch_size=64,
            hidden=16,
            num_layers=2,
            mlp_layers=2,
            depth=2,
            fanout=4,
            bulk_k=4,
        ),
    )
    pipe = ExaTrkXPipeline(config, geometry)
    pipe.fit(events[:4], events[4:5])
    serve_events = [
        sim.generate(np.random.default_rng(900 + i), event_id=100 + i)
        for i in range(UNIQUE_EVENTS)
    ]
    return pipe, serve_events


def test_serving_throughput(benchmark, bench_profile):
    pipe, serve_events = _fitted_pipeline()
    stream = serve_events * REPLAYS

    def run():
        t0 = time.perf_counter()
        sequential = [pipe.reconstruct(e) for e in stream]
        t_seq = time.perf_counter() - t0
        engine = InferenceEngine(
            pipe, ServeConfig(max_batch_events=UNIQUE_EVENTS, workers=0)
        )
        t0 = time.perf_counter()
        requests = engine.process(stream)
        t_eng = time.perf_counter() - t0
        return sequential, requests, engine, t_seq, t_eng

    sequential, requests, engine, t_seq, t_eng = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # parity: the engine must reproduce the sequential loop bit for bit
    for seq, req in zip(sequential, requests):
        assert req.status == "done"
        assert len(seq) == len(req.tracks)
        for a, b in zip(seq, req.tracks):
            assert np.array_equal(a, b)

    # deterministic overload segment: fixed service model on a SimClock
    overload = InferenceEngine(
        pipe,
        ServeConfig(
            max_batch_events=UNIQUE_EVENTS,
            max_wait_ms=5.0,
            max_queue_events=8,
            latency_budget_ms=25.0,
            sim_service_time_s=0.05,
        ),
        clock=SimClock(),
    )
    load_report = run_loadgen(
        overload,
        serve_events,
        LoadGenConfig(rate=400.0, num_requests=48, arrival="poisson", seed=1),
    )

    counters = bench_profile.metrics.to_dict()["counters"]
    latency = bench_profile.metrics.histogram("serve.latency_ms").summary()
    speedup = t_seq / t_eng
    n = len(stream)
    lines = [
        f"Serving engine vs sequential loop — {n} requests "
        f"({UNIQUE_EVENTS} unique events x {REPLAYS} replays)",
        f"sequential loop : {t_seq:7.3f} s  ({n / t_seq:7.1f} ev/s)",
        f"serving engine  : {t_eng:7.3f} s  ({n / t_eng:7.1f} ev/s)   "
        f"speedup {speedup:.2f}x",
        f"stage cache     : {engine.stats.cache_hits} hits / "
        f"{engine.stats.cache_misses} misses",
        f"engine latency  : p50={latency['p50']:.2f} ms  "
        f"p99={latency['p99']:.2f} ms  (wall-clock serve segment)",
        "",
        f"overload segment (rate 400/s, service 50 ms, queue 8, budget 25 ms):",
        f"  shed {load_report.shed} / degraded {load_report.degraded} "
        f"of {load_report.offered} offered "
        f"(sim latency p50={load_report.latency_p50_ms:.1f} ms "
        f"p99={load_report.latency_p99_ms:.1f} ms)",
        f"telemetry counters: submitted="
        f"{counters.get('serve.requests.submitted', 0):.0f} "
        f"completed={counters.get('serve.requests.completed', 0):.0f} "
        f"shed={counters.get('serve.requests.shed', 0):.0f} "
        f"degraded={counters.get('serve.requests.degraded', 0):.0f} "
        f"cache.hits={counters.get('serve.cache.hits', 0):.0f}",
    ]
    write_report("serving_throughput", lines)

    assert speedup >= 1.5, f"engine speedup {speedup:.2f}x below the 1.5x bar"
    assert engine.stats.cache_hits == (REPLAYS - 1) * UNIQUE_EVENTS
    assert load_report.shed > 0
    assert load_report.degraded > 0
    assert counters["serve.requests.shed"] > 0
