"""Out-of-core event store — epoch throughput vs shard-cache budget.

Streams the same bulk training run from an on-disk store at several
resident-byte budgets (LRU windows of memory-mapped CSR shards) and
compares against the fully in-RAM loader.  Reported per budget:

* mean epoch wall-clock and its ratio to the in-RAM baseline — the cost
  of re-mapping evicted shards;
* shard-cache hit rate, eviction count, and the peak mapped bytes (must
  stay within the budget);
* a bit-identity check — the store's canonical CSR order means every
  budget, and the in-RAM path, must converge to identical weights.

The telemetry profile of the whole sweep (``store.*`` spans/counters)
lands under ``benchmarks/results/telemetry/`` via the bench harness.
"""

from __future__ import annotations

import os

import numpy as np

from common import BENCH_GNN, CACHE_DIR, write_report
from repro.detector import dataset_config
from repro.pipeline import GNNTrainConfig, train_gnn
from repro.store import EventStore, ingest_simulated

EPOCHS = 2
#: Budgets as fractions of total store bytes (None = unbudgeted).
BUDGET_FRACTIONS = (0.25, 0.5, None)


def _config() -> GNNTrainConfig:
    return GNNTrainConfig(
        mode="bulk",
        epochs=EPOCHS,
        batch_size=128,
        bulk_k=4,
        eval_every=EPOCHS,  # keep eval cost out of the per-epoch timing
        seed=0,
        **BENCH_GNN,
    )


def _ingest() -> str:
    directory = os.path.join(CACHE_DIR, "event_store_bench")
    cfg = dataset_config("ex3_like").with_sizes(8, 2, 0)
    total = ingest_simulated(cfg, directory, overwrite=True).bytes_written
    # many small shards so fractional budgets produce real LRU traffic
    ingest_simulated(
        cfg, directory, overwrite=True, max_shard_bytes=max(total // 12, 1)
    )
    return directory


def _run(directory: str, budget):
    with EventStore(directory, budget_bytes=budget) as store:
        result = train_gnn(store.handles("train"), store.handles("val"), _config())
        stats = store.stats
        return {
            "state": result.model.state_dict(),
            "epoch_s": float(
                np.mean([r.epoch_seconds for r in result.history.records])
            ),
            "hit_rate": stats.hit_rate(),
            "unmaps": stats.unmaps,
            "peak_mb": stats.peak_resident_bytes / (1 << 20),
        }


def _run_in_ram(directory: str):
    with EventStore(directory) as store:
        train, val = store.load_split("train"), store.load_split("val")
    result = train_gnn(train, val, _config())
    return {
        "state": result.model.state_dict(),
        "epoch_s": float(np.mean([r.epoch_seconds for r in result.history.records])),
    }


def test_event_store_budget_sweep(benchmark):
    directory = _ingest()
    with EventStore(directory) as store:
        total = store.describe()["bytes"]
        largest = max(s["bytes"] for s in store.manifest["shards"])
    budgets = [
        max(int(frac * total), largest) if frac is not None else None
        for frac in BUDGET_FRACTIONS
    ]

    def sweep():
        out = {"ram": _run_in_ram(directory)}
        for frac, budget in zip(BUDGET_FRACTIONS, budgets):
            out[frac] = _run(directory, budget)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    ram = results["ram"]
    lines = [
        f"Event store — streamed epoch time vs shard-cache budget "
        f"(store {total / (1 << 20):.2f} MB, bulk k=4, batch 128, {EPOCHS} epochs)",
        f"{'budget':>10} | {'epoch s':>8} | {'vs RAM':>7} | {'hit rate':>8} | "
        f"{'evict':>5} | {'peak MB':>7} | identical",
        f"{'in-RAM':>10} | {ram['epoch_s']:8.3f} | {'1.00x':>7} | {'—':>8} | "
        f"{'—':>5} | {'—':>7} | True",
    ]
    for frac, budget in zip(BUDGET_FRACTIONS, budgets):
        r = results[frac]
        label = "unbounded" if budget is None else f"{budget / (1 << 20):.2f} MB"
        identical = all(
            np.array_equal(r["state"][k], ram["state"][k]) for k in ram["state"]
        )
        lines.append(
            f"{label:>10} | {r['epoch_s']:8.3f} | "
            f"{r['epoch_s'] / ram['epoch_s']:6.2f}x | {r['hit_rate']:8.2f} | "
            f"{r['unmaps']:>5} | {r['peak_mb']:7.2f} | {identical}"
        )
    write_report("event_store_budget", lines)

    # the store's canonical CSR order makes every path bit-identical
    for frac in BUDGET_FRACTIONS:
        for key in ram["state"]:
            assert np.array_equal(results[frac]["state"][key], ram["state"][key]), (
                frac,
                key,
            )
    # the tightest budget actually evicted, and stayed within bounds
    tightest = results[BUDGET_FRACTIONS[0]]
    assert tightest["unmaps"] > 0
    assert tightest["peak_mb"] * (1 << 20) <= budgets[0] + 1
