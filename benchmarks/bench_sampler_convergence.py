"""Ablation — does the sampler family matter for convergence?

The paper adopts ShaDow for the Exa.TrkX pipeline; the taxonomy it cites
offers node-wise and subgraph alternatives.  This bench trains the same
IGNN under four minibatch regimes (ShaDow bulk, node-wise bulk,
GraphSAINT-RW, plus the full-graph reference) for the same epoch budget
and compares final validation F1 — the "is ShaDow the right choice"
question Figure 4 partially answers.
"""

from __future__ import annotations

import pytest

from common import write_report
from repro.pipeline import GNNTrainConfig, train_gnn

COMMON = dict(
    epochs=5,
    batch_size=128,
    hidden=16,
    num_layers=2,
    mlp_layers=2,
    depth=2,
    fanout=4,
    lr=2e-3,
    seed=3,
)


def test_sampler_family_convergence(ex3_bench, benchmark):
    train, val = ex3_bench.train[:4], ex3_bench.val
    modes = {
        "full-graph": GNNTrainConfig(mode="full", **COMMON),
        "shadow (bulk)": GNNTrainConfig(mode="bulk", bulk_k=4, **COMMON),
        "node-wise (bulk)": GNNTrainConfig(mode="nodewise", bulk_k=4, **COMMON),
        "saint-rw": GNNTrainConfig(mode="saint", **COMMON),
    }

    def run():
        return {name: train_gnn(train, val, cfg) for name, cfg in modes.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"Sampler-family convergence (Ex3-like, {COMMON['epochs']} epochs, "
        f"batch {COMMON['batch_size']})",
        f"{'regime':<17} | {'precision':>9} | {'recall':>7} | {'F1':>6} | {'steps':>5}",
    ]
    f1 = {}
    for name, res in results.items():
        final = res.history.final
        f1[name] = final.val_f1
        lines.append(
            f"{name:<17} | {final.val_precision:>9.3f} | {final.val_recall:>7.3f} | "
            f"{final.val_f1:>6.3f} | {res.trained_steps:>5}"
        )
    write_report("sampler_convergence", lines)

    # every minibatch family beats full-graph at this budget (the Fig.-4
    # mechanism is small batches, not ShaDow specifically)
    for name in ("shadow (bulk)", "node-wise (bulk)", "saint-rw"):
        assert f1[name] > f1["full-graph"], name
    # and the families land in the same band (ShaDow is a sound choice,
    # not a uniquely magic one)
    minis = [f1["shadow (bulk)"], f1["node-wise (bulk)"], f1["saint-rw"]]
    assert max(minis) - min(minis) < 0.15
