"""Figure 4 — convergence on Ex3: full-graph vs ShaDow (PyG) vs ShaDow (ours).

Regenerates the precision/recall-vs-epoch curves with the three training
regimes.  Shape targets from the paper:

* the minibatch (ShaDow) runs converge to **higher precision and recall**
  than full-graph training;
* our bulk-sampled implementation matches the PyG-style sequential
  implementation ("our approach does not suffer from precision or recall
  degradation").

Precision/recall use the paper's definition: pooled over the validation
graphs' edges at threshold 0.5.
"""

from __future__ import annotations

import pytest

from common import write_report
from repro.pipeline import GNNTrainConfig, train_gnn

EPOCHS = 6
COMMON = dict(
    epochs=EPOCHS,
    batch_size=128,
    hidden=16,
    num_layers=2,
    mlp_layers=2,
    depth=2,
    fanout=4,
    lr=2e-3,
    seed=3,
)


def test_fig4_convergence(ex3_bench, benchmark):
    train, val = ex3_bench.train[:4], ex3_bench.val

    def run():
        full = train_gnn(train, val, GNNTrainConfig(mode="full", **COMMON))
        pyg = train_gnn(train, val, GNNTrainConfig(mode="shadow", **COMMON))
        ours = train_gnn(train, val, GNNTrainConfig(mode="bulk", bulk_k=4, **COMMON))
        return full, pyg, ours

    full, pyg, ours = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"Figure 4 (Ex3-like) — validation precision/recall per epoch "
        f"({EPOCHS} epochs, batch {COMMON['batch_size']})",
        f"{'epoch':>5} | {'full P':>7} {'full R':>7} | {'PyG P':>7} {'PyG R':>7} | {'ours P':>7} {'ours R':>7}",
    ]
    for e in range(EPOCHS):
        f, p, o = full.history[e], pyg.history[e], ours.history[e]
        lines.append(
            f"{e:>5} | {f.val_precision:7.3f} {f.val_recall:7.3f} | "
            f"{p.val_precision:7.3f} {p.val_recall:7.3f} | "
            f"{o.val_precision:7.3f} {o.val_recall:7.3f}"
        )
    lines.append(
        f"final F1: full={full.history.final.val_f1:.3f} "
        f"PyG-ShaDow={pyg.history.final.val_f1:.3f} "
        f"ours={ours.history.final.val_f1:.3f}"
    )
    write_report("fig4_convergence", lines)

    # paper shape 1: minibatch converges above full-graph
    assert ours.history.final.val_f1 > full.history.final.val_f1
    assert pyg.history.final.val_f1 > full.history.final.val_f1
    # paper shape 2: ours matches the PyG implementation (no degradation)
    assert abs(ours.history.final.val_f1 - pyg.history.final.val_f1) < 0.08
    # both minibatch runs reach a usable operating point
    assert ours.history.final.val_recall > 0.8
    assert ours.history.final.val_precision > 0.5


def test_fig4_seed_variance(ex3_bench, benchmark):
    """The Figure-4 ordering must hold in the mean over seeds, not just on
    one lucky draw (the paper reports single runs)."""
    from repro.pipeline import run_with_seeds

    train, val = ex3_bench.train[:4], ex3_bench.val
    seeds = [3, 4]

    def run():
        full = run_with_seeds(train, val, GNNTrainConfig(mode="full", **COMMON), seeds)
        ours = run_with_seeds(
            train, val, GNNTrainConfig(mode="bulk", bulk_k=4, **COMMON), seeds
        )
        return full, ours

    full, ours = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "fig4_seed_variance",
        [
            f"Figure 4 ordering over {len(seeds)} seeds (mean ± std of final F1)",
            f"full-graph:     {full.summary()['val_f1']}",
            f"ShaDow (bulk):  {ours.summary()['val_f1']}",
        ],
    )
    assert ours.mean("val_f1") > full.mean("val_f1")
