"""Ablation — per-layer-distinct vs weight-shared (recurrent) IGNN.

The paper's Algorithm 1 uses a distinct MLP per message-passing layer
("each MLP is distinct"); acorn's production network shares one layer's
weights across iterations.  The choice trades parameter count — and hence
the all-reduce volume that Section III-D optimises — against capacity.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import write_report
from repro.distributed import NVLINK_A100
from repro.models import (
    GRUInteractionGNN,
    IGNNConfig,
    InteractionGNN,
    RecurrentInteractionGNN,
)
from repro.nn import Adam, BCEWithLogitsLoss
from repro.pipeline import evaluate_edge_classifier
from repro.sampling import BulkShadowSampler, epoch_batches, group_batches
from repro.tensor import Tensor

EPOCHS = 3


def _train(model, train_graphs, val_graphs, rng):
    sampler = BulkShadowSampler(2, 4)
    opt = Adam(model.parameters(), lr=2e-3)
    loss_fn = BCEWithLogitsLoss(pos_weight=3.0)
    for _ in range(EPOCHS):
        for graph, group in group_batches(epoch_batches(train_graphs, 128, rng), 4):
            for sb in sampler.sample_bulk(graph, group, rng):
                opt.zero_grad()
                logits = model(
                    Tensor(sb.graph.x), Tensor(sb.graph.y), sb.graph.rows, sb.graph.cols
                )
                loss_fn(logits, sb.graph.edge_labels.astype(np.float32)).backward()
                opt.step()
    return evaluate_edge_classifier(model, val_graphs)


def test_recurrent_vs_distinct(ex3_bench, benchmark):
    train, val = ex3_bench.train[:4], ex3_bench.val
    cfg = IGNNConfig(
        node_features=train[0].num_node_features,
        edge_features=train[0].num_edge_features,
        hidden=16,
        num_layers=4,
        mlp_layers=2,
        seed=0,
    )

    def run():
        variants = {
            "distinct": InteractionGNN(cfg),
            "recurrent": RecurrentInteractionGNN(cfg),
            "gru": GRUInteractionGNN(cfg),
        }
        scores = {
            name: _train(m, train, val, np.random.default_rng(0))
            for name, m in variants.items()
        }
        return variants, scores

    variants, scores = benchmark.pedantic(run, rounds=1, iterations=1)

    params = {name: m.num_parameters() for name, m in variants.items()}
    comm = {name: NVLINK_A100.allreduce_time(n * 4, 4) for name, n in params.items()}
    f1 = {
        name: (2 * p * r / (p + r) if p + r else 0.0)
        for name, (p, r) in scores.items()
    }

    lines = [
        f"IGNN node-update variants (Ex3-like, h=16, L=4, {EPOCHS} epochs)",
        f"{'variant':<12} | {'params':>8} | {'coalesced allreduce (P=4)':>26} | {'val F1':>7}",
    ]
    for name in ("distinct", "recurrent", "gru"):
        lines.append(
            f"{name:<12} | {params[name]:>8} | {1e6 * comm[name]:>23.1f} us | {f1[name]:7.3f}"
        )
    write_report("recurrent_ignn", lines)

    # weight sharing cuts parameters (≈1/L of the layer stack)...
    assert params["recurrent"] < 0.5 * params["distinct"]
    assert params["gru"] < 0.5 * params["distinct"]
    # ...and the modeled gradient-sync cost with it
    assert comm["recurrent"] < comm["distinct"]
    # every variant reaches a usable operating point
    assert all(v > 0.6 for v in f1.values()), f1
