"""Ablation — robustness to detector material (multiple scattering).

The paper's datasets come from detailed detector simulation where tracks
kink at every layer (Coulomb scattering); our synthetic substitute makes
the material budget a knob.  The measured result is a *robustness*
finding: an edge classifier trained on ideal helices keeps its F1 within
a couple of percent even at grossly exaggerated material budgets.

Why: (a) the IGNN consumes *pairwise-delta* edge features, and a kink
between layers moves both the candidate edge and its truth label
together (truth segments follow the kinked trajectory); (b) at this
detector's hit smearing (σ_rφ = 0.5 mm) the Highland deflection of a
GeV track over one layer spacing is sub-dominant.  The quantities that
do assume global helices — the Kåsa pT fit, the combinatorial finder's
bend-consistency gate — degrade first (see
``tests/detector/test_scattering.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from common import write_report
from repro.detector import (
    DetectorGeometry,
    EventSimulator,
    GeometricBuilderConfig,
    build_candidate_graph,
)
from repro.pipeline import GNNTrainConfig, evaluate_edge_classifier, train_gnn

BUDGETS = (0.0, 0.03, 0.10, 0.50)


def _events_to_graphs(sim, geometry, builder, seeds):
    return [
        build_candidate_graph(
            sim.generate(np.random.default_rng(s), event_id=s), geometry, builder
        )
        for s in seeds
    ]


def test_material_budget_robustness(benchmark):
    geometry = DetectorGeometry.barrel_only()
    builder = GeometricBuilderConfig(dphi_max=0.3, dz_max=300.0)

    def run():
        clean_sim = EventSimulator(
            geometry, particles_per_event=25, multiple_scattering=0.0
        )
        train_graphs = _events_to_graphs(clean_sim, geometry, builder, range(10, 16))
        val_graphs = _events_to_graphs(clean_sim, geometry, builder, range(16, 18))
        res = train_gnn(
            train_graphs,
            val_graphs,
            GNNTrainConfig(
                mode="bulk", epochs=4, batch_size=64, hidden=16,
                num_layers=2, mlp_layers=2, depth=2, fanout=4, bulk_k=4, seed=0,
            ),
        )
        rows = {}
        for budget in BUDGETS:
            sim = EventSimulator(
                geometry, particles_per_event=25, multiple_scattering=budget
            )
            test_graphs = _events_to_graphs(sim, geometry, builder, range(40, 44))
            p, r = evaluate_edge_classifier(res.model, test_graphs)
            f1 = 2 * p * r / (p + r) if p + r else 0.0
            rows[budget] = (p, r, f1)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "GNN edge classifier vs material budget (trained on ideal helices)",
        f"{'x/X0 per layer':>14} | {'precision':>9} | {'recall':>7} | {'F1':>6}",
    ]
    for budget, (p, r, f1) in rows.items():
        lines.append(f"{budget:>14.2f} | {p:>9.3f} | {r:>7.3f} | {f1:>6.3f}")
    lines.append(
        "robust by design: pairwise-delta features + labels follow the kinked "
        "truth; hit smearing dominates the Highland deflection"
    )
    write_report("material_budget", lines)

    f1_clean = rows[0.0][2]
    # the classifier is usable in the first place...
    assert f1_clean > 0.6
    # ...and transfers across every budget within a small margin
    for budget in BUDGETS[1:]:
        assert rows[budget][2] > f1_clean - 0.05, budget
