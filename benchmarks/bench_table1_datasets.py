"""Table I — dataset statistics.

Regenerates the paper's dataset summary for the two synthetic registries.
Feature widths and MLP depths must match the paper exactly; vertex/edge
counts are scaled (factors reported in the table) with the edge-per-vertex
density preserved, since density is what drives the paper's memory and
sampling behaviour.
"""

from __future__ import annotations

import pytest

from common import write_report

# Paper's Table I rows: (graphs, avg vertices, avg edges, MLP layers, Vf, Ef)
PAPER = {
    "ctd_like": dict(graphs=80, verts=330_700, edges=6_900_000, mlp=3, vf=14, ef=8),
    "ex3_like": dict(graphs=80, verts=13_000, edges=47_800, mlp=2, vf=6, ef=2),
}


def _row(name, stats, paper):
    scale = paper["verts"] / stats["avg_vertices"]
    return (
        f"{name:>10s} | graphs={int(stats['graphs']):3d} "
        f"| V={stats['avg_vertices']:9.1f} (paper {paper['verts']:>9,}; 1/{scale:.0f} scale) "
        f"| E={stats['avg_edges']:10.1f} (paper {paper['edges']:>10,}) "
        f"| E/V={stats['edges_per_vertex']:5.2f} (paper {paper['edges']/paper['verts']:5.2f}) "
        f"| MLP={int(stats['mlp_layers'])} | Vf={int(stats['vertex_features'])} "
        f"| Ef={int(stats['edge_features'])}"
    )


def test_table1_dataset_statistics(ex3_bench, ctd_bench, benchmark):
    stats = {}

    def compute():
        return {
            "ex3_like": ex3_bench.stats(),
            "ctd_like": ctd_bench.stats(),
        }

    stats = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = ["Table I — datasets (synthetic regeneration)"]
    for name in ("ctd_like", "ex3_like"):
        lines.append(_row(name, stats[name], PAPER[name]))
    write_report("table1_datasets", lines)

    # exact-metadata checks (Table I)
    assert stats["ctd_like"]["mlp_layers"] == 3
    assert stats["ex3_like"]["mlp_layers"] == 2
    assert stats["ctd_like"]["vertex_features"] == 14
    assert stats["ctd_like"]["edge_features"] == 8
    assert stats["ex3_like"]["vertex_features"] == 6
    assert stats["ex3_like"]["edge_features"] == 2
    # density-shape checks
    ex3_density = stats["ex3_like"]["edges_per_vertex"]
    ctd_density = stats["ctd_like"]["edges_per_vertex"]
    assert 2.5 < ex3_density < 5.0  # paper: 3.68
    assert 14.0 < ctd_density < 30.0  # paper: 20.9
    assert ctd_density > 4 * ex3_density  # CTD much denser, as in the paper
